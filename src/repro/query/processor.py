"""Query execution: exact (ground truth) and degraded.

The processor is the only component that touches model outputs, so it is
also where the paper's reuse strategy lives: full-corpus outputs per
(model, resolution, quality) are computed once by the detector's own cache
and every degraded execution just gathers the sampled frames from them.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

import numpy as np

from repro.detection.zoo import DetectorSuite
from repro.errors import ConfigurationError
from repro.interventions.plan import DegradedSample, InterventionPlan
from repro.query.aggregates import Aggregate, aggregate_value
from repro.query.query import AggregateQuery
from repro.video.geometry import Resolution


@dataclass(frozen=True)
class DegradedExecution:
    """Everything the estimators need from one degraded query run.

    Attributes:
        values: Aggregate input values on the sampled frames (model outputs,
            predicate-transformed for COUNT).
        sample: The degraded sample that produced the values.
    """

    values: np.ndarray
    sample: DegradedSample

    @property
    def universe_size(self) -> int:
        """Eligible-universe size ``N`` for the without-replacement bounds."""
        return self.sample.universe_size

    @property
    def population_size(self) -> int:
        """Total corpus length, the scaling target of SUM/COUNT answers."""
        return self.sample.population_size

    @property
    def size(self) -> int:
        """Sample size ``n``."""
        return int(self.values.size)


class QueryProcessor:
    """Evaluates aggregate queries exactly and under intervention plans."""

    def __init__(self, suite: DetectorSuite | None = None) -> None:
        """Create a processor.

        Args:
            suite: Restricted-class detectors used by image-removal plans;
                optional when no plan removes frames.
        """
        self._suite = suite
        # Per-query memo of predicate-transformed frame values keyed by
        # (resolution side, quality): detector counts are cached by the
        # detector itself, but the predicate transform used to be re-applied
        # on every trial; trial loops now only gather sampled indices.
        self._values_memo: "weakref.WeakKeyDictionary[AggregateQuery, dict[tuple[int, float], np.ndarray]]" = (
            weakref.WeakKeyDictionary()
        )

    def __getstate__(self) -> dict:
        """Pickle without the memo (WeakKeyDictionary is unpicklable and
        worker processes rebuild it lazily anyway)."""
        state = dict(self.__dict__)
        state.pop("_values_memo", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._values_memo = weakref.WeakKeyDictionary()

    @property
    def suite(self) -> DetectorSuite | None:
        """The restricted-class detector suite, if configured."""
        return self._suite

    def frame_values(
        self,
        query: AggregateQuery,
        resolution: Resolution | None = None,
        quality: float = 1.0,
    ) -> np.ndarray:
        """Aggregate input values for every frame of the corpus.

        Args:
            query: The query.
            resolution: Processing resolution; defaults to native.
            quality: Quality factor from extension interventions.

        Returns:
            Per-frame values over all ``N`` frames (read-only; shared
            across calls via a per-query memo).
        """
        side = (resolution or query.dataset.native_resolution).side
        memo_key = (side, round(quality, 9))
        try:
            per_query = self._values_memo.get(query)
        except TypeError:  # unhashable/unweakrefable query: skip the memo
            per_query = None
        if per_query is not None:
            cached = per_query.get(memo_key)
            if cached is not None:
                return cached
        outputs = query.model.run(query.dataset, resolution, quality).counts
        values = query.frame_values(outputs)
        values.flags.writeable = False
        try:
            self._values_memo.setdefault(query, {})[memo_key] = values
        except TypeError:
            pass
        return values

    def true_values(self, query: AggregateQuery) -> np.ndarray:
        """Ground-truth per-frame values: native resolution, full quality."""
        return self.frame_values(query)

    def true_answer(self, query: AggregateQuery) -> float:
        """The true query answer ``Y_true`` (paper §2.3: the result on
        non-degraded video)."""
        if query.aggregate.is_extreme:
            return aggregate_value(
                self.true_values(query), query.aggregate, query.effective_quantile
            )
        return aggregate_value(self.true_values(query), query.aggregate)

    def execute(
        self,
        query: AggregateQuery,
        plan: InterventionPlan,
        rng: np.random.Generator,
    ) -> DegradedExecution:
        """Run the query under a degradation plan for one trial.

        Args:
            query: The query.
            plan: The degradation setting.
            rng: Trial randomness for the frame sample.

        Returns:
            The degraded execution (sampled values + sample metadata).
        """
        sample = plan.draw(query.dataset, rng, self._suite)
        values = self.values_for_sample(query, sample)
        return DegradedExecution(values=values, sample=sample)

    def values_for_sample(
        self, query: AggregateQuery, sample: DegradedSample
    ) -> np.ndarray:
        """Aggregate input values on an already-drawn degraded sample.

        Separated from :meth:`execute` so progressive samplers (profile
        generation) can reuse one sample across estimators.

        Args:
            query: The query.
            sample: The degraded sample.

        Returns:
            Values on the sampled frames, in sample order.
        """
        if sample.size == 0:
            raise ConfigurationError("degraded sample contains no frames")
        full = self.frame_values(query, sample.resolution, sample.quality)
        return full[sample.frame_indices]

    def naive_approximation(
        self, query: AggregateQuery, execution: DegradedExecution
    ) -> float:
        """The plain plug-in estimate from a degraded execution.

        AVG: sample mean; SUM/COUNT: scaled sample sum; MAX/MIN: sample
        quantile. Useful as a reference point — the Smokescreen estimators
        deliberately return a different (bound-aware) estimate for the mean
        family.

        Args:
            query: The query.
            execution: A degraded execution of it.

        Returns:
            The plug-in approximate answer.
        """
        values = execution.values
        if query.aggregate == Aggregate.AVG:
            return float(values.mean())
        if query.aggregate in (Aggregate.SUM, Aggregate.COUNT):
            scale = execution.population_size / values.size
            return float(values.sum() * scale)
        if query.aggregate == Aggregate.VAR:
            return aggregate_value(values, query.aggregate)
        return aggregate_value(values, query.aggregate, query.effective_quantile)
