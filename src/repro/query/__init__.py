"""The video query processor.

A query is the paper's 3-tuple ``(D, F_model, F_A)``: a video corpus, a
frame-level vision model (UDF), and an aggregate function. The processor
evaluates queries exactly (the ground truth: model outputs at native
resolution over all ``N`` frames) and under an
:class:`~repro.interventions.plan.InterventionPlan` (the degraded,
approximate execution the estimators bound).
"""

from repro.query.aggregates import Aggregate, FramePredicate, contains_at_least
from repro.query.processor import DegradedExecution, QueryProcessor
from repro.query.query import AggregateQuery

__all__ = [
    "Aggregate",
    "AggregateQuery",
    "DegradedExecution",
    "FramePredicate",
    "QueryProcessor",
    "contains_at_least",
]
