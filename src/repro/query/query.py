"""The aggregate query object: the paper's ``(D, F_model, F_A)`` tuple."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.base import Detector
from repro.errors import ConfigurationError
from repro.query.aggregates import Aggregate, FramePredicate, contains_at_least
from repro.video.dataset import VideoDataset


@dataclass(frozen=True)
class AggregateQuery:
    """A frame-level analytical aggregate query.

    Attributes:
        dataset: The video corpus ``D``.
        model: The vision-model UDF ``F_model`` (e.g. a car detector).
        aggregate: The aggregate function ``F_A``.
        predicate: Frame predicate for COUNT queries; defaults to
            "contains at least one detection". Ignored by other aggregates.
        quantile_r: Extreme quantile level for MAX/MIN; defaults to the
            paper's 0.99 (MAX) / 0.01 (MIN). Ignored by other aggregates.
        delta: Bound failure probability; the paper uses 0.05 (95%
            confidence) throughout.
    """

    dataset: VideoDataset
    model: Detector
    aggregate: Aggregate
    predicate: FramePredicate | None = None
    quantile_r: float | None = None
    delta: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 < self.delta < 1.0:
            raise ConfigurationError(f"delta must lie in (0, 1), got {self.delta}")
        if self.quantile_r is not None and not 0.0 < self.quantile_r < 1.0:
            raise ConfigurationError(
                f"quantile level must lie in (0, 1), got {self.quantile_r}"
            )
        if self.predicate is not None and self.aggregate != Aggregate.COUNT:
            raise ConfigurationError(
                f"predicates only apply to COUNT queries, not {self.aggregate.name}"
            )

    @property
    def effective_predicate(self) -> FramePredicate:
        """The COUNT predicate, defaulting to "contains a detection"."""
        if self.aggregate != Aggregate.COUNT:
            raise ConfigurationError(
                f"{self.aggregate.name} queries have no predicate"
            )
        return self.predicate or contains_at_least(1)

    @property
    def effective_quantile(self) -> float:
        """The extreme quantile level used by MAX/MIN estimation."""
        if not self.aggregate.is_extreme:
            raise ConfigurationError(
                f"{self.aggregate.name} queries have no quantile level"
            )
        return (
            self.quantile_r
            if self.quantile_r is not None
            else self.aggregate.default_quantile
        )

    @property
    def known_value_range(self) -> float | None:
        """The population range of the aggregate's input values, when it is
        structurally known.

        COUNT queries see 0/1 predicate indicators, so their range is 1
        regardless of what the detector outputs — supplying it closes the
        sample-range blind spot (a sample of identical indicators would
        otherwise claim certainty). Other aggregates see raw model outputs
        with no a-priori range.
        """
        if self.aggregate == Aggregate.COUNT:
            return 1.0
        return None

    def frame_values(self, outputs: np.ndarray) -> np.ndarray:
        """Transform raw model outputs into the values the aggregate sees.

        COUNT converts outputs to 0/1 indicators through the predicate
        (§3.2.3's reduction to SUM); all other aggregates use the raw
        outputs.

        Args:
            outputs: Per-frame model outputs.

        Returns:
            Per-frame aggregate input values, floating point.
        """
        if self.aggregate == Aggregate.COUNT:
            return self.effective_predicate(outputs).astype(float)
        return np.asarray(outputs, dtype=float)

    def label(self) -> str:
        """Readable description for profiles and reports."""
        detail = ""
        if self.aggregate == Aggregate.COUNT:
            detail = f"[{self.effective_predicate.name}]"
        elif self.aggregate.is_extreme:
            detail = f"[r={self.effective_quantile:g}]"
        return (
            f"{self.aggregate.name}{detail}({self.model.name} "
            f"on {self.dataset.name})"
        )
