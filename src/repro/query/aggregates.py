"""Aggregate functions and frame predicates (paper §3.2).

The supported aggregates are the paper's AVG, SUM, COUNT, MAX and MIN, all
computed at the frame level and then aggregated. COUNT counts frames
satisfying a predicate over the model output (e.g. "contains at least one
car") and is reduced to SUM of indicators, exactly as §3.2.3 does. MAX/MIN
are estimated through extreme quantiles (§3.2.4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.stats.quantiles import empirical_quantile


class Aggregate(enum.Enum):
    """The aggregate functions Smokescreen supports.

    AVG/SUM/COUNT/MAX/MIN are the paper's aggregates; VAR is the extension
    named in its future work (§7), estimated via moment intervals (see
    :mod:`repro.estimators.variance`).
    """

    AVG = "avg"
    SUM = "sum"
    COUNT = "count"
    MAX = "max"
    MIN = "min"
    VAR = "var"

    @property
    def is_mean_family(self) -> bool:
        """AVG/SUM/COUNT share the Algorithm 1 estimation machinery."""
        return self in (Aggregate.AVG, Aggregate.SUM, Aggregate.COUNT)

    @property
    def is_extreme(self) -> bool:
        """MAX/MIN use the quantile machinery of Algorithm 2."""
        return self in (Aggregate.MAX, Aggregate.MIN)

    @property
    def is_variance(self) -> bool:
        """VAR uses the moment-interval extension of Algorithm 1."""
        return self == Aggregate.VAR

    @property
    def default_quantile(self) -> float:
        """The paper's default extreme quantile: 0.99 for MAX, 0.01 for MIN."""
        if self == Aggregate.MAX:
            return 0.99
        if self == Aggregate.MIN:
            return 0.01
        raise ConfigurationError(f"{self.name} has no extreme quantile")


@dataclass(frozen=True)
class FramePredicate:
    """A named boolean predicate over per-frame model outputs.

    Used by COUNT queries: the aggregate counts frames where the predicate
    holds. The name appears in profiles and reports.

    Attributes:
        name: Readable description, e.g. ``"count >= 1"``.
        fn: Vectorised predicate mapping output values to booleans.
    """

    name: str
    fn: Callable[[np.ndarray], np.ndarray]

    def __call__(self, outputs: np.ndarray) -> np.ndarray:
        result = np.asarray(self.fn(np.asarray(outputs)))
        if result.dtype != bool:
            raise ConfigurationError(
                f"predicate {self.name!r} must return booleans, got {result.dtype}"
            )
        return result


def contains_at_least(minimum: int = 1) -> FramePredicate:
    """Predicate: the frame's detected count is at least ``minimum``.

    ``contains_at_least(1)`` is the paper's COUNT workload ("count the
    number of frames that contain cars").

    Args:
        minimum: Minimum detected count for the predicate to hold.

    Returns:
        The predicate.
    """
    if minimum < 0:
        raise ConfigurationError(f"minimum must be non-negative, got {minimum}")
    return FramePredicate(
        name=f"count >= {minimum}", fn=lambda outputs: outputs >= minimum
    )


def aggregate_value(
    values: np.ndarray, aggregate: Aggregate, quantile_r: float | None = None
) -> float:
    """Evaluate an aggregate over frame values exactly.

    For MAX/MIN this returns the extreme *quantile* (the paper's target of
    estimation), not the literal extreme; pass ``quantile_r=1.0`` / ``0.0``
    for the literal value.

    Args:
        values: Per-frame values (already predicate-transformed for COUNT).
        aggregate: The aggregate function.
        quantile_r: Quantile level for MAX/MIN; defaults to the paper's
            0.99 / 0.01.

    Returns:
        The aggregate value.
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ConfigurationError("cannot aggregate an empty value array")
    if aggregate == Aggregate.AVG:
        return float(array.mean())
    if aggregate in (Aggregate.SUM, Aggregate.COUNT):
        return float(array.sum())
    if aggregate == Aggregate.VAR:
        return float(array.var())
    r = quantile_r if quantile_r is not None else aggregate.default_quantile
    return empirical_quantile(array, r)
