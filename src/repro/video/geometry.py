"""Frame geometry: resolutions and scaling.

The paper's reduced-resolution intervention processes frames at square
resolutions (608x608 for YOLOv4, 640x640 for Mask R-CNN, down to 128x128 and
below). Objects shrink proportionally: an object that spans ``s`` pixels at
the native resolution spans ``s * p / p_native`` pixels after resizing to
side ``p`` — which is what drives detector recall loss.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True, order=True)
class Resolution:
    """A square processing resolution, e.g. ``Resolution(608)`` for 608x608.

    Resolutions are ordered by side length so intervention grids can be
    sorted from loosest (largest) to most degraded (smallest).

    Attributes:
        side: Side length in pixels.
    """

    side: int

    def __post_init__(self) -> None:
        if self.side <= 0:
            raise ConfigurationError(
                f"resolution side must be positive, got {self.side}"
            )

    @property
    def pixels(self) -> int:
        """Total pixel count ``side * side``."""
        return self.side * self.side

    def scale_factor(self, native: "Resolution") -> float:
        """Linear shrink factor relative to a native resolution.

        Args:
            native: The resolution frames were captured/processed at.

        Returns:
            ``side / native.side``; 1.0 when this is the native resolution.
        """
        if native.side <= 0:
            raise ConfigurationError("native resolution must be positive")
        return self.side / native.side

    def apparent_size(self, size_at_native: float, native: "Resolution") -> float:
        """Apparent pixel size of an object after resizing to this resolution.

        Args:
            size_at_native: Object size in pixels at the native resolution.
            native: The native resolution.

        Returns:
            The object's size in pixels at this resolution.
        """
        return size_at_native * self.scale_factor(native)

    def __str__(self) -> str:
        return f"{self.side}x{self.side}"


def resolution_grid(native: Resolution, count: int, minimum: int = 64) -> list[Resolution]:
    """Uniformly spaced resolution candidates from ``minimum`` up to native.

    Implements the paper's candidate design (§3.3.2: "we uniformly generate
    ten frame resolutions"), snapped to multiples of 64 because the paper
    notes Mask R-CNN only handles multiples of 64.

    Args:
        native: The native (loosest) resolution; included as the last entry.
        count: Number of candidates to generate; must be at least 2.
        minimum: Smallest allowed side, defaults to 64.

    Returns:
        Candidates in ascending side order, ending at ``native``, with
        duplicates removed (possible when the span is narrow).
    """
    if count < 2:
        raise ConfigurationError(f"need at least 2 candidates, got {count}")
    if minimum <= 0 or minimum > native.side:
        raise ConfigurationError(
            f"minimum side {minimum} must lie in (0, native={native.side}]"
        )
    step = (native.side - minimum) / (count - 1)
    sides: list[int] = []
    for i in range(count):
        raw = minimum + step * i
        snapped = max(64, int(round(raw / 64.0)) * 64)
        snapped = min(snapped, native.side)
        if snapped not in sides:
            sides.append(snapped)
    if native.side not in sides:
        sides.append(native.side)
    return [Resolution(side) for side in sorted(sides)]
