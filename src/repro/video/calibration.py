"""Calibrating scene models to target corpus statistics.

The paper reports detector-flagged statistics for its corpora (e.g.
"2,761 frames (14.18%) contain 'person'"). To stand a synthetic scene in
for a real corpus, its parameters must be tuned until the *detector view*
of the generated video matches those statistics — which is indirect,
because detector-flagged shares depend on object sizes and the detector's
response curve, not only on the scene's generation rates.

:func:`calibrate_scene` automates the loop: generate a probe corpus,
measure the flagged shares and mean count, rescale the responsible scene
parameters proportionally, repeat until every target is within tolerance.
This is how the shipped presets were calibrated to §5.1's numbers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.detection.base import Detector
from repro.detection.zoo import DetectorSuite, default_suite
from repro.errors import ConfigurationError
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution
from repro.video.presets import build_dataset
from repro.video.scene import SceneModel


@dataclass(frozen=True)
class CalibrationTarget:
    """The statistics a calibrated scene must reproduce.

    Attributes:
        person_share: Target fraction of frames where the suite's person
            detector fires, or None to leave the person rate alone.
        face_share: Target fraction of face-flagged frames, or None.
        mean_count: Target mean detected count per frame of the query
            detector's class, or None.
        tolerance: Acceptable relative deviation per statistic.
    """

    person_share: float | None = None
    face_share: float | None = None
    mean_count: float | None = None
    tolerance: float = 0.1

    def __post_init__(self) -> None:
        for name in ("person_share", "face_share"):
            value = getattr(self, name)
            if value is not None and not 0.0 < value < 1.0:
                raise ConfigurationError(f"{name} must lie in (0, 1), got {value}")
        if self.mean_count is not None and self.mean_count <= 0:
            raise ConfigurationError(
                f"mean count must be positive, got {self.mean_count}"
            )
        if not 0.0 < self.tolerance < 1.0:
            raise ConfigurationError(
                f"tolerance must lie in (0, 1), got {self.tolerance}"
            )


@dataclass(frozen=True)
class CalibrationReport:
    """Outcome of a calibration run.

    Attributes:
        scene: The calibrated scene model.
        iterations: Probe-and-adjust rounds performed.
        measured_person_share: Final detector-flagged person share.
        measured_face_share: Final detector-flagged face share.
        measured_mean_count: Final mean detected count per frame.
        converged: Whether every requested target is within tolerance.
    """

    scene: SceneModel
    iterations: int
    measured_person_share: float
    measured_face_share: float
    measured_mean_count: float
    converged: bool


def _measure(
    scene: SceneModel,
    suite: DetectorSuite,
    model: Detector,
    frame_count: int,
    native: Resolution,
    seed: int,
) -> tuple[float, float, float]:
    probe = build_dataset(
        scene, frame_count=frame_count, seed=seed, native_resolution=native
    )
    person = float(suite.presence(probe, ObjectClass.PERSON).mean())
    face = float(suite.presence(probe, ObjectClass.FACE).mean())
    mean_count = float(model.run(probe).counts.mean())
    return person, face, mean_count


def _within(measured: float, target: float | None, tolerance: float) -> bool:
    if target is None:
        return True
    return abs(measured - target) <= tolerance * target


def calibrate_scene(
    scene: SceneModel,
    target: CalibrationTarget,
    model: Detector,
    suite: DetectorSuite | None = None,
    frame_count: int = 5000,
    native_resolution: Resolution = Resolution(608),
    seed: int = 0,
    max_iterations: int = 15,
) -> CalibrationReport:
    """Tune a scene until its detector view matches the targets.

    Proportional fitting: each round rescales ``car_intensity`` by
    ``target/measured`` mean count, ``person_base_rate`` by the person-
    share ratio, and ``face_given_person`` by the face-share ratio
    (clipped to valid ranges), then re-measures on a fresh probe corpus.

    Args:
        scene: The starting scene model.
        target: The statistics to hit.
        model: The query detector whose mean count is targeted.
        suite: Restricted-class detectors; defaults to the paper's suite.
        frame_count: Probe corpus size per round (larger = less noisy).
        native_resolution: Probe capture resolution.
        seed: Probe generation seed (fixed across rounds so adjustments
            chase parameters, not noise).
        max_iterations: Give up after this many rounds.

    Returns:
        The calibration report; ``converged`` is False when the loop ran
        out of iterations (e.g. an unreachable target).
    """
    if max_iterations <= 0:
        raise ConfigurationError(
            f"max iterations must be positive, got {max_iterations}"
        )
    suite = suite or default_suite()

    current = scene
    person = face = mean_count = 0.0
    for iteration in range(1, max_iterations + 1):
        person, face, mean_count = _measure(
            current, suite, model, frame_count, native_resolution, seed
        )
        done = (
            _within(person, target.person_share, target.tolerance)
            and _within(face, target.face_share, target.tolerance)
            and _within(mean_count, target.mean_count, target.tolerance)
        )
        if done:
            return CalibrationReport(
                scene=current,
                iterations=iteration,
                measured_person_share=person,
                measured_face_share=face,
                measured_mean_count=mean_count,
                converged=True,
            )
        updates: dict[str, float] = {}
        if target.mean_count is not None and mean_count > 0:
            ratio = target.mean_count / mean_count
            updates["car_intensity"] = current.car_intensity * ratio
        if target.person_share is not None and person > 0:
            ratio = target.person_share / person
            updates["person_base_rate"] = min(
                0.99, current.person_base_rate * ratio
            )
        if target.face_share is not None and face > 0:
            ratio = target.face_share / face
            updates["face_given_person"] = min(
                0.99, current.face_given_person * ratio
            )
        if not updates:
            break  # nothing adjustable is moving: bail out as unconverged
        current = dataclasses.replace(current, **updates)

    return CalibrationReport(
        scene=current,
        iterations=max_iterations,
        measured_person_share=person,
        measured_face_share=face,
        measured_mean_count=mean_count,
        converged=False,
    )
