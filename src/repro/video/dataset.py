"""The generated video corpus container.

A :class:`VideoDataset` stores its ground truth in flat per-class numpy
arrays — one row per object across the whole corpus — so simulated detectors
can evaluate an entire corpus at one resolution with a handful of vectorised
operations. A readable per-frame view (:class:`~repro.video.frame.FrameRecord`)
is materialised on demand.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from repro.errors import DatasetError
from repro.video.frame import FrameRecord, ObjectClass, ObjectInstance
from repro.video.geometry import Resolution


@dataclass(frozen=True)
class ObjectArrays:
    """Flat storage for all objects of one class across a corpus.

    All arrays share the same length (one entry per object).

    Attributes:
        frame: Frame index of each object.
        size: Apparent size in pixels at the native resolution.
        difficulty: Latent detectability in ``[0, 1)``; see
            :class:`~repro.video.frame.ObjectInstance`.
        duplicate_latent: Latent used by detector anomaly terms.
    """

    frame: np.ndarray
    size: np.ndarray
    difficulty: np.ndarray
    duplicate_latent: np.ndarray

    def __post_init__(self) -> None:
        lengths = {
            self.frame.size,
            self.size.size,
            self.difficulty.size,
            self.duplicate_latent.size,
        }
        if len(lengths) != 1:
            raise DatasetError(f"object arrays have mismatched lengths: {lengths}")

    @property
    def count(self) -> int:
        """Total number of objects of this class in the corpus."""
        return int(self.frame.size)

    @classmethod
    def empty(cls) -> "ObjectArrays":
        """Storage for a class with no objects."""
        return cls(
            frame=np.empty(0, dtype=np.int64),
            size=np.empty(0, dtype=float),
            difficulty=np.empty(0, dtype=float),
            duplicate_latent=np.empty(0, dtype=float),
        )


class VideoDataset:
    """A synthetic video corpus with per-frame ground-truth objects.

    Instances are immutable once constructed; detectors treat
    :attr:`cache_key` as a stable identity for output caching.
    """

    def __init__(
        self,
        name: str,
        native_resolution: Resolution,
        frame_count: int,
        objects: Mapping[ObjectClass, ObjectArrays],
        clutter: np.ndarray,
        frame_rate: float = 30.0,
        seed: int | None = None,
        fingerprint: str | None = None,
    ) -> None:
        """Build a dataset from pre-generated arrays.

        Most callers should use the builders in :mod:`repro.video.presets`
        instead of this constructor.

        Args:
            name: Corpus name, e.g. ``"night-street"``.
            native_resolution: Resolution the corpus is captured at; the
                loosest value of the resolution intervention.
            frame_count: Number of frames ``N``.
            objects: Flat object arrays per class; classes missing from the
                mapping are treated as empty.
            clutter: Per-frame latent in ``[0, 1)`` driving deterministic
                false positives; length must equal ``frame_count``.
            frame_rate: Frames per second (metadata only).
            seed: The generator seed, recorded for the cache key.
            fingerprint: Pre-computed content fingerprint, trusted as is.
                Only pass a value obtained from an identical corpus's
                :attr:`fingerprint` (the shared-memory data plane does,
                so workers skip re-hashing arrays they attached
                read-only); None hashes the arrays here.
        """
        if frame_count <= 0:
            raise DatasetError(f"frame count must be positive, got {frame_count}")
        if clutter.size != frame_count:
            raise DatasetError(
                f"clutter length {clutter.size} != frame count {frame_count}"
            )
        self._name = name
        self._native_resolution = native_resolution
        self._frame_count = frame_count
        self._objects = {
            object_class: objects.get(object_class, ObjectArrays.empty())
            for object_class in ObjectClass
        }
        for object_class, arrays in self._objects.items():
            if arrays.count and int(arrays.frame.max()) >= frame_count:
                raise DatasetError(
                    f"{object_class.name} object refers to frame "
                    f"{int(arrays.frame.max())} outside [0, {frame_count})"
                )
        self._clutter = clutter
        self._frame_rate = frame_rate
        self._seed = seed
        self._fingerprint = (
            fingerprint if fingerprint is not None else self._compute_fingerprint()
        )

    def _compute_fingerprint(self) -> str:
        """Content hash so differently-generated corpora never share a
        detector cache entry, even under identical (name, size, seed)."""
        digest = hashlib.blake2b(digest_size=12)
        for object_class in ObjectClass:
            arrays = self._objects[object_class]
            digest.update(arrays.frame.tobytes())
            digest.update(np.ascontiguousarray(arrays.size).tobytes())
            digest.update(np.ascontiguousarray(arrays.difficulty).tobytes())
            # Duplicate latents drive detector anomaly terms, so corpora
            # differing only in them produce different outputs and must
            # not share a cache entry.
            digest.update(np.ascontiguousarray(arrays.duplicate_latent).tobytes())
        digest.update(np.ascontiguousarray(self._clutter).tobytes())
        return digest.hexdigest()

    @property
    def name(self) -> str:
        """Corpus name."""
        return self._name

    @property
    def native_resolution(self) -> Resolution:
        """Resolution the corpus is captured at."""
        return self._native_resolution

    @property
    def frame_count(self) -> int:
        """Number of frames ``N``."""
        return self._frame_count

    @property
    def frame_rate(self) -> float:
        """Frames per second (metadata)."""
        return self._frame_rate

    @property
    def clutter(self) -> np.ndarray:
        """Per-frame clutter latents (read-only view)."""
        view = self._clutter.view()
        view.flags.writeable = False
        return view

    @property
    def seed(self) -> int | None:
        """The generator seed recorded at construction (metadata)."""
        return self._seed

    @property
    def fingerprint(self) -> str:
        """Content hash of all ground-truth arrays (cache identity)."""
        return self._fingerprint

    @property
    def cache_key(self) -> tuple[str, int, str]:
        """Stable identity for detector output caches.

        Includes a content fingerprint: corpora with the same name, size
        and seed but different contents (e.g. probe corpora of different
        scene parameters during calibration) must not share cache entries.
        """
        return (self._name, self._frame_count, self._fingerprint)

    def __len__(self) -> int:
        return self._frame_count

    def objects_of(self, object_class: ObjectClass) -> ObjectArrays:
        """Flat object arrays for one class.

        Args:
            object_class: The class to fetch.

        Returns:
            The class's :class:`ObjectArrays` (possibly empty).
        """
        return self._objects[object_class]

    def true_counts(self, object_class: ObjectClass) -> np.ndarray:
        """Ground-truth per-frame object counts (scene truth, not detector).

        Args:
            object_class: The class to count.

        Returns:
            Integer array of length :attr:`frame_count`.
        """
        arrays = self._objects[object_class]
        return np.bincount(arrays.frame, minlength=self._frame_count)

    def true_presence(self, object_class: ObjectClass) -> np.ndarray:
        """Ground-truth per-frame presence flags for one class."""
        return self.true_counts(object_class) > 0

    def frame(self, index: int) -> FrameRecord:
        """Materialise the readable record of one frame.

        Args:
            index: Frame index in ``[0, frame_count)``.

        Returns:
            The frame's ground-truth record.
        """
        if not 0 <= index < self._frame_count:
            raise DatasetError(
                f"frame index {index} outside [0, {self._frame_count})"
            )
        instances: list[ObjectInstance] = []
        for object_class, arrays in self._objects.items():
            positions = np.nonzero(arrays.frame == index)[0]
            for pos in positions:
                instances.append(
                    ObjectInstance(
                        object_class=object_class,
                        size=float(arrays.size[pos]),
                        difficulty=float(arrays.difficulty[pos]),
                        duplicate_latent=float(arrays.duplicate_latent[pos]),
                    )
                )
        return FrameRecord(
            index=index,
            objects=tuple(instances),
            clutter=float(self._clutter[index]),
        )

    def frames(self) -> Iterator[FrameRecord]:
        """Iterate over all frame records (slow path; prefer the arrays)."""
        for index in range(self._frame_count):
            yield self.frame(index)

    def slice(self, start: int, stop: int, name: str | None = None) -> "VideoDataset":
        """A contiguous sub-sequence as its own dataset.

        Models "the same camera at a different time": two slices of one
        generated stream share the scene and its statistics but cover
        disjoint time windows (used by the §5.3.2 similar-video pair).

        Args:
            start: First frame (inclusive).
            stop: Last frame (exclusive); must satisfy
                ``0 <= start < stop <= frame_count``.
            name: Name of the sliced corpus; defaults to
                ``"<name>[start:stop]"``.

        Returns:
            The sliced dataset with re-indexed frames.
        """
        if not 0 <= start < stop <= self._frame_count:
            raise DatasetError(
                f"slice [{start}, {stop}) invalid for {self._frame_count} frames"
            )
        objects: dict[ObjectClass, ObjectArrays] = {}
        for object_class, arrays in self._objects.items():
            keep = (arrays.frame >= start) & (arrays.frame < stop)
            objects[object_class] = ObjectArrays(
                frame=arrays.frame[keep] - start,
                size=arrays.size[keep],
                difficulty=arrays.difficulty[keep],
                duplicate_latent=arrays.duplicate_latent[keep],
            )
        return VideoDataset(
            name=name or f"{self._name}[{start}:{stop}]",
            native_resolution=self._native_resolution,
            frame_count=stop - start,
            objects=objects,
            clutter=self._clutter[start:stop].copy(),
            frame_rate=self._frame_rate,
            seed=self._seed,
        )

    def __reduce__(self):
        """Pickle via the shared-memory data plane when published.

        A dataset the current process has published (see
        :mod:`repro.system.shm`) pickles down to its handle — workers
        attach the segment instead of copying megabytes of arrays per
        work unit. Unpublished datasets pickle their state dict as the
        default protocol would.
        """
        from repro.system import shm

        handle = shm.published_handle(self._fingerprint)
        if handle is not None:
            return (shm.dataset_from_handle, (handle,))
        return (_restore_dataset, (dict(self.__dict__),))

    def __repr__(self) -> str:
        return (
            f"VideoDataset(name={self._name!r}, frames={self._frame_count}, "
            f"native={self._native_resolution})"
        )


def _restore_dataset(state: dict) -> VideoDataset:
    """Rebuild a pickled (unpublished) dataset from its state dict,
    bypassing ``__init__`` exactly like default pickling did."""
    dataset = VideoDataset.__new__(VideoDataset)
    dataset.__dict__.update(state)
    return dataset
