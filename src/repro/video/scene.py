"""Traffic scene models: the stochastic processes behind the synthetic video.

A :class:`SceneModel` describes a camera's view statistically:

- Car counts follow a **Markov-modulated Poisson process**: a latent log
  intensity evolves as an AR(1) process (traffic waves), and the per-frame
  car count is Poisson with that intensity. This produces the temporal
  correlation and skewed, long-tailed count distributions real surveillance
  video has (paper Figure 8).
- Person presence is **correlated with traffic intensity** (busy
  intersections have both cars and pedestrians). This matters: the paper's
  §5.2.2 attributes the failure of uncorrected bounds under image removal to
  exactly this correlation, so the scene must reproduce it.
- Faces appear on a subset of person frames (people can face away from the
  camera), matching the paper's much lower face prevalence.
- Object sizes are log-normal per class, scaled to the native resolution.

The numbers for each corpus live in :mod:`repro.video.presets`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SizeDistribution:
    """Log-normal apparent-size distribution for one object class.

    Attributes:
        median: Median apparent size in pixels at the native resolution.
        sigma: Log-space standard deviation (spread of sizes).
        minimum: Hard lower clamp in pixels (objects below this are not
            annotated in real corpora either).
    """

    median: float
    sigma: float
    minimum: float = 4.0

    def __post_init__(self) -> None:
        if self.median <= 0:
            raise ConfigurationError(f"median size must be positive, got {self.median}")
        if self.sigma < 0:
            raise ConfigurationError(f"size sigma must be non-negative, got {self.sigma}")

    def draw(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw apparent sizes for ``count`` objects."""
        if count == 0:
            return np.empty(0, dtype=float)
        sizes = self.median * np.exp(self.sigma * rng.standard_normal(count))
        return np.maximum(sizes, self.minimum)


@dataclass(frozen=True)
class SceneModel:
    """Statistical description of one camera scene.

    Attributes:
        name: Human-readable scene name.
        car_intensity: Mean cars per frame (the Poisson baseline).
        intensity_phi: AR(1) coefficient of the latent log intensity;
            close to 1 gives slowly drifting traffic waves.
        intensity_sigma: Innovation standard deviation of the latent log
            intensity; larger means burstier traffic.
        person_base_rate: Marginal probability that a frame contains at
            least one person when traffic is at its baseline level.
        person_traffic_coupling: How strongly person presence rises with
            the latent traffic intensity (0 = independent). Positive values
            create the car-person correlation the paper's §5.2.2 relies on.
        mean_persons_when_present: Mean additional persons (beyond the
            first) in frames that contain people.
        face_given_person: Probability a person-frame also shows at least
            one recognisable face.
        car_sizes: Apparent-size distribution for cars.
        person_sizes: Apparent-size distribution for persons.
        face_sizes: Apparent-size distribution for faces.
    """

    name: str
    car_intensity: float
    intensity_phi: float = 0.97
    intensity_sigma: float = 0.25
    person_base_rate: float = 0.15
    person_traffic_coupling: float = 0.5
    mean_persons_when_present: float = 0.6
    face_given_person: float = 0.3
    car_sizes: SizeDistribution = field(default_factory=lambda: SizeDistribution(60.0, 0.5))
    person_sizes: SizeDistribution = field(default_factory=lambda: SizeDistribution(35.0, 0.4))
    face_sizes: SizeDistribution = field(default_factory=lambda: SizeDistribution(12.0, 0.35))

    def __post_init__(self) -> None:
        if self.car_intensity < 0:
            raise ConfigurationError(
                f"car intensity must be non-negative, got {self.car_intensity}"
            )
        if not 0.0 <= self.intensity_phi < 1.0:
            raise ConfigurationError(
                f"AR(1) coefficient must lie in [0, 1), got {self.intensity_phi}"
            )
        if self.intensity_sigma < 0:
            raise ConfigurationError(
                f"intensity sigma must be non-negative, got {self.intensity_sigma}"
            )
        if not 0.0 <= self.person_base_rate <= 1.0:
            raise ConfigurationError(
                f"person base rate must lie in [0, 1], got {self.person_base_rate}"
            )
        if not 0.0 <= self.face_given_person <= 1.0:
            raise ConfigurationError(
                f"face_given_person must lie in [0, 1], got {self.face_given_person}"
            )

    def simulate_intensity(self, frames: int, rng: np.random.Generator) -> np.ndarray:
        """Latent per-frame traffic intensity (cars per frame).

        The log intensity follows a stationary AR(1) started from its
        stationary distribution, exponentiated and scaled so the marginal
        mean is approximately :attr:`car_intensity`.

        Args:
            frames: Number of frames to simulate.
            rng: Source of randomness.

        Returns:
            Positive per-frame intensities, length ``frames``.
        """
        if frames <= 0:
            raise ConfigurationError(f"frame count must be positive, got {frames}")
        phi = self.intensity_phi
        sigma = self.intensity_sigma
        stationary_sd = sigma / np.sqrt(1.0 - phi * phi) if sigma > 0 else 0.0
        log_level = np.empty(frames)
        log_level[0] = stationary_sd * rng.standard_normal()
        innovations = sigma * rng.standard_normal(frames - 1) if frames > 1 else None
        for t in range(1, frames):
            log_level[t] = phi * log_level[t - 1] + innovations[t - 1]
        # E[exp(g)] = exp(sd^2 / 2) for stationary Gaussian g, so divide it
        # out to keep the marginal mean at car_intensity.
        correction = np.exp(0.5 * stationary_sd * stationary_sd)
        return self.car_intensity * np.exp(log_level) / correction

    def simulate_person_presence(
        self, intensity: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-frame person-presence indicator correlated with traffic.

        The presence probability is the base rate scaled by the relative
        traffic level raised to the coupling strength, clipped to [0, 1].

        Args:
            intensity: Per-frame traffic intensity from
                :meth:`simulate_intensity`.
            rng: Source of randomness.

        Returns:
            Boolean array, True where the frame contains at least one person.
        """
        if self.car_intensity > 0:
            relative = intensity / self.car_intensity
        else:
            relative = np.ones_like(intensity)
        probability = np.clip(
            self.person_base_rate * relative**self.person_traffic_coupling,
            0.0,
            1.0,
        )
        return rng.random(intensity.size) < probability
