"""Synthetic video substrate.

The paper evaluates on the night-street (BlazeIt) and UA-DETRAC corpora with
GPU object detectors; neither videos nor weights are available offline, so
this subpackage provides the synthetic equivalent described in DESIGN.md:
traffic scenes that generate per-frame ground-truth objects (cars, persons,
faces) with temporally correlated arrival processes and realistic
car-person correlation.

The key exports are:

- :class:`~repro.video.geometry.Resolution` — frame resolutions.
- :class:`~repro.video.dataset.VideoDataset` — a generated corpus with flat
  object arrays (for fast vectorised detection) and per-frame record views.
- :mod:`repro.video.presets` — dataset builders calibrated to the paper's
  corpora (frame counts, person/face prevalence, count distributions).
"""

from repro.video.calibration import (
    CalibrationReport,
    CalibrationTarget,
    calibrate_scene,
)
from repro.video.dataset import VideoDataset
from repro.video.frame import FrameRecord, ObjectClass, ObjectInstance
from repro.video.geometry import Resolution
from repro.video.presets import (
    build_dataset,
    detrac_sequence_pair,
    night_street,
    ua_detrac,
)
from repro.video.scene import SceneModel

__all__ = [
    "CalibrationReport",
    "CalibrationTarget",
    "FrameRecord",
    "ObjectClass",
    "ObjectInstance",
    "Resolution",
    "SceneModel",
    "VideoDataset",
    "build_dataset",
    "calibrate_scene",
    "detrac_sequence_pair",
    "night_street",
    "ua_detrac",
]
