"""Dataset builders calibrated to the paper's corpora.

Each preset reproduces the statistics §5.1 of the paper reports for the real
corpus it stands in for:

- :func:`night_street` — BlazeIt's Jackson Hole night street: 19,463 frames
  (the paper's 1-in-50 selection of 973k), sparse night traffic, 14.18% of
  frames contain a person and 4.02% a face.
- :func:`ua_detrac` — UA-DETRAC test selection: 15,210 frames of busy
  Beijing/Tianjin intersections, 65.86% person frames and 2.48% face frames.
- :func:`detrac_sequence_pair` — two visually similar sequences from the
  same camera (the paper's MVI_40771 with 1,720 frames and MVI_40775 with
  975 frames) used by the §5.3.2 profile-similarity experiment.

The default frame counts match the paper; pass ``frame_count`` to scale a
preset down for fast tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.video.dataset import ObjectArrays, VideoDataset
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution
from repro.video.scene import SceneModel, SizeDistribution

NIGHT_STREET_FRAMES = 19463
UA_DETRAC_FRAMES = 15210
DETRAC_SEQUENCE_A_FRAMES = 1720
DETRAC_SEQUENCE_B_FRAMES = 975


def _draw_class_objects(
    counts: np.ndarray, sizes: SizeDistribution, rng: np.random.Generator
) -> ObjectArrays:
    """Flat object arrays for one class given per-frame counts."""
    total = int(counts.sum())
    if total == 0:
        return ObjectArrays.empty()
    frame = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    return ObjectArrays(
        frame=frame,
        size=sizes.draw(total, rng),
        difficulty=rng.random(total),
        duplicate_latent=rng.random(total),
    )


def build_dataset(
    scene: SceneModel,
    frame_count: int,
    seed: int,
    native_resolution: Resolution,
    name: str | None = None,
    frame_rate: float = 30.0,
) -> VideoDataset:
    """Generate a corpus from a scene model.

    The generation order is fixed (intensity, car counts, person presence,
    person counts, faces, sizes, latents, clutter) so a given
    ``(scene, frame_count, seed)`` always produces the identical corpus.

    Args:
        scene: The statistical scene description.
        frame_count: Number of frames to generate.
        seed: RNG seed; part of the dataset's cache identity.
        native_resolution: Capture resolution of the corpus.
        name: Corpus name; defaults to the scene name.
        frame_rate: Frames per second (metadata).

    Returns:
        The generated dataset.
    """
    if frame_count <= 0:
        raise ConfigurationError(f"frame count must be positive, got {frame_count}")
    rng = np.random.default_rng(seed)
    intensity = scene.simulate_intensity(frame_count, rng)
    car_counts = rng.poisson(intensity)

    person_present = scene.simulate_person_presence(intensity, rng)
    person_counts = np.zeros(frame_count, dtype=np.int64)
    present_idx = np.nonzero(person_present)[0]
    if present_idx.size:
        person_counts[present_idx] = 1 + rng.poisson(
            scene.mean_persons_when_present, size=present_idx.size
        )

    face_present = person_present & (rng.random(frame_count) < scene.face_given_person)
    face_counts = np.zeros(frame_count, dtype=np.int64)
    face_idx = np.nonzero(face_present)[0]
    if face_idx.size:
        # A frame cannot show more faces than persons.
        face_counts[face_idx] = np.minimum(
            1 + rng.poisson(0.2, size=face_idx.size), person_counts[face_idx]
        )

    objects = {
        ObjectClass.CAR: _draw_class_objects(car_counts, scene.car_sizes, rng),
        ObjectClass.PERSON: _draw_class_objects(person_counts, scene.person_sizes, rng),
        ObjectClass.FACE: _draw_class_objects(face_counts, scene.face_sizes, rng),
    }
    return VideoDataset(
        name=name or scene.name,
        native_resolution=native_resolution,
        frame_count=frame_count,
        objects=objects,
        clutter=rng.random(frame_count),
        frame_rate=frame_rate,
        seed=seed,
    )


def night_street_scene() -> SceneModel:
    """Scene model of the night-street corpus (sparse night traffic)."""
    return SceneModel(
        name="night-street",
        car_intensity=0.8,
        intensity_phi=0.985,
        intensity_sigma=0.12,
        person_base_rate=0.142,
        person_traffic_coupling=1.2,
        mean_persons_when_present=0.4,
        face_given_person=0.40,
        car_sizes=SizeDistribution(median=55.0, sigma=0.45),
        person_sizes=SizeDistribution(median=30.0, sigma=0.40),
        face_sizes=SizeDistribution(median=11.0, sigma=0.35),
    )


def night_street(frame_count: int = NIGHT_STREET_FRAMES, seed: int = 1001) -> VideoDataset:
    """The night-street corpus stand-in (native 640x640, 30 FPS).

    Args:
        frame_count: Frames to generate; defaults to the paper's 19,463.
        seed: Generator seed.

    Returns:
        The generated dataset.
    """
    return build_dataset(
        night_street_scene(),
        frame_count=frame_count,
        seed=seed,
        native_resolution=Resolution(640),
        frame_rate=30.0,
    )


def ua_detrac_scene() -> SceneModel:
    """Scene model of the UA-DETRAC corpus (busy daytime intersections)."""
    return SceneModel(
        name="ua-detrac",
        car_intensity=6.0,
        intensity_phi=0.97,
        intensity_sigma=0.17,
        person_base_rate=0.75,
        person_traffic_coupling=0.45,
        mean_persons_when_present=1.2,
        face_given_person=0.045,
        car_sizes=SizeDistribution(median=70.0, sigma=0.55),
        person_sizes=SizeDistribution(median=38.0, sigma=0.45),
        face_sizes=SizeDistribution(median=12.0, sigma=0.35),
    )


def ua_detrac(frame_count: int = UA_DETRAC_FRAMES, seed: int = 2002) -> VideoDataset:
    """The UA-DETRAC corpus stand-in (native 608x608, 25 FPS).

    Args:
        frame_count: Frames to generate; defaults to the paper's 15,210.
        seed: Generator seed.

    Returns:
        The generated dataset.
    """
    return build_dataset(
        ua_detrac_scene(),
        frame_count=frame_count,
        seed=seed,
        native_resolution=Resolution(608),
        frame_rate=25.0,
    )


def detrac_sequence_pair(
    frames_a: int = DETRAC_SEQUENCE_A_FRAMES,
    frames_b: int = DETRAC_SEQUENCE_B_FRAMES,
    seed: int = 3003,
) -> tuple[VideoDataset, VideoDataset]:
    """Two visually similar sequences from the same synthetic camera.

    One long stream is simulated and two disjoint time windows are sliced
    out of it, separated by a gap — the same camera at different times, as
    in the paper's §5.3.2 (MVI_40771 vs MVI_40775). The sequences share the
    scene and its statistics but contain different traffic, so their
    profiles should be similar without being identical.

    Args:
        frames_a: Length of sequence A (the original video); paper: 1,720.
        frames_b: Length of sequence B (the similar video); paper: 975.
        seed: Seed of the underlying stream.

    Returns:
        The pair ``(video_a, video_b)``.
    """
    gap = max(frames_a, frames_b) // 4
    stream = build_dataset(
        ua_detrac_scene(),
        frame_count=frames_a + gap + frames_b,
        seed=seed,
        native_resolution=Resolution(608),
        name="detrac-camera-stream",
        frame_rate=25.0,
    )
    video_a = stream.slice(0, frames_a, name="detrac-seq-A")
    video_b = stream.slice(
        frames_a + gap, frames_a + gap + frames_b, name="detrac-seq-B"
    )
    return video_a, video_b
