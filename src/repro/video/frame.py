"""Object and frame records of the synthetic corpora.

Datasets store objects in flat numpy arrays for vectorised detection (see
:mod:`repro.video.dataset`); the classes here are the readable per-frame view
of that storage, used by examples, tests, and anything that wants to inspect
a single frame.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ObjectClass(enum.IntEnum):
    """Object classes the synthetic scenes generate.

    The integer values index the per-class columns of the dataset's flat
    arrays; they are stable and safe to persist.
    """

    CAR = 0
    PERSON = 1
    FACE = 2

    @classmethod
    def from_name(cls, name: str) -> "ObjectClass":
        """Parse a class from its lower-case name, e.g. ``"person"``.

        Args:
            name: Class name, case-insensitive.

        Returns:
            The matching class member.
        """
        try:
            return cls[name.upper()]
        except KeyError:
            valid = ", ".join(member.name.lower() for member in cls)
            raise ValueError(f"unknown object class {name!r}; valid: {valid}") from None


@dataclass(frozen=True)
class ObjectInstance:
    """One ground-truth object in one frame.

    Attributes:
        object_class: The object's class.
        size: Apparent size in pixels at the dataset's native resolution
            (roughly the square root of the bounding-box area).
        difficulty: Latent detectability in ``[0, 1)``; detectors compare
            their confidence against a threshold that this latent perturbs,
            so a *fixed* difficulty makes detection deterministic per
            (object, resolution) and monotone in resolution.
        duplicate_latent: Second latent in ``[0, 1)`` used only by
            model-specific anomaly terms (e.g. the YOLOv4-like duplicate
            detections at 384x384, Figure 7/8 of the paper).
    """

    object_class: ObjectClass
    size: float
    difficulty: float
    duplicate_latent: float


@dataclass(frozen=True)
class FrameRecord:
    """Ground truth for a single frame.

    Attributes:
        index: Frame index within the dataset.
        objects: The frame's ground-truth objects.
        clutter: Per-frame latent in ``[0, 1)`` that drives deterministic
            false positives at degraded resolutions.
    """

    index: int
    objects: tuple[ObjectInstance, ...]
    clutter: float

    def count(self, object_class: ObjectClass) -> int:
        """Number of ground-truth objects of a class in this frame."""
        return sum(1 for obj in self.objects if obj.object_class == object_class)

    def contains(self, object_class: ObjectClass) -> bool:
        """Whether the frame contains at least one object of the class."""
        return any(obj.object_class == object_class for obj in self.objects)
