"""VAR aggregate estimation — the paper's named future-work extension (§7).

The population variance decomposes into two means,
``Var(X) = mean(X^2) - mean(X)^2``, so Algorithm 1's machinery extends
naturally: build Hoeffding–Serfling intervals for both moments (splitting
the failure budget ``delta`` across them), combine them into an interval
for the variance, and emit the same bound-aware output construction as
Theorem 3.1 — whose proof only needs *some* valid interval ``[LB, UB]``
around the true (non-negative) quantity.

With probability at least ``1 - delta``::

    mean(X)   in [m1 - I1, m1 + I1]      (H-S at delta/2)
    mean(X^2) in [m2 - I2, m2 + I2]      (H-S at delta/2)
    =>  Var(X) in [max(0, L2 - U1^2), U2 - L1^2]

where ``L1 = max(0, |m1| - I1)``, ``U1 = |m1| + I1`` bound ``|mean(X)|``
and hence ``mean(X)^2 in [L1^2, U1^2]``.

Each moment's radius is the tighter of the Hoeffding–Serfling and the
(variance-adaptive) empirical Bernstein radius, each at ``delta / 4`` so
the union still spends ``delta / 2`` per moment. The adaptivity matters:
``X^2`` has an enormous range on heavy-tailed counts, and the
Bernstein variance term often beats the pure range bound.

Honest caveat: a distribution-free VAR bound needs the second moment, whose
range grows quadratically, so the bound is informative only at moderate-to-
large sample fractions on skewed data — presumably why the paper left VAR
as future work. The extension bench quantifies exactly this.

A CLT baseline (the delta-method asymptotic variance of the sample
variance) is included for the same tight-but-unguaranteed comparison the
paper draws for the mean family.
"""

from __future__ import annotations

import math

import numpy as np

from repro.estimators.base import Estimate, MeanEstimator, validate_sample
from repro.estimators.smokescreen import bound_aware_estimate_from_interval
from repro.stats.hypergeometric import z_score
from repro.stats.inequalities import (
    empirical_bernstein_radius,
    hoeffding_serfling_radius,
)


def _moment_radius(
    sample: np.ndarray, universe_size: int, budget: float
) -> float:
    """Tighter of the H-S and empirical Bernstein radii, each at budget/2."""
    n = sample.size
    value_range = float(sample.max() - sample.min())
    hs = hoeffding_serfling_radius(n, universe_size, budget / 2.0, value_range)
    bernstein = empirical_bernstein_radius(
        n, budget / 2.0, value_range, float(sample.std())
    )
    return min(hs, bernstein)


class SmokescreenVarianceEstimator(MeanEstimator):
    """Algorithm 1 extended to the VAR aggregate via moment intervals."""

    name = "smokescreen"

    def estimate(
        self,
        values: np.ndarray,
        universe_size: int,
        delta: float,
        value_range: float | None = None,
    ) -> Estimate:
        """Estimate the universe variance with a relative error bound.

        Args:
            values: Sampled values (without replacement).
            universe_size: Universe size the sample was drawn from.
            delta: Bound failure probability, split across the two moments.
            value_range: Known population range of the values, or None for
                the sample range; a known range also caps the squares'
                range at ``max(|lo|, |hi|)^2``-style bounds via the sample.

        Returns:
            The bound-aware variance estimate; ``error_bound`` holds with
            probability at least ``1 - delta`` under random interventions.
        """
        array = validate_sample(values, universe_size)
        n = array.size
        half_delta = delta / 2.0

        mean1 = float(array.mean())
        squares = array * array
        mean2 = float(squares.mean())

        radius1 = _moment_radius(array, universe_size, half_delta)
        radius2 = _moment_radius(squares, universe_size, half_delta)

        abs_mean_upper = abs(mean1) + radius1
        abs_mean_lower = max(0.0, abs(mean1) - radius1)
        second_upper = mean2 + radius2
        second_lower = max(0.0, mean2 - radius2)

        variance_upper = max(0.0, second_upper - abs_mean_lower**2)
        variance_lower = max(0.0, second_lower - abs_mean_upper**2)

        sample_variance = float(array.var())
        estimate = bound_aware_estimate_from_interval(
            sample_variance,
            variance_upper,
            variance_lower,
            n,
            universe_size,
            self.name,
        )
        extras = dict(estimate.extras)
        extras.update({"sample_variance": sample_variance})
        return Estimate(
            value=estimate.value,
            error_bound=estimate.error_bound,
            method=estimate.method,
            n=n,
            universe_size=universe_size,
            extras=extras,
        )


class CLTVarianceEstimator(MeanEstimator):
    """Delta-method CLT baseline for VAR — tight but not guaranteed.

    The asymptotic variance of the sample variance is
    ``(mu4 - sigma^4) / n`` (fourth central moment ``mu4``); the nominal
    interval is ``s^2 ± z * sqrt((m4_hat - s^4) / n)`` and the relative
    bound divides the radius by the interval's lower endpoint, exactly how
    the paper constructs its mean-family CLT baseline.
    """

    name = "clt"

    def estimate(
        self,
        values: np.ndarray,
        universe_size: int,
        delta: float,
        value_range: float | None = None,
    ) -> Estimate:
        """See :class:`SmokescreenVarianceEstimator` for the contract."""
        array = validate_sample(values, universe_size)
        n = array.size
        sample_variance = float(array.var())
        if n < 2:
            return Estimate(
                value=sample_variance,
                error_bound=math.inf,
                method=self.name,
                n=n,
                universe_size=universe_size,
                extras={"radius": math.inf},
            )
        centered = array - array.mean()
        fourth_moment = float(np.mean(centered**4))
        asymptotic = max(fourth_moment - sample_variance**2, 0.0)
        radius = z_score(delta) * math.sqrt(asymptotic / n)
        lower = sample_variance - radius
        error_bound = radius / lower if lower > 0 else math.inf
        return Estimate(
            value=sample_variance,
            error_bound=error_bound,
            method=self.name,
            n=n,
            universe_size=universe_size,
            extras={"radius": radius},
        )
