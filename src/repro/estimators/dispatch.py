"""Routing a (query, execution, method) triple to the right estimator.

The mean-family estimators work at the mean level; SUM and COUNT scale the
result by the corpus length (paper §3.2.2–3.2.3: the video length is known
in advance, and scaling by a known constant leaves the relative bound
unchanged). MAX/MIN route to the quantile estimators. This module owns that
bookkeeping so experiments can ask for any method by name.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.estimators.base import (
    BatchEstimate,
    Estimate,
    MeanEstimator,
    QuantileEstimator,
)
from repro.estimators.classic import (
    CLTEstimator,
    HoeffdingEstimator,
    HoeffdingSerflingEstimator,
)
from repro.estimators.ebgs import EBGSEstimator
from repro.estimators.quantile import SmokescreenQuantileEstimator
from repro.estimators.smokescreen import SmokescreenMeanEstimator
from repro.estimators.stein import SteinEstimator
from repro.estimators.variance import (
    CLTVarianceEstimator,
    SmokescreenVarianceEstimator,
)
from repro.query.processor import DegradedExecution
from repro.query.query import AggregateQuery
from repro.stats.prefix_moments import PrefixMoments


def mean_estimator_registry() -> dict[str, MeanEstimator]:
    """Fresh instances of every mean-family estimator, keyed by name."""
    estimators: list[MeanEstimator] = [
        SmokescreenMeanEstimator(),
        EBGSEstimator(),
        HoeffdingEstimator(),
        HoeffdingSerflingEstimator(),
        CLTEstimator(),
    ]
    return {estimator.name: estimator for estimator in estimators}


def quantile_estimator_registry() -> dict[str, QuantileEstimator]:
    """Fresh instances of every quantile estimator, keyed by name."""
    estimators: list[QuantileEstimator] = [
        SmokescreenQuantileEstimator(),
        SteinEstimator(),
    ]
    return {estimator.name: estimator for estimator in estimators}


def variance_estimator_registry() -> dict[str, MeanEstimator]:
    """Fresh instances of every VAR estimator, keyed by name."""
    estimators: list[MeanEstimator] = [
        SmokescreenVarianceEstimator(),
        CLTVarianceEstimator(),
    ]
    return {estimator.name: estimator for estimator in estimators}


def estimate_query(
    query: AggregateQuery,
    execution: DegradedExecution,
    method: str = "smokescreen",
) -> Estimate:
    """Estimate a query's answer and error bound from a degraded execution.

    Args:
        query: The query (selects the aggregate and its parameters).
        execution: A degraded execution produced by
            :meth:`repro.query.processor.QueryProcessor.execute`.
        method: Estimator name — one of the mean registry for
            AVG/SUM/COUNT (``smokescreen``, ``ebgs``, ``hoeffding``,
            ``hoeffding-serfling``, ``clt``) or the quantile registry for
            MAX/MIN (``smokescreen``, ``stein``).

    Returns:
        The estimate, with SUM/COUNT answers scaled to the corpus length.
    """
    if query.aggregate.is_mean_family:
        registry = mean_estimator_registry()
        estimator = registry.get(method)
        if estimator is None:
            raise ConfigurationError(
                f"unknown mean estimator {method!r}; valid: {sorted(registry)}"
            )
        estimate = estimator.estimate(
            execution.values,
            execution.universe_size,
            query.delta,
            value_range=query.known_value_range,
        )
        if query.aggregate.name in ("SUM", "COUNT"):
            return estimate.scaled(execution.population_size)
        return estimate

    if query.aggregate.is_variance:
        registry_v = variance_estimator_registry()
        estimator_v = registry_v.get(method)
        if estimator_v is None:
            raise ConfigurationError(
                f"unknown variance estimator {method!r}; valid: "
                f"{sorted(registry_v)}"
            )
        return estimator_v.estimate(
            execution.values, execution.universe_size, query.delta
        )

    registry_q = quantile_estimator_registry()
    estimator_q = registry_q.get(method)
    if estimator_q is None:
        raise ConfigurationError(
            f"unknown quantile estimator {method!r}; valid: {sorted(registry_q)}"
        )
    return estimator_q.estimate(
        execution.values,
        execution.universe_size,
        query.effective_quantile,
        query.delta,
        query.aggregate,
    )


def estimate_batch(
    query: AggregateQuery,
    moments: PrefixMoments,
    n: int,
    universe_size: int,
    population_size: int,
    method: str = "smokescreen",
) -> BatchEstimate:
    """Batch analogue of :func:`estimate_query` over prefix moments.

    Prices the length-``n`` prefix of every trial at once with the same
    routing and scaling as the scalar path: mean-family methods use their
    vectorized ``estimate_batch`` kernels, while variance and quantile
    methods (whose estimators have no closed batch form) fall through the
    per-trial fallback of :class:`~repro.estimators.base.MeanEstimator` /
    :class:`~repro.estimators.base.QuantileEstimator`.

    Args:
        query: The query (selects the aggregate and its parameters).
        moments: Prefix moments of the ``(trials, max_size)`` value matrix,
            gathered under this query's degradation setting.
        n: Prefix length to price.
        universe_size: Eligible-universe size the trials sampled from.
        population_size: Total corpus length, for SUM/COUNT scaling.
        method: Estimator name, as for :func:`estimate_query`.

    Returns:
        Per-trial values and bounds, SUM/COUNT answers scaled to the
        corpus length.
    """
    if query.aggregate.is_mean_family:
        registry = mean_estimator_registry()
        estimator = registry.get(method)
        if estimator is None:
            raise ConfigurationError(
                f"unknown mean estimator {method!r}; valid: {sorted(registry)}"
            )
        batch = estimator.estimate_batch(
            moments,
            n,
            universe_size,
            query.delta,
            value_range=query.known_value_range,
        )
        if query.aggregate.name in ("SUM", "COUNT"):
            return batch.scaled(population_size)
        return batch

    if query.aggregate.is_variance:
        registry_v = variance_estimator_registry()
        estimator_v = registry_v.get(method)
        if estimator_v is None:
            raise ConfigurationError(
                f"unknown variance estimator {method!r}; valid: "
                f"{sorted(registry_v)}"
            )
        return estimator_v.estimate_batch(moments, n, universe_size, query.delta)

    registry_q = quantile_estimator_registry()
    estimator_q = registry_q.get(method)
    if estimator_q is None:
        raise ConfigurationError(
            f"unknown quantile estimator {method!r}; valid: {sorted(registry_q)}"
        )
    return estimator_q.estimate_batch(
        moments,
        n,
        universe_size,
        query.effective_quantile,
        query.delta,
        query.aggregate,
    )


def estimate_rows(
    query: AggregateQuery,
    matrix: np.ndarray,
    universe_size: int,
    population_size: int,
    method: str = "smokescreen",
) -> list[Estimate]:
    """Price every row of a raw value matrix with one batched kernel call.

    The serving-daemon entry point: N coalesced requests stack their
    sampled values into one ``(N, n)`` matrix, the prefix moments are
    built in a single pass, and :func:`estimate_batch` prices all rows at
    once. Every moment and bound operation is row-independent, so row
    ``i`` of the result is **bit-identical** to calling this function on
    ``matrix[i : i + 1]`` alone — the property the daemon's
    micro-batched-vs-serial determinism guarantee rests on.

    Args:
        query: The query (selects the aggregate and its parameters).
        matrix: ``(rows, n)`` value matrix; each row is one request's
            sampled values in draw order. All rows share the degradation
            setting, hence the same ``n``.
        universe_size: Eligible-universe size the rows sampled from.
        population_size: Total corpus length, for SUM/COUNT scaling.
        method: Estimator name, as for :func:`estimate_query`.

    Returns:
        One :class:`~repro.estimators.base.Estimate` per row, in order.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[1] == 0:
        raise ConfigurationError(
            f"estimate_rows needs a non-empty (rows, n) matrix, got shape "
            f"{matrix.shape}"
        )
    moments = PrefixMoments(matrix)
    batch = estimate_batch(
        query,
        moments,
        matrix.shape[1],
        universe_size,
        population_size,
        method,
    )
    return [batch.trial(t) for t in range(matrix.shape[0])]
