"""EBGS baseline: the empirical Bernstein stopping algorithm as an estimator.

Mnih, Szepesvári & Audibert's EBGS [48] maintains, for every prefix length
``t`` of the sample stream, an empirical Bernstein confidence interval that
holds *simultaneously* for all ``t`` (via the union budget
``delta_t = delta / (t (t + 1))``), and tracks the running envelope

    LB = max_t (|x_bar_t| - c_t)        UB = min_t (|x_bar_t| + c_t).

The paper uses EBGS directly as an estimator (no stopping), with the same
bound-aware output construction as Algorithm 1. Smokescreen's improvement
over this baseline is twofold: it needs the interval only at the final
``n`` (no union penalty) and it uses the Hoeffding–Serfling inequality,
which suits small without-replacement samples better than the empirical
Bernstein bound.
"""

from __future__ import annotations

import numpy as np

from repro.estimators.base import (
    Estimate,
    MeanEstimator,
    effective_range,
    validate_sample,
)
from repro.estimators.smokescreen import bound_aware_estimate_from_interval


class EBGSEstimator(MeanEstimator):
    """Empirical Bernstein stopping, used as a mean estimator."""

    name = "ebgs"

    def estimate(
        self,
        values: np.ndarray,
        universe_size: int,
        delta: float,
        value_range: float | None = None,
    ) -> Estimate:
        """See :class:`repro.estimators.base.MeanEstimator`.

        The running envelope over all prefixes is computed vectorised:
        prefix means and (population) standard deviations via cumulative
        sums, prefix radii from the union empirical Bernstein bound, then
        max/min over prefixes.
        """
        array = validate_sample(values, universe_size)
        n = array.size
        t = np.arange(1, n + 1, dtype=float)

        cumsum = np.cumsum(array)
        cumsum_sq = np.cumsum(array * array)
        prefix_mean = cumsum / t
        prefix_var = np.maximum(cumsum_sq / t - prefix_mean**2, 0.0)
        prefix_std = np.sqrt(prefix_var)

        # EBGS assumes a known range; by default we use the sample range
        # of the full stream (keeping the methods comparable), or the
        # a-priori range when one is supplied.
        sample_range = effective_range(array, value_range)
        log_term = np.log(3.0 * t * (t + 1.0) / delta)
        radii = prefix_std * np.sqrt(2.0 * log_term / t) + (
            3.0 * sample_range * log_term / t
        )

        lower = float(np.max(np.abs(prefix_mean) - radii))
        upper = float(np.min(np.abs(prefix_mean) + radii))
        lower = max(0.0, lower)
        # A crossed envelope (lower > upper) can only arise when some prefix
        # interval already excluded the truth; collapse it to the midpoint
        # so the output formulas stay well defined.
        if lower > upper:
            lower = upper = (lower + upper) / 2.0

        sample_mean = float(prefix_mean[-1])
        return bound_aware_estimate_from_interval(
            sample_mean, upper, lower, n, universe_size, self.name
        )
