"""EBGS baseline: the empirical Bernstein stopping algorithm as an estimator.

Mnih, Szepesvári & Audibert's EBGS [48] maintains, for every prefix length
``t`` of the sample stream, an empirical Bernstein confidence interval that
holds *simultaneously* for all ``t`` (via the union budget
``delta_t = delta / (t (t + 1))``), and tracks the running envelope

    LB = max_t (|x_bar_t| - c_t)        UB = min_t (|x_bar_t| + c_t).

The paper uses EBGS directly as an estimator (no stopping), with the same
bound-aware output construction as Algorithm 1. Smokescreen's improvement
over this baseline is twofold: it needs the interval only at the final
``n`` (no union penalty) and it uses the Hoeffding–Serfling inequality,
which suits small without-replacement samples better than the empirical
Bernstein bound.
"""

from __future__ import annotations

import numpy as np

from repro.estimators.base import (
    BatchEstimate,
    Estimate,
    MeanEstimator,
    effective_range,
    effective_range_batch,
    validate_batch_request,
    validate_sample,
)
from repro.estimators.smokescreen import (
    bound_aware_batch_from_interval,
    bound_aware_estimate_from_interval,
)
from repro.stats.prefix_moments import PrefixMoments


class EBGSEstimator(MeanEstimator):
    """Empirical Bernstein stopping, used as a mean estimator."""

    name = "ebgs"

    def estimate(
        self,
        values: np.ndarray,
        universe_size: int,
        delta: float,
        value_range: float | None = None,
    ) -> Estimate:
        """See :class:`repro.estimators.base.MeanEstimator`.

        The running envelope over all prefixes is computed vectorised:
        prefix means and (population) standard deviations via cumulative
        sums, prefix radii from the union empirical Bernstein bound, then
        max/min over prefixes.
        """
        array = validate_sample(values, universe_size)
        n = array.size
        t = np.arange(1, n + 1, dtype=float)

        cumsum = np.cumsum(array)
        cumsum_sq = np.cumsum(array * array)
        prefix_mean = cumsum / t
        prefix_var = np.maximum(cumsum_sq / t - prefix_mean**2, 0.0)
        prefix_std = np.sqrt(prefix_var)

        # EBGS assumes a known range; by default we use the sample range
        # of the full stream (keeping the methods comparable), or the
        # a-priori range when one is supplied.
        sample_range = effective_range(array, value_range)
        log_term = np.log(3.0 * t * (t + 1.0) / delta)
        radii = prefix_std * np.sqrt(2.0 * log_term / t) + (
            3.0 * sample_range * log_term / t
        )

        lower = float(np.max(np.abs(prefix_mean) - radii))
        upper = float(np.min(np.abs(prefix_mean) + radii))
        lower = max(0.0, lower)
        # A crossed envelope (lower > upper) can only arise when some prefix
        # interval already excluded the truth; collapse it to the midpoint
        # so the output formulas stay well defined.
        if lower > upper:
            lower = upper = (lower + upper) / 2.0

        sample_mean = float(prefix_mean[-1])
        return bound_aware_estimate_from_interval(
            sample_mean, upper, lower, n, universe_size, self.name
        )

    def estimate_batch(
        self,
        moments: PrefixMoments,
        n: int,
        universe_size: int,
        delta: float,
        value_range: float | None = None,
    ) -> BatchEstimate:
        """Vectorized EBGS envelope over all trials at one prefix length.

        The ``(trials, n)`` prefix mean/variance matrices come straight
        from the shared cumulative sums; the per-prefix radii and the
        max/min envelope reduce along the prefix axis. Row-for-row this
        performs the same sequential cumulative arithmetic as the scalar
        path, so the agreement is exact, not merely within tolerance.
        """
        validate_batch_request(moments, n, universe_size)
        t = np.arange(1, n + 1, dtype=float)
        prefix_mean = moments.prefix_mean_matrix(n)
        prefix_std = np.sqrt(moments.prefix_variance_matrix(n))

        ranges = np.asarray(effective_range_batch(moments, n, value_range))
        log_term = np.log(3.0 * t * (t + 1.0) / delta)
        radii = prefix_std * np.sqrt(2.0 * log_term / t) + (
            3.0 * ranges.reshape(-1, 1) * log_term / t
            if ranges.ndim
            else 3.0 * ranges * log_term / t
        )

        lower = np.max(np.abs(prefix_mean) - radii, axis=1)
        upper = np.min(np.abs(prefix_mean) + radii, axis=1)
        lower = np.maximum(0.0, lower)
        # Crossed envelopes collapse to their midpoints, per trial.
        crossed = lower > upper
        midpoint = (lower + upper) / 2.0
        lower = np.where(crossed, midpoint, lower)
        upper = np.where(crossed, midpoint, upper)

        values, bounds = bound_aware_batch_from_interval(
            prefix_mean[:, -1], upper, lower
        )
        return BatchEstimate(
            values=values,
            error_bounds=bounds,
            method=self.name,
            n=n,
            universe_size=universe_size,
        )
