"""Estimator interfaces and the estimate container."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.errors import EstimationError
from repro.query.aggregates import Aggregate


@dataclass(frozen=True)
class Estimate:
    """An approximate query answer with its error bound.

    Attributes:
        value: The approximate answer ``Y_approx``.
        error_bound: Upper bound ``err_b`` on the relative error (relative
            value error for AVG/SUM/COUNT, relative *rank* error for
            MAX/MIN), valid with probability at least ``1 - delta``.
            May be ``inf`` when a baseline's construction degenerates.
        method: Estimator name, e.g. ``"smokescreen"``.
        n: Sample size the estimate was computed from.
        universe_size: Eligible-universe size the sample was drawn from.
        extras: Method-specific diagnostics (e.g. the interval's UB/LB).
    """

    value: float
    error_bound: float
    method: str
    n: int
    universe_size: int
    extras: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.error_bound < 0:
            raise EstimationError(
                f"error bound must be non-negative, got {self.error_bound}"
            )

    def scaled(self, factor: float) -> "Estimate":
        """The same estimate with the value scaled (AVG -> SUM/COUNT).

        Scaling the answer by a known constant leaves the *relative* error
        bound unchanged (paper §3.2.2).

        Args:
            factor: Multiplier for the value.

        Returns:
            A new estimate with ``value * factor``.
        """
        return Estimate(
            value=self.value * factor,
            error_bound=self.error_bound,
            method=self.method,
            n=self.n,
            universe_size=self.universe_size,
            extras=self.extras,
        )


def validate_sample(values: np.ndarray, universe_size: int) -> np.ndarray:
    """Common input validation for estimators.

    Args:
        values: Sample values.
        universe_size: Size of the universe they were drawn from.

    Returns:
        The values as a float array.
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise EstimationError("cannot estimate from an empty sample")
    if array.size > universe_size:
        raise EstimationError(
            f"sample of size {array.size} exceeds universe size {universe_size}"
        )
    if not np.all(np.isfinite(array)):
        raise EstimationError("sample contains non-finite values")
    return array


class MeanEstimator(abc.ABC):
    """Estimates a population mean with a relative error bound.

    Serves AVG directly; SUM and COUNT scale the result by the known corpus
    length (see :func:`repro.estimators.dispatch.estimate_query`).
    """

    name: str = "mean-estimator"

    @abc.abstractmethod
    def estimate(
        self,
        values: np.ndarray,
        universe_size: int,
        delta: float,
        value_range: float | None = None,
    ) -> Estimate:
        """Estimate the universe mean from a without-replacement sample.

        Args:
            values: Sampled values.
            universe_size: Size of the universe they were drawn from.
            delta: Bound failure probability.
            value_range: The population range ``R`` when it is known a
                priori (e.g. 1.0 for predicate indicators); None falls back
                to the sample range. A known range closes the sample-range
                approximation's blind spot: a sample of identical values
                would otherwise claim a zero-width interval.

        Returns:
            The estimate, with ``error_bound`` holding with probability at
            least ``1 - delta`` under random interventions.
        """


def effective_range(values: np.ndarray, value_range: float | None) -> float:
    """The range an estimator should use: known if given, else sampled.

    Args:
        values: The sample.
        value_range: A-priori known population range, or None.

    Returns:
        ``value_range`` when provided (validated non-negative), else the
        sample range.
    """
    if value_range is not None:
        if value_range < 0:
            raise EstimationError(
                f"known value range must be non-negative, got {value_range}"
            )
        return float(value_range)
    return float(values.max() - values.min())


class QuantileEstimator(abc.ABC):
    """Estimates an extreme quantile with a relative rank-error bound."""

    name: str = "quantile-estimator"

    @abc.abstractmethod
    def estimate(
        self,
        values: np.ndarray,
        universe_size: int,
        r: float,
        delta: float,
        aggregate: Aggregate,
    ) -> Estimate:
        """Estimate the ``r``-th quantile from a without-replacement sample.

        Args:
            values: Sampled values.
            universe_size: Size of the universe they were drawn from.
            r: Quantile level (close to 1 for MAX, close to 0 for MIN).
            delta: Bound failure probability.
            aggregate: MAX or MIN; selects the variance term of the bound.

        Returns:
            The estimate; ``error_bound`` bounds the relative *rank* error.
        """
