"""Estimator interfaces and the estimate containers.

Estimators come in two granularities: the scalar :meth:`MeanEstimator.
estimate` prices one sample, while :meth:`MeanEstimator.estimate_batch`
prices the same prefix length across *all* trials of a
:class:`~repro.stats.prefix_moments.PrefixMoments` matrix at once,
returning per-trial arrays in a :class:`BatchEstimate`. Estimators without
a vectorized form inherit a per-trial fallback that slices each row and
delegates to ``estimate``, so the batch API is total over the registry.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.errors import EstimationError
from repro.query.aggregates import Aggregate
from repro.stats.prefix_moments import PrefixMoments


@dataclass(frozen=True)
class Estimate:
    """An approximate query answer with its error bound.

    Attributes:
        value: The approximate answer ``Y_approx``.
        error_bound: Upper bound ``err_b`` on the relative error (relative
            value error for AVG/SUM/COUNT, relative *rank* error for
            MAX/MIN), valid with probability at least ``1 - delta``.
            May be ``inf`` when a baseline's construction degenerates.
        method: Estimator name, e.g. ``"smokescreen"``.
        n: Sample size the estimate was computed from.
        universe_size: Eligible-universe size the sample was drawn from.
        extras: Method-specific diagnostics (e.g. the interval's UB/LB).
    """

    value: float
    error_bound: float
    method: str
    n: int
    universe_size: int
    extras: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.error_bound < 0:
            raise EstimationError(
                f"error bound must be non-negative, got {self.error_bound}"
            )

    def scaled(self, factor: float) -> "Estimate":
        """The same estimate with the value scaled (AVG -> SUM/COUNT).

        Scaling the answer by a known constant leaves the *relative* error
        bound unchanged (paper §3.2.2).

        Args:
            factor: Multiplier for the value.

        Returns:
            A new estimate with ``value * factor``.
        """
        return Estimate(
            value=self.value * factor,
            error_bound=self.error_bound,
            method=self.method,
            n=self.n,
            universe_size=self.universe_size,
            extras=self.extras,
        )


@dataclass(frozen=True)
class BatchEstimate:
    """Per-trial estimates at one prefix length, as aligned arrays.

    The batch analogue of :class:`Estimate` for sweeps that price the same
    sample size across many trials: ``values[t]`` / ``error_bounds[t]`` are
    exactly the ``value`` / ``error_bound`` the scalar estimator would
    produce on trial ``t``'s prefix (per-trial ``extras`` are dropped; the
    profiler's sweeps never read them).

    Attributes:
        values: Per-trial approximate answers, shape ``(trials,)``.
        error_bounds: Per-trial relative error bounds, shape ``(trials,)``.
        method: Estimator name, e.g. ``"smokescreen"``.
        n: Sample size shared by every trial.
        universe_size: Eligible-universe size the samples were drawn from.
    """

    values: np.ndarray
    error_bounds: np.ndarray
    method: str
    n: int
    universe_size: int

    def __post_init__(self) -> None:
        if self.values.shape != self.error_bounds.shape:
            raise EstimationError(
                f"values shape {self.values.shape} does not match error "
                f"bounds shape {self.error_bounds.shape}"
            )
        if np.any(self.error_bounds < 0):
            raise EstimationError("error bounds must be non-negative")

    def scaled(self, factor: float) -> "BatchEstimate":
        """The same estimates with values scaled (AVG -> SUM/COUNT)."""
        return BatchEstimate(
            values=self.values * factor,
            error_bounds=self.error_bounds,
            method=self.method,
            n=self.n,
            universe_size=self.universe_size,
        )

    def trial(self, t: int) -> Estimate:
        """Trial ``t``'s result as a scalar :class:`Estimate`."""
        return Estimate(
            value=float(self.values[t]),
            error_bound=float(self.error_bounds[t]),
            method=self.method,
            n=self.n,
            universe_size=self.universe_size,
        )


def validate_sample(values: np.ndarray, universe_size: int) -> np.ndarray:
    """Common input validation for estimators.

    Args:
        values: Sample values.
        universe_size: Size of the universe they were drawn from.

    Returns:
        The values as a float array.
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise EstimationError("cannot estimate from an empty sample")
    if array.size > universe_size:
        raise EstimationError(
            f"sample of size {array.size} exceeds universe size {universe_size}"
        )
    if not np.all(np.isfinite(array)):
        raise EstimationError("sample contains non-finite values")
    return array


def validate_batch_request(
    moments: PrefixMoments, n: int, universe_size: int
) -> None:
    """Common validation for batch estimation over prefix moments.

    Mirrors :func:`validate_sample` for the batch API: the prefix length
    plays the role of the sample size (finiteness was already checked by
    the :class:`~repro.stats.prefix_moments.PrefixMoments` constructor).

    Args:
        moments: The precomputed prefix moments.
        n: Requested prefix length.
        universe_size: Size of the universe the trials sampled from.
    """
    if n <= 0:
        raise EstimationError("cannot estimate from an empty sample")
    if n > moments.max_size:
        raise EstimationError(
            f"prefix length {n} exceeds gathered prefix {moments.max_size}"
        )
    if n > universe_size:
        raise EstimationError(
            f"sample of size {n} exceeds universe size {universe_size}"
        )


class MeanEstimator(abc.ABC):
    """Estimates a population mean with a relative error bound.

    Serves AVG directly; SUM and COUNT scale the result by the known corpus
    length (see :func:`repro.estimators.dispatch.estimate_query`).
    """

    name: str = "mean-estimator"

    @abc.abstractmethod
    def estimate(
        self,
        values: np.ndarray,
        universe_size: int,
        delta: float,
        value_range: float | None = None,
    ) -> Estimate:
        """Estimate the universe mean from a without-replacement sample.

        Args:
            values: Sampled values.
            universe_size: Size of the universe they were drawn from.
            delta: Bound failure probability.
            value_range: The population range ``R`` when it is known a
                priori (e.g. 1.0 for predicate indicators); None falls back
                to the sample range. A known range closes the sample-range
                approximation's blind spot: a sample of identical values
                would otherwise claim a zero-width interval.

        Returns:
            The estimate, with ``error_bound`` holding with probability at
            least ``1 - delta`` under random interventions.
        """

    def estimate_batch(
        self,
        moments: PrefixMoments,
        n: int,
        universe_size: int,
        delta: float,
        value_range: float | None = None,
    ) -> BatchEstimate:
        """Price the length-``n`` prefix of every trial at once.

        The base implementation is the per-trial fallback: slice each
        row's prefix and delegate to :meth:`estimate`, so every estimator
        supports the batch API even without a vectorized form. Subclasses
        with closed-form array versions override this with broadcasted
        kernels that agree with the scalar path within the repo's 1e-9
        numerical-equivalence policy.

        Args:
            moments: Prefix moments of the ``(trials, max_size)`` matrix.
            n: Prefix length to price (``1 <= n <= max_size``).
            universe_size: Size of the universe the trials sampled from.
            delta: Bound failure probability.
            value_range: A-priori known population range, or None for each
                trial's sample range.

        Returns:
            Per-trial values and bounds, aligned with the matrix rows.
        """
        validate_batch_request(moments, n, universe_size)
        estimates = [
            self.estimate(
                moments.row(t)[:n], universe_size, delta, value_range=value_range
            )
            for t in range(moments.trials)
        ]
        return BatchEstimate(
            values=np.array([e.value for e in estimates]),
            error_bounds=np.array([e.error_bound for e in estimates]),
            method=self.name,
            n=n,
            universe_size=universe_size,
        )


def effective_range(values: np.ndarray, value_range: float | None) -> float:
    """The range an estimator should use: known if given, else sampled.

    Args:
        values: The sample.
        value_range: A-priori known population range, or None.

    Returns:
        ``value_range`` when provided (validated non-negative), else the
        sample range.
    """
    if value_range is not None:
        if value_range < 0:
            raise EstimationError(
                f"known value range must be non-negative, got {value_range}"
            )
        return float(value_range)
    return float(values.max() - values.min())


def effective_range_batch(
    moments: PrefixMoments, n: int, value_range: float | None
) -> float | np.ndarray:
    """Batch analogue of :func:`effective_range`.

    Args:
        moments: Prefix moments of the trial matrix.
        n: Prefix length.
        value_range: A-priori known population range, or None.

    Returns:
        The known range as a scalar (broadcasts over trials), else the
        per-trial sample ranges of the length-``n`` prefixes.
    """
    if value_range is not None:
        if value_range < 0:
            raise EstimationError(
                f"known value range must be non-negative, got {value_range}"
            )
        return float(value_range)
    return moments.value_range(n)


class QuantileEstimator(abc.ABC):
    """Estimates an extreme quantile with a relative rank-error bound."""

    name: str = "quantile-estimator"

    @abc.abstractmethod
    def estimate(
        self,
        values: np.ndarray,
        universe_size: int,
        r: float,
        delta: float,
        aggregate: Aggregate,
    ) -> Estimate:
        """Estimate the ``r``-th quantile from a without-replacement sample.

        Args:
            values: Sampled values.
            universe_size: Size of the universe they were drawn from.
            r: Quantile level (close to 1 for MAX, close to 0 for MIN).
            delta: Bound failure probability.
            aggregate: MAX or MIN; selects the variance term of the bound.

        Returns:
            The estimate; ``error_bound`` bounds the relative *rank* error.
        """

    def estimate_batch(
        self,
        moments: PrefixMoments,
        n: int,
        universe_size: int,
        r: float,
        delta: float,
        aggregate: Aggregate,
    ) -> BatchEstimate:
        """Per-trial fallback of the batch API for quantile estimators.

        Quantile estimation walks a distinct-value table per sample, which
        has no cheap prefix-cumulative form, so the batch entry point
        always delegates row-by-row to :meth:`estimate`.
        """
        validate_batch_request(moments, n, universe_size)
        estimates = [
            self.estimate(moments.row(t)[:n], universe_size, r, delta, aggregate)
            for t in range(moments.trials)
        ]
        return BatchEstimate(
            values=np.array([e.value for e in estimates]),
            error_bounds=np.array([e.error_bound for e in estimates]),
            method=self.name,
            n=n,
            universe_size=universe_size,
        )
