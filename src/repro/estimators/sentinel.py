"""The online bound-violation sentinel.

The Smokescreen profile promises that, at a chosen degradation setting,
the realized relative error stays within the profiled bound with
probability ``1 - delta``. That promise is conditional on the world the
profile was measured in: an adversarial attack or a physical failure
(:mod:`repro.interventions.adversarial`, :mod:`repro.interventions.physical`)
silently shifts detector outputs, and the profiled bound keeps being
reported while no longer holding.

:class:`BoundSentinel` watches for exactly that. It consumes the streaming
Algorithm 1 path (:class:`~repro.estimators.streaming.StreamingMeanEstimator`)
alongside production traffic and compares the stream's answer against a
trusted *reference* — the profiling-time answer for the same query. The
observable drift between the two decomposes as

    |Y_stream - Y_ref| / |Y_ref|  <=  realized profile error
                                      + stream bound + reference bound,

so when the measured drift exceeds ``profiled_bound + stream_bound +
reference_bound`` (the *allowance*), the profiled bound is provably being
violated — no appeal to distributional assumptions, just the triangle
inequality over quantities the sentinel can actually see. Requiring
``patience`` consecutive breaches after a ``min_count`` warm-up keeps
single-read flukes (each read's bound holds only per-read, see the
streaming module) from tripping the alarm.

On a trip the sentinel emits telemetry (``sentinel.violations``), writes a
run-ledger event, and — when given a correction set estimate — triggers
Algorithm 3 automatically: :meth:`ProfileRepair.corrected_mean_bound`
transfers the correction set's valid bound onto the drifted answer, so the
system keeps returning a *trustworthy* (if wider) bound while degraded
(``sentinel.repairs_triggered``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import EstimationError
from repro.estimators.base import Estimate
from repro.estimators.repair import ProfileRepair, RepairedEstimate
from repro.estimators.streaming import StreamingMeanEstimator
from repro.system import telemetry
from repro.system.observe import ledger as run_ledger


@dataclass(frozen=True)
class SentinelCheck:
    """One drift-vs-allowance comparison on the live stream.

    Attributes:
        count: Stream length when the check ran.
        drift: Observed relative drift ``|Y_stream - Y_ref| / |Y_ref|``.
        allowance: Largest drift consistent with the profiled bound still
            holding (profiled bound + stream bound + reference bound).
        breached: Whether the drift exceeded the allowance.
    """

    count: int
    drift: float
    allowance: float
    breached: bool


@dataclass(frozen=True)
class SentinelVerdict:
    """The sentinel's summary after (or during) a monitoring run.

    Attributes:
        label: The monitored stream's label (e.g. a camera name).
        tripped: Whether a violation was confirmed (``patience``
            consecutive breaches).
        checks: Number of drift checks performed.
        breaches: Number of checks whose drift exceeded the allowance.
        first_breach_count: Stream length at the first breach of the
            confirmed violation, or None if never tripped.
        drift: Drift at the most recent check (None before warm-up).
        allowance: Allowance at the most recent check (None before
            warm-up).
        repair: The Algorithm 3 repaired estimate issued on the trip, or
            None when the sentinel had no correction set (or never
            tripped).
    """

    label: str
    tripped: bool
    checks: int
    breaches: int
    first_breach_count: int | None
    drift: float | None
    allowance: float | None
    repair: RepairedEstimate | None

    def as_payload(self) -> dict:
        """A JSON-friendly summary for ledger events and reports."""
        return {
            "label": self.label,
            "tripped": self.tripped,
            "checks": self.checks,
            "breaches": self.breaches,
            "first_breach_count": self.first_breach_count,
            "drift": self.drift,
            "allowance": self.allowance,
            "repaired_bound": (
                self.repair.error_bound if self.repair is not None else None
            ),
        }


class BoundSentinel:
    """Online monitor comparing realized drift against the profiled bound.

    Feed it the same degraded per-frame values the production estimator
    consumes (:meth:`observe` / :meth:`extend`); it maintains an O(1)
    streaming estimate and checks the drift-vs-allowance inequality after
    every arrival (or once per batch).
    """

    def __init__(
        self,
        reference: Estimate,
        profiled_bound: float,
        universe_size: int,
        delta: float = 0.05,
        min_count: int = 30,
        patience: int = 2,
        correction: Estimate | None = None,
        label: str = "stream",
        stream: StreamingMeanEstimator | None = None,
    ) -> None:
        """Arm the sentinel.

        Args:
            reference: Trusted answer for the monitored query — typically
                the profiling-time exact or tightly-bounded estimate on
                clean video. Its ``error_bound`` joins the allowance.
            profiled_bound: The error bound the profile promised at the
                deployed degradation setting.
            universe_size: Eligible-universe size of the monitored stream.
            delta: Per-read failure probability for the stream bound.
            min_count: Warm-up floor before any check runs (mirrors
                :meth:`StreamingMeanEstimator.estimate_when_below`).
            patience: Consecutive breaches required to confirm a
                violation; absorbs per-read bound failures.
            correction: Optional correction-set estimate (random
                interventions only). When present, a confirmed violation
                automatically triggers Algorithm 3 repair.
            label: Name of the monitored stream, e.g. the camera name.
            stream: Optional pre-built stream estimator — any fresh object
                with ``update``/``extend``/``count``/``estimate`` (e.g.
                :class:`~repro.estimators.streaming.WindowedMeanEstimator`
                or ``DecayedMeanEstimator`` for endless feeds, where drift
                should dominate the answer within a window instead of
                being diluted by the whole clean history). Defaults to the
                cumulative :class:`StreamingMeanEstimator` built from
                ``universe_size``/``delta``.
        """
        if profiled_bound < 0.0 or not math.isfinite(profiled_bound):
            raise EstimationError(
                f"profiled bound must be finite and non-negative, got "
                f"{profiled_bound}"
            )
        if min_count < 1:
            raise EstimationError(f"min count must be positive, got {min_count}")
        if patience < 1:
            raise EstimationError(f"patience must be positive, got {patience}")
        if stream is not None and stream.count:
            raise EstimationError(
                f"stream estimator must be fresh, has already observed "
                f"{stream.count} values"
            )
        self._reference = reference
        self._profiled_bound = profiled_bound
        self._stream = (
            stream if stream is not None
            else StreamingMeanEstimator(universe_size, delta)
        )
        self._min_count = min_count
        self._patience = patience
        self._correction = correction
        self._label = label
        self._checks = 0
        self._breaches = 0
        self._streak = 0
        self._tripped = False
        self._first_breach_count: int | None = None
        self._last_check: SentinelCheck | None = None
        self._repair: RepairedEstimate | None = None

    @property
    def label(self) -> str:
        """The monitored stream's label."""
        return self._label

    @property
    def count(self) -> int:
        """Stream values observed so far."""
        return self._stream.count

    @property
    def tripped(self) -> bool:
        """Whether a violation has been confirmed."""
        return self._tripped

    @property
    def repair(self) -> RepairedEstimate | None:
        """The automatic Algorithm 3 repair, when one was triggered."""
        return self._repair

    def observe(self, value: float) -> SentinelCheck | None:
        """Fold one arriving value and run a drift check.

        Args:
            value: The frame's aggregate input value.

        Returns:
            The check result, or None during warm-up.
        """
        self._stream.update(value)
        return self.check()

    def extend(self, values) -> SentinelCheck | None:
        """Fold a batch of arriving values, then run one drift check.

        One check per batch keeps the per-read semantics of the streaming
        bound honest: the sentinel's breach count grows with *decisions*,
        not with frames.

        Args:
            values: Iterable of finite values.

        Returns:
            The check result, or None during warm-up (or an empty batch).
        """
        self._stream.extend(values)
        if self._stream.count == 0:
            return None
        return self.check()

    def check(self) -> SentinelCheck | None:
        """Compare current drift against the allowance.

        Returns:
            The check result, or None while below the warm-up floor.
        """
        if self._stream.count < self._min_count:
            return None
        estimate = self._stream.estimate()
        drift = self._drift(estimate.value)
        allowance = (
            self._profiled_bound
            + estimate.error_bound
            + self._reference.error_bound
        )
        breached = drift > allowance
        check = SentinelCheck(
            count=self._stream.count,
            drift=drift,
            allowance=allowance,
            breached=breached,
        )
        self._checks += 1
        self._last_check = check
        if breached:
            self._breaches += 1
            self._streak += 1
            if self._first_breach_count is None:
                self._first_breach_count = check.count
            if self._streak >= self._patience and not self._tripped:
                self._trip(estimate, check)
        else:
            self._streak = 0
            if not self._tripped:
                self._first_breach_count = None
        return check

    def _drift(self, stream_value: float) -> float:
        reference = self._reference.value
        if reference == 0.0:
            return 0.0 if stream_value == 0.0 else math.inf
        return abs(stream_value - reference) / abs(reference)

    def _trip(self, estimate: Estimate, check: SentinelCheck) -> None:
        self._tripped = True
        telemetry.count("sentinel.violations")
        run_ledger.record_event(
            "sentinel.violation",
            sentinel=self._label,
            count=check.count,
            drift=check.drift,
            allowance=check.allowance,
            profiled_bound=self._profiled_bound,
        )
        if self._correction is None:
            return
        repaired_bound = ProfileRepair.corrected_mean_bound(
            estimate.value, self._correction
        )
        self._repair = RepairedEstimate(
            value=estimate.value,
            error_bound=repaired_bound,
            degraded=estimate,
            correction=self._correction,
        )
        telemetry.count("sentinel.repairs_triggered")
        run_ledger.record_event(
            "sentinel.repair",
            sentinel=self._label,
            repaired_bound=repaired_bound,
            uncorrected_bound=estimate.error_bound,
        )

    def verdict(self) -> SentinelVerdict:
        """The current summary of the monitoring run."""
        last = self._last_check
        return SentinelVerdict(
            label=self._label,
            tripped=self._tripped,
            checks=self._checks,
            breaches=self._breaches,
            first_breach_count=self._first_breach_count if self._tripped else None,
            drift=last.drift if last is not None else None,
            allowance=last.allowance if last is not None else None,
            repair=self._repair,
        )
