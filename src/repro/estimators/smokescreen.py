"""Smokescreen's mean-family estimator: Algorithm 1 / Theorem 3.1.

The construction: compute the Hoeffding–Serfling interval radius ``I`` for
the sample mean at the *single* final sample size ``n`` (relaxing the EBGS
requirement of simultaneous intervals for every prefix — one source of the
tighter bound), then set

    UB = |x_bar| + I        LB = max(0, |x_bar| - I)
    Y_approx = sgn(x_bar) * 2 UB LB / (UB + LB)
    err_b    = (UB - LB) / (UB + LB)

``Y_approx`` is the harmonic mean of the interval endpoints. That choice is
what makes the *relative* error bound symmetric: Theorem 3.1 shows
``|Y_approx - mu| / |mu| <= err_b`` whenever ``mu`` is inside the interval,
which happens with probability at least ``1 - delta``.
"""

from __future__ import annotations

import numpy as np

from repro.estimators.base import (
    BatchEstimate,
    Estimate,
    MeanEstimator,
    effective_range,
    effective_range_batch,
    validate_batch_request,
    validate_sample,
)
from repro.stats.inequalities import (
    hoeffding_serfling_radius,
    hoeffding_serfling_radius_batch,
)
from repro.stats.prefix_moments import PrefixMoments


def bound_aware_estimate(
    sample_mean: float, radius: float, n: int, universe_size: int, method: str
) -> Estimate:
    """Theorem 3.1's output formulas from a mean and an interval radius.

    Shared by the Smokescreen and EBGS estimators, which differ only in how
    they construct the radius (or the UB/LB pair directly — see
    :func:`bound_aware_estimate_from_interval`).

    Args:
        sample_mean: The sample mean ``x_bar``.
        radius: Two-sided interval radius ``I``.
        n: Sample size.
        universe_size: Universe size the sample came from.
        method: Estimator name to record.

    Returns:
        The bound-aware estimate.
    """
    upper = abs(sample_mean) + radius
    lower = max(0.0, abs(sample_mean) - radius)
    return bound_aware_estimate_from_interval(
        sample_mean, upper, lower, n, universe_size, method
    )


def bound_aware_estimate_from_interval(
    sample_mean: float,
    upper: float,
    lower: float,
    n: int,
    universe_size: int,
    method: str,
) -> Estimate:
    """Theorem 3.1's output formulas from an explicit (UB, LB) pair.

    Args:
        sample_mean: The sample mean (only its sign is used).
        upper: Upper bound ``UB`` on ``|mu|``.
        lower: Lower bound ``LB`` on ``|mu|``; clipped at zero by callers.
        n: Sample size.
        universe_size: Universe size.
        method: Estimator name to record.

    Returns:
        The bound-aware estimate; when ``LB == 0`` the answer is 0 with
        error bound 1, as in the theorem's degenerate case. The one
        exception: ``UB == 0`` pins ``|mu|`` to exactly zero, so the
        estimate is a *certain* zero (e.g. a COUNT whose sample contains
        no satisfying frame and whose interval collapsed).
    """
    if upper <= 0.0:
        return Estimate(
            value=0.0,
            error_bound=0.0,
            method=method,
            n=n,
            universe_size=universe_size,
            extras={"upper": 0.0, "lower": 0.0},
        )
    if lower <= 0.0:
        return Estimate(
            value=0.0,
            error_bound=1.0,
            method=method,
            n=n,
            universe_size=universe_size,
            extras={"upper": upper, "lower": max(lower, 0.0)},
        )
    sign = 1.0 if sample_mean >= 0 else -1.0
    value = sign * 2.0 * upper * lower / (upper + lower)
    error_bound = (upper - lower) / (upper + lower)
    return Estimate(
        value=value,
        error_bound=error_bound,
        method=method,
        n=n,
        universe_size=universe_size,
        extras={"upper": upper, "lower": lower},
    )


def bound_aware_batch_from_interval(
    sample_means: np.ndarray, upper: np.ndarray, lower: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized Theorem 3.1 output formulas over trial arrays.

    Elementwise identical to
    :func:`bound_aware_estimate_from_interval`, including both degenerate
    cases: ``upper <= 0`` pins the answer to a certain zero (bound 0),
    ``lower <= 0`` yields answer 0 with bound 1.

    Args:
        sample_means: Per-trial sample means (only their signs are used).
        upper: Per-trial upper bounds ``UB`` on ``|mu|``.
        lower: Per-trial lower bounds ``LB``, clipped at zero by callers.

    Returns:
        Per-trial ``(values, error_bounds)`` arrays.
    """
    sign = np.where(sample_means >= 0, 1.0, -1.0)
    total = upper + lower
    with np.errstate(divide="ignore", invalid="ignore"):
        values = sign * 2.0 * upper * lower / total
        bounds = (upper - lower) / total
    degenerate_lower = lower <= 0.0
    values = np.where(degenerate_lower, 0.0, values)
    bounds = np.where(degenerate_lower, 1.0, bounds)
    certain_zero = upper <= 0.0
    values = np.where(certain_zero, 0.0, values)
    bounds = np.where(certain_zero, 0.0, bounds)
    return values, bounds


def bound_aware_batch(
    sample_means: np.ndarray, radii: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized analogue of :func:`bound_aware_estimate`.

    Args:
        sample_means: Per-trial sample means.
        radii: Per-trial two-sided interval radii.

    Returns:
        Per-trial ``(values, error_bounds)`` arrays.
    """
    abs_means = np.abs(sample_means)
    upper = abs_means + radii
    lower = np.maximum(0.0, abs_means - radii)
    return bound_aware_batch_from_interval(sample_means, upper, lower)


class SmokescreenMeanEstimator(MeanEstimator):
    """Algorithm 1: Hoeffding–Serfling interval + bound-aware output."""

    name = "smokescreen"

    def estimate(
        self,
        values: np.ndarray,
        universe_size: int,
        delta: float,
        value_range: float | None = None,
    ) -> Estimate:
        """See :class:`repro.estimators.base.MeanEstimator`.

        By default the range ``R`` is the *sample* range, as in Algorithm 1
        line 2 (the population range is unknown under degradation); pass
        ``value_range`` when it is structurally known (COUNT indicators).
        """
        array = validate_sample(values, universe_size)
        sample_range = effective_range(array, value_range)
        sample_mean = float(array.mean())
        radius = hoeffding_serfling_radius(
            array.size, universe_size, delta, sample_range
        )
        return bound_aware_estimate(
            sample_mean, radius, array.size, universe_size, self.name
        )

    def estimate_batch(
        self,
        moments: PrefixMoments,
        n: int,
        universe_size: int,
        delta: float,
        value_range: float | None = None,
    ) -> BatchEstimate:
        """Vectorized Algorithm 1 over all trials at one prefix length.

        See :meth:`repro.estimators.base.MeanEstimator.estimate_batch`;
        the means, sample ranges, and Hoeffding–Serfling radii are all
        O(trials) slices of the precomputed prefix moments.
        """
        validate_batch_request(moments, n, universe_size)
        means = moments.mean(n)
        ranges = effective_range_batch(moments, n, value_range)
        radii = hoeffding_serfling_radius_batch(n, universe_size, delta, ranges)
        values, bounds = bound_aware_batch(means, np.broadcast_to(radii, means.shape))
        return BatchEstimate(
            values=values,
            error_bounds=bounds,
            method=self.name,
            n=n,
            universe_size=universe_size,
        )
