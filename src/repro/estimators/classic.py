"""Classic online-aggregation baselines: Hoeffding, Hoeffding–Serfling, CLT.

All three estimate the answer by the plain sample mean and derive an upper
bound of the *absolute* error from their respective interval radius; the
relative-error bound is then the radius divided by the lower bound of the
query result (``|x_bar| - I``), exactly how the paper constructs these
baselines in §5.1. When the radius swallows the sample mean the lower bound
is non-positive and the relative bound is reported as infinity.

The CLT variant is nominal only — its radius is not a guaranteed bound, and
the paper's Figure 5 measures how often it falls below the true error.
"""

from __future__ import annotations

import math

import numpy as np

from repro.estimators.base import (
    BatchEstimate,
    Estimate,
    MeanEstimator,
    effective_range,
    effective_range_batch,
    validate_batch_request,
    validate_sample,
)
from repro.stats.inequalities import (
    clt_radius,
    clt_radius_batch,
    hoeffding_radius,
    hoeffding_radius_batch,
    hoeffding_serfling_radius,
    hoeffding_serfling_radius_batch,
)
from repro.stats.prefix_moments import PrefixMoments


def _mean_with_ratio_bound(
    sample_mean: float, radius: float, n: int, universe_size: int, method: str
) -> Estimate:
    """Sample-mean estimate with the radius / lower-bound relative bound."""
    lower = abs(sample_mean) - radius
    error_bound = radius / lower if lower > 0 else math.inf
    return Estimate(
        value=sample_mean,
        error_bound=error_bound,
        method=method,
        n=n,
        universe_size=universe_size,
        extras={"radius": radius},
    )


def _ratio_bound_batch(means: np.ndarray, radii: np.ndarray) -> np.ndarray:
    """Vectorized radius / lower-bound relative bound (inf when swallowed)."""
    lower = np.abs(means) - radii
    with np.errstate(divide="ignore", invalid="ignore"):
        bounds = radii / lower
    return np.where(lower > 0, bounds, math.inf)


class HoeffdingEstimator(MeanEstimator):
    """Hoeffding's inequality (i.i.d. assumption), as in online aggregation."""

    name = "hoeffding"

    def estimate(
        self,
        values: np.ndarray,
        universe_size: int,
        delta: float,
        value_range: float | None = None,
    ) -> Estimate:
        """See :class:`repro.estimators.base.MeanEstimator`."""
        array = validate_sample(values, universe_size)
        sample_range = effective_range(array, value_range)
        radius = hoeffding_radius(array.size, delta, sample_range)
        return _mean_with_ratio_bound(
            float(array.mean()), radius, array.size, universe_size, self.name
        )

    def estimate_batch(
        self,
        moments: PrefixMoments,
        n: int,
        universe_size: int,
        delta: float,
        value_range: float | None = None,
    ) -> BatchEstimate:
        """Vectorized Hoeffding pricing over all trials at one prefix."""
        validate_batch_request(moments, n, universe_size)
        means = moments.mean(n)
        ranges = effective_range_batch(moments, n, value_range)
        radii = np.broadcast_to(
            hoeffding_radius_batch(n, delta, ranges), means.shape
        )
        return BatchEstimate(
            values=means,
            error_bounds=_ratio_bound_batch(means, radii),
            method=self.name,
            n=n,
            universe_size=universe_size,
        )


class HoeffdingSerflingEstimator(MeanEstimator):
    """Hoeffding–Serfling inequality (without replacement), ratio bound."""

    name = "hoeffding-serfling"

    def estimate(
        self,
        values: np.ndarray,
        universe_size: int,
        delta: float,
        value_range: float | None = None,
    ) -> Estimate:
        """See :class:`repro.estimators.base.MeanEstimator`."""
        array = validate_sample(values, universe_size)
        sample_range = effective_range(array, value_range)
        radius = hoeffding_serfling_radius(
            array.size, universe_size, delta, sample_range
        )
        return _mean_with_ratio_bound(
            float(array.mean()), radius, array.size, universe_size, self.name
        )

    def estimate_batch(
        self,
        moments: PrefixMoments,
        n: int,
        universe_size: int,
        delta: float,
        value_range: float | None = None,
    ) -> BatchEstimate:
        """Vectorized Hoeffding–Serfling pricing over all trials."""
        validate_batch_request(moments, n, universe_size)
        means = moments.mean(n)
        ranges = effective_range_batch(moments, n, value_range)
        radii = np.broadcast_to(
            hoeffding_serfling_radius_batch(n, universe_size, delta, ranges),
            means.shape,
        )
        return BatchEstimate(
            values=means,
            error_bounds=_ratio_bound_batch(means, radii),
            method=self.name,
            n=n,
            universe_size=universe_size,
        )


class CLTEstimator(MeanEstimator):
    """Central-limit-theorem radius — tight but *not* guaranteed.

    With a single sample the standard deviation is undefined, so the bound
    degenerates to infinity.
    """

    name = "clt"

    def estimate(
        self,
        values: np.ndarray,
        universe_size: int,
        delta: float,
        value_range: float | None = None,
    ) -> Estimate:
        """See :class:`repro.estimators.base.MeanEstimator` (the CLT radius
        is variance-based, so a known range is ignored)."""
        array = validate_sample(values, universe_size)
        sample_mean = float(array.mean())
        if array.size < 2:
            return Estimate(
                value=sample_mean,
                error_bound=math.inf,
                method=self.name,
                n=array.size,
                universe_size=universe_size,
                extras={"radius": math.inf},
            )
        sample_std = float(array.std(ddof=1))
        radius = clt_radius(array.size, delta, sample_std)
        return _mean_with_ratio_bound(
            sample_mean, radius, array.size, universe_size, self.name
        )

    def estimate_batch(
        self,
        moments: PrefixMoments,
        n: int,
        universe_size: int,
        delta: float,
        value_range: float | None = None,
    ) -> BatchEstimate:
        """Vectorized CLT pricing over all trials at one prefix."""
        validate_batch_request(moments, n, universe_size)
        means = moments.mean(n)
        if n < 2:
            return BatchEstimate(
                values=means,
                error_bounds=np.full_like(means, math.inf),
                method=self.name,
                n=n,
                universe_size=universe_size,
            )
        stds = moments.std(n, ddof=1)
        radii = clt_radius_batch(n, delta, stds)
        return BatchEstimate(
            values=means,
            error_bounds=_ratio_bound_batch(means, radii),
            method=self.name,
            n=n,
            universe_size=universe_size,
        )
