"""Query-answer and error-bound estimators (paper §3.2).

Smokescreen's own algorithms:

- :class:`~repro.estimators.smokescreen.SmokescreenMeanEstimator` —
  Algorithm 1 for AVG/SUM/COUNT (Hoeffding–Serfling interval with the
  relaxed, single-``n`` construction; Theorem 3.1).
- :class:`~repro.estimators.quantile.SmokescreenQuantileEstimator` —
  Algorithm 2 for MAX/MIN (extreme quantiles with the hypergeometric normal
  approximation; Theorem 3.2).
- :class:`~repro.estimators.repair.ProfileRepair` — Algorithm 3, correcting
  bounds under non-random interventions with a correction set.
- :class:`~repro.estimators.sentinel.BoundSentinel` — online monitor that
  detects profiled-bound violations (adversarial / physical scenarios) on
  the streaming path and triggers Algorithm 3 repair automatically.

Baselines evaluated in the paper's §5.2.1:

- :class:`~repro.estimators.ebgs.EBGSEstimator` — empirical Bernstein
  stopping [48] used as an estimator.
- :class:`~repro.estimators.classic.HoeffdingEstimator`,
  :class:`~repro.estimators.classic.HoeffdingSerflingEstimator`,
  :class:`~repro.estimators.classic.CLTEstimator` — online-aggregation
  style bounds divided by the result's lower bound.
- :class:`~repro.estimators.stein.SteinEstimator` — sampling-based
  epsilon-approximate quantiles [45].

Use :func:`~repro.estimators.dispatch.estimate_query` to run any method on
a degraded execution with the right scaling per aggregate type.
"""

from repro.estimators.base import (
    BatchEstimate,
    Estimate,
    MeanEstimator,
    QuantileEstimator,
)
from repro.estimators.budget import (
    StratumInterval,
    combine_stratum_intervals,
    resplit_delta,
    split_delta,
)
from repro.estimators.classic import (
    CLTEstimator,
    HoeffdingEstimator,
    HoeffdingSerflingEstimator,
)
from repro.estimators.dispatch import (
    estimate_batch,
    estimate_query,
    mean_estimator_registry,
    quantile_estimator_registry,
)
from repro.estimators.ebgs import EBGSEstimator
from repro.estimators.quantile import SmokescreenQuantileEstimator
from repro.estimators.repair import ProfileRepair, RepairedEstimate
from repro.estimators.sentinel import (
    BoundSentinel,
    SentinelCheck,
    SentinelVerdict,
)
from repro.estimators.smokescreen import SmokescreenMeanEstimator
from repro.estimators.streaming import StreamingMeanEstimator
from repro.estimators.stein import SteinEstimator
from repro.estimators.variance import (
    CLTVarianceEstimator,
    SmokescreenVarianceEstimator,
)

__all__ = [
    "BatchEstimate",
    "BoundSentinel",
    "CLTEstimator",
    "EBGSEstimator",
    "Estimate",
    "HoeffdingEstimator",
    "HoeffdingSerflingEstimator",
    "MeanEstimator",
    "ProfileRepair",
    "QuantileEstimator",
    "RepairedEstimate",
    "SentinelCheck",
    "SentinelVerdict",
    "CLTVarianceEstimator",
    "SmokescreenMeanEstimator",
    "SmokescreenQuantileEstimator",
    "SmokescreenVarianceEstimator",
    "StratumInterval",
    "StreamingMeanEstimator",
    "SteinEstimator",
    "combine_stratum_intervals",
    "estimate_batch",
    "estimate_query",
    "mean_estimator_registry",
    "quantile_estimator_registry",
    "resplit_delta",
    "split_delta",
]
