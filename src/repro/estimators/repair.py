"""Profile repair: Algorithm 3 — correcting bounds under non-random
interventions with a correction set.

Outputs sampled from video degraded by non-random interventions (reduced
resolution, image removal) can be systematically wrong in one direction, so
the basic §3.2 bounds are invalid there. The correction set ``v_1..v_m`` —
frames degraded only by *random* interventions (a plain without-replacement
sample at native resolution and no removal) — anchors an unbiased estimate,
and the triangle inequality transfers its guaranteed bound to the degraded
estimate:

- mean family (Eq. 12)::

    err_b = (1 + err_b(v)) |Y_approx - Y_approx(v)| / |Y_approx(v)| + err_b(v)

- MAX/MIN (Eq. 13): the unknown true rank difference between the two
  answers is estimated by their rank difference *within the correction
  set*, divided by ``r``, plus ``err_b(v)``.

No distributional assumption is made about the degraded outputs; the
corrected bound inherits the correction set's ``1 - delta`` guarantee.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import EstimationError
from repro.estimators.base import Estimate
from repro.estimators.quantile import SmokescreenQuantileEstimator
from repro.estimators.smokescreen import SmokescreenMeanEstimator
from repro.query.aggregates import Aggregate
from repro.stats.quantiles import rank_of_value


@dataclass(frozen=True)
class RepairedEstimate:
    """A degraded estimate with its repaired error bound.

    Attributes:
        value: The degraded approximate answer ``Y_approx`` (unchanged by
            repair — only the bound is corrected).
        error_bound: The corrected bound from Algorithm 3.
        degraded: The uncorrected estimate on the degraded sample.
        correction: The estimate computed from the correction set alone.
    """

    value: float
    error_bound: float
    degraded: Estimate
    correction: Estimate

    @property
    def uncorrected_bound(self) -> float:
        """The (possibly invalid) bound before repair, for comparison."""
        return self.degraded.error_bound


class ProfileRepair:
    """Algorithm 3: corrected error bounds for any intervention mix."""

    def __init__(
        self,
        mean_estimator: SmokescreenMeanEstimator | None = None,
        quantile_estimator: SmokescreenQuantileEstimator | None = None,
    ) -> None:
        """Configure the repair with the estimators used on both samples.

        Args:
            mean_estimator: Estimator for AVG/SUM/COUNT; defaults to
                Smokescreen's Algorithm 1.
            quantile_estimator: Estimator for MAX/MIN; defaults to
                Smokescreen's Algorithm 2.
        """
        self._mean = mean_estimator or SmokescreenMeanEstimator()
        self._quantile = quantile_estimator or SmokescreenQuantileEstimator()

    def repair_mean(
        self,
        degraded_values: np.ndarray,
        degraded_universe: int,
        correction_values: np.ndarray,
        population_size: int,
        delta: float,
    ) -> RepairedEstimate:
        """Corrected bound for AVG (SUM/COUNT scale the same estimate).

        Args:
            degraded_values: Sample values from the degraded video.
            degraded_universe: Eligible-universe size of the degraded sample.
            correction_values: Correction-set values (random interventions
                only, drawn from the full corpus).
            population_size: Total corpus length ``N`` (the correction
                set's universe).
            delta: Bound failure probability.

        Returns:
            The repaired estimate.
        """
        degraded = self._mean.estimate(degraded_values, degraded_universe, delta)
        correction = self._mean.estimate(correction_values, population_size, delta)
        error_bound = self.corrected_mean_bound(degraded.value, correction)
        return RepairedEstimate(
            value=degraded.value,
            error_bound=error_bound,
            degraded=degraded,
            correction=correction,
        )

    @staticmethod
    def corrected_mean_bound(y_approx: float, correction: Estimate) -> float:
        """Equation (12): the triangle-inequality transfer of the bound.

        Args:
            y_approx: The degraded approximate answer.
            correction: The correction set's own estimate (with a valid
                random-intervention bound).

        Returns:
            The corrected bound; infinity when the correction answer is 0
            (relative error is then undefined).
        """
        err_v = correction.error_bound
        if correction.value == 0.0:
            return math.inf
        drift = abs(y_approx - correction.value) / abs(correction.value)
        return (1.0 + err_v) * drift + err_v

    @staticmethod
    def corrected_mean_bound_batch(
        y_approx: np.ndarray, correction: Estimate
    ) -> np.ndarray:
        """Equation (12) broadcast over per-trial degraded answers.

        Elementwise identical to :meth:`corrected_mean_bound`: the
        correction estimate is shared, only the degraded answer varies by
        trial.

        Args:
            y_approx: Per-trial degraded approximate answers.
            correction: The correction set's estimate.

        Returns:
            Per-trial corrected bounds (all infinity when the correction
            answer is 0).
        """
        err_v = correction.error_bound
        if correction.value == 0.0:
            return np.full(np.shape(y_approx), math.inf)
        drift = np.abs(y_approx - correction.value) / abs(correction.value)
        return (1.0 + err_v) * drift + err_v

    def repair_quantile(
        self,
        degraded_values: np.ndarray,
        degraded_universe: int,
        correction_values: np.ndarray,
        population_size: int,
        r: float,
        delta: float,
        aggregate: Aggregate,
    ) -> RepairedEstimate:
        """Corrected bound for MAX/MIN (Equation 13).

        Args:
            degraded_values: Sample values from the degraded video.
            degraded_universe: Eligible-universe size of the degraded sample.
            correction_values: Correction-set values.
            population_size: Total corpus length ``N``.
            r: Extreme quantile level.
            delta: Bound failure probability.
            aggregate: MAX or MIN.

        Returns:
            The repaired estimate.
        """
        degraded = self._quantile.estimate(
            degraded_values, degraded_universe, r, delta, aggregate
        )
        correction = self._quantile.estimate(
            correction_values, population_size, r, delta, aggregate
        )
        error_bound = self.corrected_quantile_bound(
            degraded.value, correction.value, correction_values, r, correction
        )
        return RepairedEstimate(
            value=degraded.value,
            error_bound=error_bound,
            degraded=degraded,
            correction=correction,
        )

    @staticmethod
    def corrected_quantile_bound(
        y_approx: float,
        y_approx_v: float,
        correction_values: np.ndarray,
        r: float,
        correction: Estimate,
    ) -> float:
        """Equation (13): rank-difference transfer within the correction set.

        The unknown true rank gap between the degraded and correction
        answers is estimated by their cumulative-frequency gap in the
        correction set.

        Args:
            y_approx: Degraded approximate quantile.
            y_approx_v: Correction set's approximate quantile.
            correction_values: Correction-set values.
            r: Extreme quantile level.
            correction: The correction set's estimate (supplies
                ``err_b(v)``).

        Returns:
            The corrected rank-error bound.
        """
        m = np.asarray(correction_values).size
        if m == 0:
            raise EstimationError("correction set is empty")
        rank_degraded = rank_of_value(correction_values, y_approx) / m
        rank_correction = rank_of_value(correction_values, y_approx_v) / m
        return abs(rank_degraded - rank_correction) / r + correction.error_bound
