"""Delta-budget splitting and stratified interval combination.

A fleet query spends one total failure probability ``delta`` across ``k``
per-camera intervals via the union bound: each stratum's interval is
built at share ``delta / k``, so the event "any stratum interval misses
its mean" has probability at most ``delta``. When cameras are lost
mid-query the budget is *re-split* across the ``k' < k`` survivors —
each survivor's share grows (``delta/k' > delta/k``), every surviving
interval is re-derived at the new share, and the union over survivors
still spends at most ``delta``. Validity is never lost; only coverage of
the lost strata is, which the fleet report states explicitly.

These helpers live in the estimators layer because they are pure interval
arithmetic — the system layer supplies strata, this module supplies the
guarantee-preserving combination.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EstimationError
from repro.estimators.base import Estimate
from repro.estimators.smokescreen import bound_aware_estimate_from_interval


def split_delta(delta: float, parts: int) -> float:
    """The per-stratum failure budget under the union bound.

    Args:
        delta: Total failure probability of the combined interval.
        parts: Number of strata sharing it (>= 1).

    Returns:
        The per-stratum share ``delta / parts``.
    """
    if not 0.0 < delta < 1.0:
        raise EstimationError(f"delta must lie in (0, 1), got {delta}")
    if parts < 1:
        raise EstimationError(f"budget needs at least one stratum, got {parts}")
    return delta / parts


def resplit_delta(delta: float, surviving: int) -> float:
    """Redistribute the whole budget across the surviving strata.

    Identical arithmetic to :func:`split_delta`; the separate name records
    intent at call sites — this is the degradation path, re-deriving each
    survivor's interval at its enlarged share after losses.

    Args:
        delta: Total failure probability, unchanged by camera loss.
        surviving: Number of strata that still produced intervals.

    Returns:
        The enlarged per-survivor share ``delta / surviving``.
    """
    return split_delta(delta, surviving)


@dataclass(frozen=True)
class StratumInterval:
    """One stratum's contribution to a combined fleet interval.

    Attributes:
        weight: The stratum's share of the combined universe (its frame
            count over the total); weights must sum to 1 across strata.
        mean: The stratum's sample mean (its sign steers Theorem 3.1).
        lower: Lower interval endpoint ``L_i`` on ``|mean_i|``.
        upper: Upper interval endpoint ``U_i``.
        n: The stratum's sample size.
    """

    weight: float
    mean: float
    lower: float
    upper: float
    n: int

    def __post_init__(self) -> None:
        if not 0.0 < self.weight <= 1.0:
            raise EstimationError(
                f"stratum weight must lie in (0, 1], got {self.weight}"
            )
        if self.upper < self.lower:
            raise EstimationError(
                f"stratum interval is inverted: [{self.lower}, {self.upper}]"
            )


def combine_stratum_intervals(
    strata: list[StratumInterval],
    universe_size: int,
    method: str,
) -> Estimate:
    """Weight per-stratum intervals into one Theorem 3.1 estimate.

    With stratum ``i`` holding weight ``w_i`` and interval
    ``[L_i, U_i]`` at share ``delta_i``, the weighted mean lies in
    ``[sum w_i L_i, sum w_i U_i]`` with probability at least
    ``1 - sum delta_i`` (union bound), and the usual bound-aware output
    construction applies to that interval.

    Args:
        strata: The per-stratum intervals; weights must sum to 1.
        universe_size: Size of the combined universe the weights cover.
        method: Estimator name recorded on the combined estimate.

    Returns:
        The combined bound-aware estimate.
    """
    if not strata:
        raise EstimationError("cannot combine zero stratum intervals")
    total_weight = sum(stratum.weight for stratum in strata)
    if abs(total_weight - 1.0) > 1e-9:
        raise EstimationError(
            f"stratum weights must sum to 1, got {total_weight}"
        )
    weighted_mean = sum(s.weight * s.mean for s in strata)
    weighted_lower = sum(s.weight * s.lower for s in strata)
    weighted_upper = sum(s.weight * s.upper for s in strata)
    return bound_aware_estimate_from_interval(
        weighted_mean,
        weighted_upper,
        weighted_lower,
        n=sum(s.n for s in strata),
        universe_size=universe_size,
        method=method,
    )
