"""Stein baseline for extreme quantiles (Manku, Rajagopalan & Lindsay [45]).

The classic random-sampling quantile result: with ``n`` samples drawn *with
replacement*, the sample ``r``-th quantile is an epsilon-approximate
quantile — its rank is within ``epsilon * N`` of ``r * N`` — with
probability at least ``1 - delta`` when

    n >= log(2 / delta) / (2 epsilon^2).

The paper inverts this to derive the error bound from a given ``n``:
``epsilon = sqrt(log(2 / delta) / (2 n))``, and the relative rank-error
bound is ``epsilon / r``. Two sources of looseness relative to Algorithm 2:
the Hoeffding-style inequality behind the sample-size formula, and the
with-replacement assumption (no finite-population shrinkage), both called
out in §3.2.4.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.estimators.base import Estimate, QuantileEstimator, validate_sample
from repro.query.aggregates import Aggregate
from repro.stats.quantiles import DistinctValueTable


class SteinEstimator(QuantileEstimator):
    """Sampling-based epsilon-approximate quantile, used as an estimator."""

    name = "stein"

    def estimate(
        self,
        values: np.ndarray,
        universe_size: int,
        r: float,
        delta: float,
        aggregate: Aggregate,
    ) -> Estimate:
        """See :class:`repro.estimators.base.QuantileEstimator`.

        The answer construction is identical to Algorithm 2 (the paper
        notes "our query result estimation is the same as Stein's"); only
        the bound differs.
        """
        if not aggregate.is_extreme:
            raise ConfigurationError(
                f"quantile estimator serves MAX/MIN, not {aggregate.name}"
            )
        if not 0.0 < r < 1.0:
            raise ConfigurationError(f"quantile level must lie in (0, 1), got {r}")
        array = validate_sample(values, universe_size)
        table = DistinctValueTable.from_sample(array)
        value = float(table.values[table.quantile_position(r)])

        epsilon = math.sqrt(math.log(2.0 / delta) / (2.0 * array.size))
        # For MAX the rank target is r*N; for MIN the same normalisation by
        # r applies to the rank-error metric.
        error_bound = epsilon / r
        return Estimate(
            value=value,
            error_bound=error_bound,
            method=self.name,
            n=array.size,
            universe_size=universe_size,
            extras={"epsilon": epsilon, "r": r},
        )
