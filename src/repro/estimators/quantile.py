"""Smokescreen's extreme-quantile estimator: Algorithm 2 / Theorem 3.2.

MAX and MIN cannot be estimated directly from a sample (the sample extreme
tells you little about the population extreme), so the paper targets an
extreme ``r``-th quantile instead (``r = 0.99`` for MAX, ``0.01`` for MIN)
and measures accuracy by the relative *rank* error.

The bound comes from the normal approximation of the hypergeometric
distribution of the sampled cumulative frequency at the quantile cut: the
deviation radius bounds how many distinct values the sample quantile can be
away from the true quantile, and each step contributes at most the local
distinct-value frequency of rank mass. Unknown population quantities
(``F_k``, the min/max neighbouring frequencies) are estimated by their
sample analogue ``F_hat_k_hat``, as the paper prescribes below Theorem 3.2.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.estimators.base import Estimate, QuantileEstimator, validate_sample
from repro.query.aggregates import Aggregate
from repro.stats.hypergeometric import normal_approximation_interval
from repro.stats.quantiles import DistinctValueTable


class SmokescreenQuantileEstimator(QuantileEstimator):
    """Algorithm 2: sample quantile + hypergeometric rank-error bound."""

    name = "smokescreen"

    def estimate(
        self,
        values: np.ndarray,
        universe_size: int,
        r: float,
        delta: float,
        aggregate: Aggregate,
    ) -> Estimate:
        """See :class:`repro.estimators.base.QuantileEstimator`."""
        if not aggregate.is_extreme:
            raise ConfigurationError(
                f"quantile estimator serves MAX/MIN, not {aggregate.name}"
            )
        if not 0.0 < r < 1.0:
            raise ConfigurationError(f"quantile level must lie in (0, 1), got {r}")
        array = validate_sample(values, universe_size)
        n = array.size

        table = DistinctValueTable.from_sample(array)
        k_hat = table.quantile_position(r)
        value = float(table.values[k_hat])
        frequency = table.frequency_at(k_hat)

        deviation = self._deviation(universe_size, n, r, delta, aggregate, frequency)
        # (deviation + F_hat) / F_hat + 1 bounds |k - k_hat|; each rank step
        # contributes at most F_hat of rank mass, normalised by r.
        error_bound = ((deviation + frequency) / frequency + 1.0) * frequency / r
        return Estimate(
            value=value,
            error_bound=float(error_bound),
            method=self.name,
            n=n,
            universe_size=universe_size,
            extras={
                "quantile_frequency": frequency,
                "deviation": deviation,
                "r": r,
            },
        )

    @staticmethod
    def _deviation(
        universe_size: int,
        n: int,
        r: float,
        delta: float,
        aggregate: Aggregate,
        frequency: float,
    ) -> float:
        """The hypergeometric normal-approximation radius of Theorem 3.2.

        MAX (``r`` near 1) bounds the cumulative-frequency variance with
        ``r (1 - r)``; MIN (``r`` near 0) with ``(r + F_k)(1 - (r + F_k))``
        where ``F_k`` is estimated by the sample quantile frequency.
        """
        if aggregate == Aggregate.MAX:
            fraction = r
        else:
            fraction = min(r + frequency, 1.0)
        return normal_approximation_interval(universe_size, n, fraction, delta)
