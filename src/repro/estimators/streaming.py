"""Incremental Algorithm 1 for streaming deployments.

Real cameras deliver frames over time. :class:`StreamingMeanEstimator`
maintains Algorithm 1's state (count, mean, min/max) under O(1) updates,
so the central system can read the current answer and bound after every
arrival — the online-aggregation usage pattern [30] with Smokescreen's
construction. Because Algorithm 1 only needs the interval at the *current*
``n`` (no union over prefixes — the very relaxation that distinguishes it
from EBGS), querying the estimate repeatedly over time is statistically
identical to running the batch estimator on the prefix each time.

Note the per-query guarantee is at confidence ``1 - delta`` for each read;
simultaneous guarantees across many reads would need a union budget (which
is exactly what EBGS pays, and what stopping rules require).
"""

from __future__ import annotations

import math

from repro.errors import EstimationError
from repro.estimators.base import Estimate
from repro.estimators.smokescreen import bound_aware_estimate
from repro.stats.inequalities import hoeffding_serfling_radius


class StreamingMeanEstimator:
    """O(1)-update mean estimator with the Algorithm 1 bound."""

    name = "smokescreen-streaming"

    def __init__(self, universe_size: int, delta: float = 0.05) -> None:
        """Start an empty stream.

        Args:
            universe_size: The finite universe the stream samples from
                (frames are assumed to arrive in without-replacement
                random order, e.g. from :class:`FrameSampling`).
            delta: Bound failure probability per read.
        """
        if universe_size <= 0:
            raise EstimationError(
                f"universe size must be positive, got {universe_size}"
            )
        if not 0.0 < delta < 1.0:
            raise EstimationError(f"delta must lie in (0, 1), got {delta}")
        self._universe_size = universe_size
        self._delta = delta
        self._count = 0
        self._sum = 0.0
        self._minimum = math.inf
        self._maximum = -math.inf

    @property
    def count(self) -> int:
        """Values observed so far."""
        return self._count

    @property
    def universe_size(self) -> int:
        """The stream's finite universe size."""
        return self._universe_size

    def update(self, value: float) -> None:
        """Fold one arriving model output into the state.

        Args:
            value: The frame's (finite) aggregate input value.
        """
        if not math.isfinite(value):
            raise EstimationError(f"stream value must be finite, got {value}")
        if self._count >= self._universe_size:
            raise EstimationError(
                f"stream exceeded its universe of {self._universe_size} frames"
            )
        self._count += 1
        self._sum += value
        self._minimum = min(self._minimum, value)
        self._maximum = max(self._maximum, value)

    def extend(self, values) -> None:
        """Fold a batch of arriving values, in order.

        Args:
            values: Iterable of finite values.
        """
        for value in values:
            self.update(float(value))

    def estimate(self) -> Estimate:
        """The current answer and bound (Theorem 3.1 at the current n).

        Returns:
            The bound-aware estimate over the values seen so far.
        """
        if self._count == 0:
            raise EstimationError("no values observed yet")
        mean = self._sum / self._count
        value_range = self._maximum - self._minimum
        radius = hoeffding_serfling_radius(
            self._count, self._universe_size, self._delta, value_range
        )
        return bound_aware_estimate(
            mean, radius, self._count, self._universe_size, self.name
        )

    def estimate_when_below(
        self, target_bound: float, min_count: int = 30
    ) -> Estimate | None:
        """The current estimate if its bound meets a target, else None.

        A convenience for "process frames until the answer is good enough"
        loops — note that *acting* on this repeatedly is a stopping rule,
        whose formal guarantee would need a union budget (see the module
        docstring); treat the result as the paper treats early stopping in
        profile generation (§3.3.2): an efficiency heuristic.

        Args:
            target_bound: The error-bound target.
            min_count: Warm-up floor before any stop is allowed. The
                sample-range radius can collapse to zero on a short
                constant prefix (e.g. the very first frame), which would
                otherwise trigger an absurd immediate stop; the floor
                guards that approximation.

        Returns:
            The estimate when ``error_bound <= target_bound`` and at least
            ``min_count`` values were observed, else None.
        """
        if min_count < 1:
            raise EstimationError(f"min count must be positive, got {min_count}")
        if self._count < min_count:
            return None
        estimate = self.estimate()
        if estimate.error_bound <= target_bound:
            return estimate
        return None
