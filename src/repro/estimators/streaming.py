"""Incremental Algorithm 1 for streaming deployments.

Real cameras deliver frames over time. :class:`StreamingMeanEstimator`
maintains Algorithm 1's state (count, mean, min/max) under O(1) updates,
so the central system can read the current answer and bound after every
arrival — the online-aggregation usage pattern [30] with Smokescreen's
construction. Because Algorithm 1 only needs the interval at the *current*
``n`` (no union over prefixes — the very relaxation that distinguishes it
from EBGS), querying the estimate repeatedly over time is statistically
identical to running the batch estimator on the prefix each time.

Note the per-query guarantee is at confidence ``1 - delta`` for each read;
simultaneous guarantees across many reads would need a union budget (which
is exactly what EBGS pays, and what stopping rules require).

Long-lived feeds outgrow the cumulative estimator: its state never forgets,
so a quality drift mid-stream is diluted by every clean frame that came
before, and its universe exhausts on endless feeds. Two streaming variants
trade the fixed-corpus semantics for drift responsiveness, both reusing
``hoeffding_serfling_radius`` over an *effective* sample size:

- :class:`WindowedMeanEstimator` — the answer over the newest ``window``
  frames; the radius uses the window occupancy against the rolling
  population the window samples from (e.g. the frames of one re-profiling
  period).
- :class:`DecayedMeanEstimator` — exponentially decay-weighted answer; the
  radius plugs in the Kish effective sample size ``(Σw)²/Σw²``. The
  plug-in is the standard weighted-sample heuristic: the bound is per-read,
  like everything else in this module.

Either can be handed to :class:`~repro.estimators.sentinel.BoundSentinel`
(``stream=...``) so drift out of the profiled regime trips the Algorithm 3
repair path on *recent* evidence instead of the diluted all-time mean.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import EstimationError
from repro.estimators.base import Estimate
from repro.estimators.smokescreen import bound_aware_estimate
from repro.stats.inequalities import hoeffding_serfling_radius
from repro.stats.prefix_moments import DecayedMoments, SlidingWindowMoments


class StreamingMeanEstimator:
    """O(1)-update mean estimator with the Algorithm 1 bound."""

    name = "smokescreen-streaming"

    def __init__(self, universe_size: int, delta: float = 0.05) -> None:
        """Start an empty stream.

        Args:
            universe_size: The finite universe the stream samples from
                (frames are assumed to arrive in without-replacement
                random order, e.g. from :class:`FrameSampling`).
            delta: Bound failure probability per read.
        """
        if universe_size <= 0:
            raise EstimationError(
                f"universe size must be positive, got {universe_size}"
            )
        if not 0.0 < delta < 1.0:
            raise EstimationError(f"delta must lie in (0, 1), got {delta}")
        self._universe_size = universe_size
        self._delta = delta
        self._count = 0
        self._sum = 0.0
        self._minimum = math.inf
        self._maximum = -math.inf

    @property
    def count(self) -> int:
        """Values observed so far."""
        return self._count

    @property
    def universe_size(self) -> int:
        """The stream's finite universe size."""
        return self._universe_size

    def update(self, value: float) -> None:
        """Fold one arriving model output into the state.

        Args:
            value: The frame's (finite) aggregate input value.
        """
        if not math.isfinite(value):
            raise EstimationError(f"stream value must be finite, got {value}")
        if self._count >= self._universe_size:
            raise EstimationError(
                f"stream exceeded its universe of {self._universe_size} frames"
            )
        self._count += 1
        self._sum += value
        self._minimum = min(self._minimum, value)
        self._maximum = max(self._maximum, value)

    def extend(self, values) -> None:
        """Fold a batch of arriving values, in order, atomically.

        The whole batch is validated before any value is folded in: a
        non-finite value or universe overflow raises with the estimator
        state untouched, so a failed ``extend`` can never leave a
        partially-updated count/sum behind a silently wrong ``estimate``.

        Args:
            values: Iterable of finite values.
        """
        batch = np.asarray(list(values), dtype=float)
        if batch.size == 0:
            return
        if batch.ndim != 1:
            raise EstimationError(
                f"extend expects a flat sequence of values, "
                f"got shape {batch.shape}"
            )
        if not np.all(np.isfinite(batch)):
            raise EstimationError("stream values must be finite")
        if self._count + batch.size > self._universe_size:
            raise EstimationError(
                f"extending by {batch.size} values would exceed the "
                f"universe of {self._universe_size} frames "
                f"({self._count} already observed)"
            )
        for value in batch:
            self.update(float(value))

    def estimate(self) -> Estimate:
        """The current answer and bound (Theorem 3.1 at the current n).

        Returns:
            The bound-aware estimate over the values seen so far.
        """
        if self._count == 0:
            raise EstimationError("no values observed yet")
        mean = self._sum / self._count
        value_range = self._maximum - self._minimum
        radius = hoeffding_serfling_radius(
            self._count, self._universe_size, self._delta, value_range
        )
        return bound_aware_estimate(
            mean, radius, self._count, self._universe_size, self.name
        )

    def estimate_when_below(
        self, target_bound: float, min_count: int = 30
    ) -> Estimate | None:
        """The current estimate if its bound meets a target, else None.

        A convenience for "process frames until the answer is good enough"
        loops — note that *acting* on this repeatedly is a stopping rule,
        whose formal guarantee would need a union budget (see the module
        docstring); treat the result as the paper treats early stopping in
        profile generation (§3.3.2): an efficiency heuristic.

        Args:
            target_bound: The error-bound target.
            min_count: Warm-up floor before any stop is allowed. The
                sample-range radius can collapse to zero on a short
                constant prefix (e.g. the very first frame), which would
                otherwise trigger an absurd immediate stop; the floor
                guards that approximation.

        Returns:
            The estimate when ``error_bound <= target_bound`` and at least
            ``min_count`` values were observed, else None.
        """
        if min_count < 1:
            raise EstimationError(f"min count must be positive, got {min_count}")
        if min_count > self._universe_size:
            raise EstimationError(
                f"min_count {min_count} exceeds the universe of "
                f"{self._universe_size} frames: the stream exhausts before "
                f"the warm-up floor is reachable, so this loop can never "
                f"stop — lower min_count to at most the universe size"
            )
        if self._count < min_count:
            return None
        estimate = self.estimate()
        if estimate.error_bound <= target_bound:
            return estimate
        return None


class WindowedMeanEstimator:
    """Algorithm 1's bound over a sliding window of the newest frames.

    Designed for endless feeds: the window forgets, so the estimator never
    exhausts a universe, and a mid-stream quality drift dominates the
    answer within one window length instead of being diluted by the entire
    clean history. The radius is ``hoeffding_serfling_radius`` at the
    window occupancy against ``universe_size`` — the size of the rolling
    population the window samples from (e.g. the frames of one
    re-profiling period), with the window's exact min/max as the range.
    """

    name = "smokescreen-windowed"

    def __init__(
        self, universe_size: int, window: int, delta: float = 0.05
    ) -> None:
        """Start an empty windowed stream.

        Args:
            universe_size: Rolling population the window samples from;
                must be at least ``window``.
            window: Sliding-window capacity (frames retained).
            delta: Bound failure probability per read.
        """
        if universe_size <= 0:
            raise EstimationError(
                f"universe size must be positive, got {universe_size}"
            )
        if not 0.0 < delta < 1.0:
            raise EstimationError(f"delta must lie in (0, 1), got {delta}")
        if not 1 <= window <= universe_size:
            raise EstimationError(
                f"window {window} must lie in [1, universe {universe_size}]"
            )
        self._universe_size = universe_size
        self._delta = delta
        self._moments = SlidingWindowMoments(window)

    @property
    def count(self) -> int:
        """Values ever observed (retained or evicted)."""
        return self._moments.total_appended

    @property
    def window_count(self) -> int:
        """Values currently retained in the window."""
        return self._moments.count

    @property
    def window(self) -> int:
        """The window capacity."""
        return self._moments.capacity

    @property
    def universe_size(self) -> int:
        """The rolling population size the radius is computed against."""
        return self._universe_size

    def update(self, value: float) -> None:
        """Fold one arriving value (oldest is evicted once full)."""
        self._moments.append(value)

    def extend(self, values) -> None:
        """Fold a batch of values, in order, atomically validated."""
        self._moments.extend(values)

    def estimate(self) -> Estimate:
        """Theorem 3.1 output over the current window contents."""
        n = self._moments.count
        if n == 0:
            raise EstimationError("no values observed yet")
        mean = self._moments.mean()
        value_range = self._moments.value_range()
        radius = hoeffding_serfling_radius(
            n, self._universe_size, self._delta, value_range
        )
        return bound_aware_estimate(
            mean, radius, n, self._universe_size, self.name
        )


class DecayedMeanEstimator:
    """Algorithm 1's bound over an exponentially decay-weighted stream.

    A smooth alternative to the hard window cutoff: value ``i`` arrivals
    ago carries weight ``decay**i``. The radius plugs the Kish effective
    sample size ``(Σw)²/Σw²`` into ``hoeffding_serfling_radius`` — the
    standard weighted-sample heuristic, per-read like every bound in this
    module. The effective size saturates at ``(1+decay)/(1-decay)``, which
    must fit inside ``universe_size`` for the Serfling correction to be
    meaningful; the constructor enforces that.
    """

    name = "smokescreen-decayed"

    def __init__(
        self, universe_size: int, decay: float, delta: float = 0.05
    ) -> None:
        """Start an empty decayed stream.

        Args:
            universe_size: Rolling population the decayed sample is drawn
                from.
            decay: Per-arrival weight multiplier in (0, 1).
            delta: Bound failure probability per read.
        """
        if universe_size <= 0:
            raise EstimationError(
                f"universe size must be positive, got {universe_size}"
            )
        if not 0.0 < delta < 1.0:
            raise EstimationError(f"delta must lie in (0, 1), got {delta}")
        decay = float(decay)
        if not math.isfinite(decay) or not 0.0 < decay < 1.0:
            raise EstimationError(
                f"decay must lie strictly in (0, 1), got {decay}"
            )
        saturation = (1.0 + decay) / (1.0 - decay)
        if saturation > universe_size:
            raise EstimationError(
                f"decay {decay} saturates at an effective sample size of "
                f"{saturation:.1f}, which exceeds the universe of "
                f"{universe_size} frames — use a smaller decay or a larger "
                f"universe"
            )
        self._universe_size = universe_size
        self._delta = delta
        self._moments = DecayedMoments(decay)

    @property
    def count(self) -> int:
        """Values ever observed."""
        return self._moments.count

    @property
    def decay(self) -> float:
        """The per-arrival weight multiplier."""
        return self._moments.decay

    @property
    def universe_size(self) -> int:
        """The rolling population size the radius is computed against."""
        return self._universe_size

    def effective_size(self) -> float:
        """Kish effective sample size of the current decayed state."""
        return self._moments.effective_size()

    def update(self, value: float) -> None:
        """Fold one arriving value; all prior weights decay."""
        self._moments.append(value)

    def extend(self, values) -> None:
        """Fold a batch of values, in order, atomically validated."""
        self._moments.extend(values)

    def estimate(self) -> Estimate:
        """Theorem 3.1 output over the decayed state.

        The recorded ``n`` is the floored effective sample size; the
        radius itself is computed at the exact (fractional) value.
        """
        if self._moments.count == 0:
            raise EstimationError("no values observed yet")
        effective = self._moments.effective_size()
        mean = self._moments.mean()
        value_range = self._moments.value_range()
        radius = hoeffding_serfling_radius(
            effective, self._universe_size, self._delta, value_range
        )
        return bound_aware_estimate(
            mean, radius, max(1, int(effective)), self._universe_size,
            self.name,
        )
