"""Command-line interface: profile, choose, estimate, experiment.

The administrator workflow without writing Python::

    repro profile  --dataset ua-detrac --aggregate avg --output cube.json
    repro choose   --cube cube.json --axis sampling --max-error 0.2
    repro estimate --dataset ua-detrac --aggregate avg --fraction 0.1
    repro experiment fig4 --dataset ua-detrac --aggregate avg --trials 50
    repro chaos    --rates 0,0.2,0.5 --trials 10
    repro info     --dataset night-street

Every subcommand accepts ``--frames`` to run on a reduced corpus and
``--seed`` for reproducibility.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.core.serialization import load_hypercube, save_hypercube
from repro.core.smokescreen import Smokescreen
from repro.detection import diskcache
from repro.core.tradeoff import PublicPreferences, choose_tradeoff
from repro.errors import ReproError
from repro.estimators.dispatch import estimate_query
from repro.experiments.workloads import (
    DATASET_NAMES,
    load_dataset,
    model_for,
    shared_suite,
)
from repro.interventions.plan import InterventionPlan
from repro.query.aggregates import Aggregate
from repro.query.processor import QueryProcessor
from repro.query.query import AggregateQuery
from repro.system import telemetry
from repro.system import observe
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution


def _parse_workers(text: str) -> int | str:
    if text.strip().lower() == "auto":
        return "auto"
    try:
        return int(text)
    except ValueError:
        raise SystemExit(f"invalid --workers {text!r}; expected an int or 'auto'")


def _parse_aggregate(name: str) -> Aggregate:
    try:
        return Aggregate[name.upper()]
    except KeyError:
        valid = ", ".join(member.name.lower() for member in Aggregate)
        raise SystemExit(f"unknown aggregate {name!r}; valid: {valid}")


def _parse_classes(text: str | None) -> tuple[ObjectClass, ...]:
    if not text:
        return ()
    return tuple(ObjectClass.from_name(part.strip()) for part in text.split(","))


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", choices=DATASET_NAMES, required=True, help="corpus preset"
    )
    parser.add_argument(
        "--aggregate", default="avg", help="avg | sum | count | max | min | var"
    )
    parser.add_argument(
        "--frames", type=int, default=None, help="reduced corpus size (default: full)"
    )
    parser.add_argument("--seed", type=int, default=0, help="randomness seed")


def _add_telemetry(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--log-level", default="warning",
        choices=("debug", "info", "warning", "error"),
        help="threshold of the repro.* structured loggers",
    )
    parser.add_argument(
        "--log-format", default="human", choices=("human", "json"),
        help="log line format (human key=value, or one JSON object per line)",
    )
    parser.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="collect metrics/spans and write the snapshot JSON here on exit "
             "(collection is off without this flag)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="also export the span forest as Chrome trace-event JSON "
             "(open in ui.perfetto.dev); implies telemetry collection",
    )
    parser.add_argument(
        "--prometheus", default=None, metavar="PATH",
        help="also export counters/gauges/histograms in the Prometheus "
             "text exposition format; implies telemetry collection",
    )
    parser.add_argument(
        "--run-ledger", default=None, metavar="PATH",
        help="append a run record (config fingerprint, wall seconds, "
             "invocations, cache hit ratio, bound widths) to this JSONL "
             "ledger; inspect with 'repro runs'",
    )


def _write_telemetry_snapshot(
    snapshot: telemetry.MetricsSnapshot | None, path: str, run_id: str
) -> None:
    """Write the snapshot JSON atomically, without clobbering a peer.

    The payload lands in a run-id-suffixed temporary file first and is
    renamed into place, so a reader never sees a partial snapshot. If
    another run is mid-write to the same path (its temporary marker is
    visible), this run diverts its snapshot to a run-id-suffixed final
    path instead of racing for the shared one.
    """
    payload = snapshot.to_dict() if snapshot is not None else {}
    destination = Path(path)
    if destination.parent != Path(""):
        destination.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = destination.with_name(f".{destination.name}.{run_id}.tmp")
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    peers = [
        marker
        for marker in glob.glob(
            str(destination.with_name(f".{destination.name}.*.tmp"))
        )
        if Path(marker) != tmp_path
    ]
    if peers:
        destination = destination.with_name(
            f"{destination.stem}.{run_id}{destination.suffix}"
        )
    os.replace(tmp_path, destination)
    counters = payload.get("counters", {})
    interesting = {
        name: value
        for name, value in counters.items()
        if name.startswith(("cache.", "executor.", "fleet.", "breaker."))
    }
    summary = ", ".join(
        f"{name}={value:g}" for name, value in sorted(interesting.items())
    )
    print(f"telemetry snapshot written to {destination}"
          + (f" ({summary})" if summary else ""))


def _build_query(args: argparse.Namespace) -> tuple[AggregateQuery, QueryProcessor]:
    dataset = load_dataset(args.dataset, args.frames)
    query = AggregateQuery(dataset, model_for(args.dataset), _parse_aggregate(args.aggregate))
    return query, QueryProcessor(shared_suite())


def cmd_profile(args: argparse.Namespace) -> int:
    """Generate a degradation hypercube and persist it."""
    if args.cache_dir:
        limit = (
            int(args.cache_limit_mb * 1_000_000)
            if args.cache_limit_mb is not None
            else None
        )
        cache = diskcache.activate(args.cache_dir, limit)
        if args.clear_cache:
            removed = cache.clear()
            print(f"detector cache cleared ({removed} entries)")
    dataset = load_dataset(args.dataset, args.frames)
    system = Smokescreen(
        dataset,
        model_for(args.dataset),
        suite=shared_suite(),
        trials=args.trials,
        seed=args.seed,
        workers=args.workers,
        vectorized=not args.no_vectorized,
    )
    query = system.query(_parse_aggregate(args.aggregate))

    correction = None
    if not args.no_correction:
        correction = system.build_correction_set(query)
        print(
            f"correction set: {correction.size} frames "
            f"({correction.fraction(dataset.frame_count):.1%}), "
            f"own bound {correction.error_bound:.3f}"
        )
    candidates = system.candidates(
        fraction_step=args.fraction_step,
        resolution_count=args.resolution_count,
    )
    cube = system.profile(query, candidates, correction=correction)
    save_hypercube(cube, args.output)
    print(f"hypercube written to {args.output} "
          f"({len(candidates.fractions)}x{len(candidates.resolutions)}"
          f"x{len(candidates.removals)} cells)")
    print(f"model invocations: {system.ledger.total} "
          f"(workers={args.workers}"
          + (", persistent cache on" if args.cache_dir else "")
          + ")")

    sampling, resolution, removal = cube.initial_slices()
    for profile in (sampling, resolution, removal):
        print(f"\n{profile.axis} slice:")
        for knob, bound in zip(profile.knob_values(), profile.error_bounds()):
            print(f"  {knob!s:>16}  err_b={bound:.3f}")
    return 0


def cmd_choose(args: argparse.Namespace) -> int:
    """Choose a tradeoff from a persisted hypercube."""
    cube = load_hypercube(args.cube)
    if args.axis == "sampling":
        profile = cube.slice_sampling()
    elif args.axis == "resolution":
        profile = cube.slice_resolution()
    else:
        profile = cube.slice_removal()
    preferences = PublicPreferences(
        max_error=args.max_error,
        max_resolution=Resolution(args.max_resolution) if args.max_resolution else None,
        required_removed=_parse_classes(args.require_removed),
        max_fraction=args.max_fraction,
    )
    choice = choose_tradeoff(profile, preferences)
    print(f"chosen setting: {choice.point.plan.label()}")
    print(f"bounded error:  {choice.point.error_bound:.3f}")
    return 0


def cmd_estimate(args: argparse.Namespace) -> int:
    """Run one degraded query and print the estimate."""
    query, processor = _build_query(args)
    plan = InterventionPlan.from_knobs(
        f=args.fraction,
        p=args.resolution,
        c=_parse_classes(args.remove),
        suite=processor.suite,
    )
    rng = np.random.default_rng(args.seed)
    execution = processor.execute(query, plan, rng)
    estimate = estimate_query(query, execution, args.method)
    print(f"query:     {query.label()}")
    print(f"plan:      {plan.label()}")
    print(f"estimate:  {estimate.value:.4f}")
    print(f"bound:     {estimate.error_bound:.4f} (delta={query.delta})")
    print(f"sample:    n={estimate.n} of universe {estimate.universe_size}")
    if not plan.is_random_for(query.dataset):
        print(
            "warning: the plan contains non-random interventions; the basic "
            "bound is not guaranteed — use a correction set (see 'profile')"
        )
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """Run one paper experiment and print its table."""
    from repro.experiments.registry import ExperimentRequest, run_experiment

    request = ExperimentRequest(
        dataset=args.dataset,
        aggregate=_parse_aggregate(args.aggregate),
        axis=args.axis,
        frames=args.frames,
        trials=args.trials,
        seed=args.seed,
    )
    result = run_experiment(args.name, request)
    result.print(chart=args.chart)
    return 0


def _experiment_names() -> tuple[str, ...]:
    from repro.experiments.registry import experiment_names

    return experiment_names()


def cmd_report(args: argparse.Namespace) -> int:
    """Run every experiment and write the markdown reproduction report."""
    from repro.experiments.registry import ExperimentRequest
    from repro.experiments.report import generate_report

    names = tuple(args.only.split(",")) if args.only else None
    request = ExperimentRequest(
        frames=args.frames, trials=args.trials, seed=args.seed
    )
    entries = generate_report(args.output, request, names)
    failed = [entry.name for entry in entries if not entry.succeeded]
    print(
        f"report written to {args.output}: {len(entries)} experiments, "
        f"{len(entries) - len(failed)} succeeded"
    )
    if failed:
        print(f"failed: {', '.join(failed)}")
        return 1
    return 0


def _scenario_names() -> tuple[str, ...]:
    """Zoo scenario names for the ``--scenario`` choices (lazy import)."""
    from repro.experiments.chaos_sweep import SCENARIOS

    return tuple(SCENARIOS)


def cmd_chaos(args: argparse.Namespace) -> int:
    """Sweep outage rates (or a zoo scenario) and print the defense table."""
    from repro.experiments.chaos_sweep import run_chaos, run_scenario_chaos

    # Scenario mode defaults to a denser sample: the streaming bound must
    # be tight enough that mid-severity drifts are detectable at all.
    fraction = args.fraction
    if fraction is None:
        fraction = 0.5 if args.scenario is not None else 0.2

    if args.scenario is not None:
        severities = None
        if args.severities:
            try:
                severities = tuple(
                    float(part)
                    for part in args.severities.split(",")
                    if part.strip()
                )
            except ValueError:
                raise SystemExit(
                    f"invalid --severities list: {args.severities!r}"
                )
        result = run_scenario_chaos(
            args.scenario,
            trials=args.trials,
            frame_count=args.frames,
            seed=args.seed,
            severities=severities,
            camera_count=args.cameras,
            fraction=fraction,
            delta=args.delta,
            victim_index=args.victim,
            workers=args.workers,
        )
        result.print(chart=args.chart)
        return 0

    try:
        rates = tuple(
            float(part) for part in args.rates.split(",") if part.strip()
        )
    except ValueError:
        raise SystemExit(f"invalid --rates list: {args.rates!r}")
    if not rates:
        raise SystemExit("--rates needs at least one outage rate")
    result = run_chaos(
        trials=args.trials,
        frame_count=args.frames,
        seed=args.seed,
        outage_rates=rates,
        camera_count=args.cameras,
        fraction=fraction,
        delta=args.delta,
        workers=args.workers,
    )
    result.print(chart=args.chart)
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    """Replay a corpus as a live feed through the windowed sentinel."""
    from repro.system.stream import StreamConfig, replay_stream

    config = StreamConfig(
        dataset=args.dataset,
        frames=args.frames,
        scenario=args.scenario,
        severity=args.severity,
        onset=args.onset,
        window=args.window,
        estimator=args.estimator,
        decay=args.decay,
        delta=args.delta,
        min_count=args.min_count,
        patience=args.patience,
        fraction=args.fraction,
        fps=args.fps,
        seed=args.seed,
    )
    report = replay_stream(config)
    report.print()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the hot serving daemon until SIGINT/SIGTERM."""
    from repro.system.serve import ServeConfig, run_daemon

    datasets = tuple(
        part.strip() for part in args.datasets.split(",") if part.strip()
    )
    limit = (
        int(args.cache_limit_mb * 1_000_000)
        if args.cache_limit_mb is not None
        else None
    )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        datasets=datasets,
        frames=args.frames,
        workers=args.workers,
        cache_dir=args.cache_dir,
        cache_limit_bytes=limit,
        tick_seconds=args.tick_ms / 1000.0,
        max_batch=args.max_batch,
        max_queue=args.max_queue,
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        delta=args.delta,
    )
    return run_daemon(config)


def cmd_call(args: argparse.Namespace) -> int:
    """Send one query to a running daemon and print the JSON response."""
    import asyncio

    from repro.system.serve import post_json

    get_paths = ("healthz", "metrics", "stats")
    path = f"/{args.endpoint}"
    payload: dict | None = None
    if args.endpoint not in get_paths:
        payload = {
            "dataset": args.dataset,
            "aggregate": args.aggregate,
            "seed": args.seed,
            "tenant": args.tenant,
        }
        if args.fraction is not None:
            payload["fraction"] = args.fraction
        if args.resolution is not None:
            payload["resolution"] = args.resolution
        if args.remove:
            payload["remove"] = args.remove
        if args.method != "smokescreen":
            payload["method"] = args.method
        if args.trials != 1:
            payload["trials"] = args.trials
        if args.fraction_step is not None:
            payload["fraction_step"] = args.fraction_step
        if args.resolution_count is not None:
            payload["resolution_count"] = args.resolution_count
        if args.max_error is not None:
            payload["max_error"] = args.max_error
        if args.json:
            payload.update(json.loads(args.json))
    status, body = asyncio.run(
        post_json(args.host, args.port, path, payload, timeout=args.timeout)
    )
    if isinstance(body, str):
        print(body, end="" if body.endswith("\n") else "\n")
    else:
        json.dump(body, sys.stdout, indent=2, sort_keys=True)
        print()
    return 0 if status < 400 else 1


def cmd_pool(args: argparse.Namespace) -> int:
    """Inspect the persistent worker pool (local, or a daemon's)."""
    from repro.system.executor import pool_diagnostics, pool_generation

    if args.host is not None:
        import asyncio

        from repro.system.serve import post_json

        status, body = asyncio.run(
            post_json(args.host, args.port, "/stats", timeout=args.timeout)
        )
        if status >= 400 or not isinstance(body, dict):
            print(f"error: daemon /stats returned {status}", file=sys.stderr)
            return 1
        payload = {
            "pool": body.get("pool"),
            "generation": body.get("pool_generation"),
            "shm_published_bytes": body.get("shm_published_bytes"),
            "uptime_seconds": body.get("uptime_seconds"),
        }
    else:
        payload = {
            "pool": pool_diagnostics(),
            "generation": pool_generation(),
        }
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    print()
    if payload["pool"] is None:
        where = "on the daemon" if args.host is not None else "in this process"
        print(f"no persistent pool is warm {where}", file=sys.stderr)
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    """Print a corpus calibration summary."""
    dataset = load_dataset(args.dataset, args.frames)
    model = model_for(args.dataset)
    suite = shared_suite()
    counts = model.run(dataset).counts
    person = suite.presence(dataset, ObjectClass.PERSON).mean()
    face = suite.presence(dataset, ObjectClass.FACE).mean()
    print(f"dataset:          {dataset.name}")
    print(f"frames:           {dataset.frame_count} @ {dataset.frame_rate:g} FPS")
    print(f"native:           {dataset.native_resolution}")
    print(f"query model:      {model.name} (threshold {model.threshold})")
    print(f"mean cars/frame:  {counts.mean():.3f} (max {counts.max()})")
    print(f"person frames:    {person:.2%}")
    print(f"face frames:      {face:.2%}")
    return 0


def _load_baseline(path: str) -> dict:
    """A pinned baseline record: a single-record JSON file, or the
    newest record of a ledger JSONL."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise ReproError(f"baseline not found: {path}")
    except json.JSONDecodeError:
        payload = None
    if isinstance(payload, dict) and "run_id" in payload:
        return payload
    return observe.latest_run(path)


def _candidate_run(args: argparse.Namespace) -> dict:
    return observe.latest_run(
        args.ledger,
        command=getattr(args, "filter_command", None),
        run_id=getattr(args, "run", None),
    )


def _format_cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def cmd_runs_list(args: argparse.Namespace) -> int:
    """List ledger records, oldest first."""
    records = observe.read_runs(args.ledger)
    if args.filter_command:
        records = [
            r for r in records if r.get("command") == args.filter_command
        ]
    if args.limit:
        records = records[-args.limit:]
    if not records:
        print("no runs recorded")
        return 0
    header = (
        f"{'run_id':<22} {'command':<10} {'status':<6} "
        f"{'wall_s':>9} {'invocations':>11} {'hit_ratio':>9}"
    )
    print(header)
    for record in records:
        metrics = record.get("metrics", {})
        print(
            f"{record.get('run_id', '?'):<22} "
            f"{record.get('command', '?'):<10} "
            f"{record.get('status', '?'):<6} "
            f"{_format_cell(record.get('wall_seconds')):>9} "
            f"{_format_cell(metrics.get('model_invocations')):>11} "
            f"{_format_cell(metrics.get('cache_hit_ratio')):>9}"
        )
    return 0


def cmd_runs_show(args: argparse.Namespace) -> int:
    """Print one full ledger record as JSON (latest by default)."""
    record = _candidate_run(args)
    json.dump(record, sys.stdout, indent=2, sort_keys=True)
    print()
    rollup = (
        record.get("facts", {}).get("fleet", {}).get("telemetry")
        if isinstance(record.get("facts"), dict)
        else None
    )
    if isinstance(rollup, dict) and rollup.get("fleet"):
        _render_fleet_rollup(rollup)
    return 0


def _render_fleet_rollup(rollup: dict) -> None:
    """Render ``facts.fleet.telemetry`` as a camera→shard→fleet summary."""
    fleet = rollup.get("fleet", {})
    print()
    print(
        f"fleet rollup: {fleet.get('cameras', 0)} cameras / "
        f"{fleet.get('shards', 0)} shards, "
        f"{fleet.get('total_frames', 0)} frames"
    )
    print(
        f"  latency mean {_format_cell(fleet.get('mean_latency_s'))}s "
        f"max {_format_cell(fleet.get('max_latency_s'))}s, "
        f"violations {fleet.get('violations', 0)} "
        f"(concentration {_format_cell(fleet.get('violation_concentration'))}), "
        f"cache-hit dispersion {_format_cell(fleet.get('cache_hit_dispersion'))}"
    )
    shards = rollup.get("shards", {})
    if shards:
        print(
            f"  {'shard':<12} {'cameras':>7} {'frames':>8} "
            f"{'mean_s':>9} {'max_s':>9} {'viol':>5} {'degraded':>8} "
            f"{'hit_ratio':>9}"
        )
        for name in sorted(shards):
            shard = shards[name]
            print(
                f"  {name:<12} "
                f"{_format_cell(shard.get('cameras')):>7} "
                f"{_format_cell(shard.get('frames')):>8} "
                f"{_format_cell(shard.get('mean_latency_s')):>9} "
                f"{_format_cell(shard.get('max_latency_s')):>9} "
                f"{_format_cell(shard.get('violations')):>5} "
                f"{_format_cell(shard.get('degraded')):>8} "
                f"{_format_cell(shard.get('mean_cache_hit_ratio')):>9}"
            )
    slowest = fleet.get("top_slowest", [])
    if slowest:
        rendered = ", ".join(
            f"{entry.get('name', '?')} "
            f"({_format_cell(entry.get('latency_s'))}s)"
            for entry in slowest
        )
        print(f"  slowest cameras: {rendered}")


def cmd_runs_diff(args: argparse.Namespace) -> int:
    """Compare the latest run against the pinned baseline, field by field."""
    baseline = _load_baseline(args.baseline)
    candidate = _candidate_run(args)
    rows = observe.diff_runs(baseline, candidate)
    print(
        f"baseline {baseline.get('run_id', '?')} vs "
        f"candidate {candidate.get('run_id', '?')}"
    )
    print(
        f"{'metric':<20} {'baseline':>12} {'candidate':>12} "
        f"{'delta':>12} {'ratio':>8}"
    )
    for row in rows:
        print(
            f"{row['metric']:<20} "
            f"{_format_cell(row['baseline']):>12} "
            f"{_format_cell(row['candidate']):>12} "
            f"{_format_cell(row['delta']):>12} "
            f"{_format_cell(row['ratio']):>8}"
        )
    return 0


def cmd_runs_check(args: argparse.Namespace) -> int:
    """Gate the latest run against the baseline; non-zero on regression."""
    baseline = _load_baseline(args.baseline)
    candidate = _candidate_run(args)
    thresholds = observe.GateThresholds(
        max_wall_ratio=args.max_wall_ratio,
        max_invocation_ratio=args.max_invocation_ratio,
        min_cache_hit_ratio=args.min_cache_hit_ratio,
        max_bound_ratio=args.max_bound_ratio,
        min_sentinel_recall=args.min_sentinel_recall,
        max_sentinel_fpr=args.max_sentinel_fpr,
        max_executor_fallbacks=args.max_executor_fallbacks,
        min_serve_speedup=args.min_serve_speedup,
        min_serve_coalescing=args.min_serve_coalescing,
        min_stream_fps=args.min_stream_fps,
        max_p99_latency=args.max_p99_latency,
    )
    result = observe.check_run(baseline, candidate, thresholds)
    print(
        f"checked {candidate.get('run_id', '?')} against baseline "
        f"{baseline.get('run_id', '?')} "
        f"({', '.join(result.checked) or 'nothing comparable'})"
    )
    if result.passed:
        print("regression gate: PASS")
        return 0
    for violation in result.violations:
        print(f"regression gate: FAIL - {violation.message}")
    return 1


def cmd_runs_pin(args: argparse.Namespace) -> int:
    """Write one ledger record out as a pinned baseline JSON file."""
    record = _candidate_run(args)
    output = Path(args.output)
    if output.parent != Path(""):
        output.parent.mkdir(parents=True, exist_ok=True)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"baseline pinned to {output} (run {record.get('run_id', '?')})")
    return 0


def _fetch_traces(args: argparse.Namespace, path: str) -> tuple[int, object]:
    """GET a trace endpoint from a running daemon."""
    import asyncio

    from repro.system.serve import post_json

    return asyncio.run(
        post_json(args.host, args.port, path, timeout=args.timeout)
    )


def cmd_trace_list(args: argparse.Namespace) -> int:
    """List recent traces held in a running daemon's trace ring."""
    status, body = _fetch_traces(args, "/traces")
    if status >= 400 or not isinstance(body, dict):
        print(f"error: daemon /traces returned {status}", file=sys.stderr)
        return 1
    traces = body.get("traces", [])
    if not traces:
        print("no traces recorded")
        return 0
    print(
        f"{'trace_id':<18} {'root':<22} {'spans':>5} "
        f"{'duration_s':>10} {'tenants'}"
    )
    for summary in traces:
        tenants = ",".join(summary.get("tenants", [])) or "-"
        print(
            f"{summary.get('trace_id', '?'):<18} "
            f"{summary.get('root', '?'):<22} "
            f"{_format_cell(summary.get('spans')):>5} "
            f"{_format_cell(summary.get('duration_s')):>10} "
            f"{tenants}"
        )
    return 0


def cmd_trace_show(args: argparse.Namespace) -> int:
    """Print every span of one trace (by id or unique id prefix)."""
    status, body = _fetch_traces(args, f"/traces/{args.trace_id}")
    if status >= 400 or not isinstance(body, dict):
        print(
            f"error: trace {args.trace_id!r} not found (daemon "
            f"returned {status})",
            file=sys.stderr,
        )
        return 1
    json.dump(body, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0


def cmd_trace_export(args: argparse.Namespace) -> int:
    """Export one trace as a Chrome ``chrome://tracing`` JSON file."""
    from repro.system.observe import tracing

    status, body = _fetch_traces(args, f"/traces/{args.trace_id}")
    if status >= 400 or not isinstance(body, dict):
        print(
            f"error: trace {args.trace_id!r} not found (daemon "
            f"returned {status})",
            file=sys.stderr,
        )
        return 1
    payload = tracing.chrome_payload(body.get("spans", []))
    output = Path(args.output)
    if output.parent != Path(""):
        output.parent.mkdir(parents=True, exist_ok=True)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"chrome trace written to {output} "
        f"({len(payload.get('traceEvents', []))} events)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Smokescreen: controlled intentional video degradation",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    profile = subparsers.add_parser("profile", help="generate a hypercube")
    _add_common(profile)
    profile.add_argument("--output", default="hypercube.json", help="output path")
    profile.add_argument("--trials", type=int, default=3)
    profile.add_argument("--fraction-step", type=float, default=0.05)
    profile.add_argument("--resolution-count", type=int, default=5)
    profile.add_argument(
        "--no-correction", action="store_true",
        help="skip the correction set (non-random bounds become untrusted)",
    )
    profile.add_argument(
        "--workers", type=_parse_workers, default=1,
        help="worker processes for profile generation, or 'auto' to defer "
             "to the host (the hypercube is bit-identical for any value)",
    )
    profile.add_argument(
        "--no-vectorized", action="store_true",
        help="price trials with the per-trial loops instead of the batch "
             "kernels (same samples, same decisions; numerics within 1e-9)",
    )
    profile.add_argument(
        "--cache-dir", default=None,
        help="persistent detector-output cache directory (shared across "
             "runs and workers); omit to disable",
    )
    profile.add_argument(
        "--cache-limit-mb", type=float, default=None,
        help="LRU byte budget for --cache-dir, in megabytes",
    )
    profile.add_argument(
        "--clear-cache", action="store_true",
        help="empty --cache-dir before profiling",
    )
    _add_telemetry(profile)
    profile.set_defaults(handler=cmd_profile)

    choose = subparsers.add_parser("choose", help="pick a tradeoff from a hypercube")
    choose.add_argument("--cube", required=True, help="hypercube JSON path")
    choose.add_argument(
        "--axis", choices=("sampling", "resolution", "removal"), default="sampling"
    )
    choose.add_argument("--max-error", type=float, required=True)
    choose.add_argument("--max-resolution", type=int, default=None)
    choose.add_argument("--max-fraction", type=float, default=None)
    choose.add_argument(
        "--require-removed", default=None, help="comma list, e.g. person,face"
    )
    _add_telemetry(choose)
    choose.set_defaults(handler=cmd_choose)

    estimate = subparsers.add_parser("estimate", help="run one degraded query")
    _add_common(estimate)
    estimate.add_argument("--fraction", type=float, default=None)
    estimate.add_argument("--resolution", type=int, default=None)
    estimate.add_argument("--remove", default=None, help="comma list, e.g. person")
    estimate.add_argument("--method", default="smokescreen")
    _add_telemetry(estimate)
    estimate.set_defaults(handler=cmd_estimate)

    experiment = subparsers.add_parser(
        "experiment", help="run one paper experiment"
    )
    experiment.add_argument("name", choices=_experiment_names())
    experiment.add_argument("--dataset", choices=DATASET_NAMES, default="ua-detrac")
    experiment.add_argument("--aggregate", default="avg")
    experiment.add_argument(
        "--axis", choices=("sampling", "resolution", "removal"), default="resolution"
    )
    experiment.add_argument("--frames", type=int, default=None)
    experiment.add_argument("--trials", type=int, default=20)
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument(
        "--chart", action="store_true", help="render an ASCII chart too"
    )
    _add_telemetry(experiment)
    experiment.set_defaults(handler=cmd_experiment)

    chaos = subparsers.add_parser(
        "chaos",
        help=(
            "sweep outage rates -> bound-width table, or with --scenario "
            "hit one camera with a zoo scenario and audit the sentinel"
        ),
    )
    chaos.add_argument(
        "--rates", default="0,0.1,0.2,0.3,0.5",
        help="comma list of per-query camera outage probabilities",
    )
    chaos.add_argument(
        "--scenario",
        default=None,
        choices=sorted(_scenario_names()),
        help="run the scenario zoo sweep instead of the outage sweep",
    )
    chaos.add_argument(
        "--severities", default=None,
        help="comma list of scenario severities (default: the zoo's)",
    )
    chaos.add_argument(
        "--victim", type=int, default=0,
        help="index of the camera the scenario hits",
    )
    chaos.add_argument("--cameras", type=int, default=5, help="fleet size")
    chaos.add_argument(
        "--fraction", type=float, default=None,
        help=(
            "per-camera sampling fraction (default 0.2 for the outage "
            "sweep, 0.5 for scenario mode)"
        ),
    )
    chaos.add_argument(
        "--delta", type=float, default=0.05, help="total failure probability"
    )
    chaos.add_argument("--frames", type=int, default=None)
    chaos.add_argument("--trials", type=int, default=10)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--workers", type=_parse_workers, default=1,
        help="worker processes for the per-camera values stage, or 'auto' "
             "(results are identical for any value)",
    )
    chaos.add_argument(
        "--chart", action="store_true", help="render an ASCII chart too"
    )
    _add_telemetry(chaos)
    chaos.set_defaults(handler=cmd_chaos)

    stream = subparsers.add_parser(
        "stream",
        help="replay a corpus as a live feed through the bound sentinel "
             "(optionally drifting into a zoo scenario mid-stream)",
    )
    stream.add_argument(
        "--dataset", choices=DATASET_NAMES, default="ua-detrac",
        help="corpus preset to replay",
    )
    stream.add_argument(
        "--frames", type=int, default=2000,
        help="corpus frame count (the replay's universe)",
    )
    stream.add_argument(
        "--scenario", default=None, choices=sorted(_scenario_names()),
        help="zoo scenario that takes over the feed at --onset",
    )
    stream.add_argument(
        "--severity", type=float, default=None,
        help="scenario severity (default: the zoo's harshest)",
    )
    stream.add_argument(
        "--onset", type=float, default=0.5,
        help="fraction of the feed after which the scenario is live",
    )
    stream.add_argument(
        "--window", type=int, default=480,
        help="sliding-window capacity (also the per-check batch size)",
    )
    stream.add_argument(
        "--estimator", default="windowed",
        choices=("windowed", "decayed", "cumulative"),
        help="stream estimator feeding the sentinel",
    )
    stream.add_argument(
        "--decay", type=float, default=0.999,
        help="weight multiplier for --estimator decayed",
    )
    stream.add_argument(
        "--delta", type=float, default=0.05,
        help="per-read bound failure probability",
    )
    stream.add_argument(
        "--min-count", type=int, default=30,
        help="sentinel warm-up floor (frames before any drift check)",
    )
    stream.add_argument(
        "--patience", type=int, default=2,
        help="consecutive breaches required to confirm a violation",
    )
    stream.add_argument(
        "--fraction", type=float, default=0.5,
        help="clean seeded-query fraction pricing the profiled bound",
    )
    stream.add_argument(
        "--fps", type=float, default=0.0,
        help="throttle the replay to this many frames/second "
             "(0 = as fast as possible)",
    )
    stream.add_argument("--seed", type=int, default=7, help="replay seed")
    _add_telemetry(stream)
    stream.set_defaults(handler=cmd_stream)

    serve = subparsers.add_parser(
        "serve",
        help="run the hot serving daemon (profile-as-a-service over "
             "HTTP+JSON with request micro-batching)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8177,
        help="bind port (0 = ephemeral; the bound port is printed)",
    )
    serve.add_argument(
        "--datasets", default="ua-detrac",
        help="comma list of corpus presets to build and keep hot",
    )
    serve.add_argument(
        "--frames", type=int, default=None,
        help="reduced corpus size shared by every preloaded dataset",
    )
    serve.add_argument(
        "--workers", type=_parse_workers, default=1,
        help="worker processes for profile generation, or 'auto'",
    )
    serve.add_argument(
        "--cache-dir", default=None,
        help="persistent detector-output cache directory",
    )
    serve.add_argument(
        "--cache-limit-mb", type=float, default=None,
        help="LRU byte budget for --cache-dir, in megabytes",
    )
    serve.add_argument(
        "--tick-ms", type=float, default=5.0,
        help="micro-batch window: how long the first queued request "
             "waits for compatible companions (milliseconds)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=64,
        help="max requests coalesced into one kernel call",
    )
    serve.add_argument(
        "--max-queue", type=int, default=256,
        help="global admission cap on queued requests",
    )
    serve.add_argument(
        "--tenant-rate", type=float, default=50.0,
        help="per-tenant sustained budget, requests/second",
    )
    serve.add_argument(
        "--tenant-burst", type=int, default=100,
        help="per-tenant token-bucket burst capacity",
    )
    serve.add_argument(
        "--delta", type=float, default=0.05,
        help="default bound failure probability",
    )
    _add_telemetry(serve)
    serve.set_defaults(handler=cmd_serve)

    call = subparsers.add_parser(
        "call", help="query a running serve daemon over HTTP+JSON"
    )
    call.add_argument(
        "endpoint",
        choices=(
            "estimate", "bound", "profile", "choose",
            "stats", "healthz", "metrics", "shutdown",
        ),
        help="daemon endpoint",
    )
    call.add_argument("--host", default="127.0.0.1", help="daemon host")
    call.add_argument("--port", type=int, default=8177, help="daemon port")
    call.add_argument(
        "--dataset", choices=DATASET_NAMES, default="ua-detrac",
        help="corpus preset",
    )
    call.add_argument(
        "--aggregate", default="avg", help="avg | sum | count | max | min | var"
    )
    call.add_argument("--fraction", type=float, default=None)
    call.add_argument("--resolution", type=int, default=None)
    call.add_argument("--remove", default=None, help="comma list, e.g. person")
    call.add_argument("--method", default="smokescreen")
    call.add_argument("--seed", type=int, default=0)
    call.add_argument("--trials", type=int, default=1)
    call.add_argument(
        "--fraction-step", type=float, default=None,
        help="profile-path fraction grid step",
    )
    call.add_argument(
        "--resolution-count", type=int, default=None,
        help="profile-path resolution grid size",
    )
    call.add_argument(
        "--max-error", type=float, default=None,
        help="error budget (choose endpoint)",
    )
    call.add_argument(
        "--tenant", default="cli", help="accounting identity (X-Tenant)"
    )
    call.add_argument(
        "--json", default=None, metavar="OBJECT",
        help="extra payload fields as a JSON object (merged last)",
    )
    call.add_argument(
        "--timeout", type=float, default=120.0, help="call timeout, seconds"
    )
    _add_telemetry(call)
    call.set_defaults(handler=cmd_call)

    pool = subparsers.add_parser(
        "pool",
        help="inspect the persistent worker pool (calibrated costs, "
             "generation) locally or on a running daemon",
    )
    pool.add_argument(
        "--host", default=None,
        help="daemon host; omit to inspect this process's pool",
    )
    pool.add_argument("--port", type=int, default=8177, help="daemon port")
    pool.add_argument(
        "--timeout", type=float, default=30.0, help="daemon call timeout"
    )
    _add_telemetry(pool)
    pool.set_defaults(handler=cmd_pool)

    info = subparsers.add_parser("info", help="corpus calibration summary")
    _add_common(info)
    _add_telemetry(info)
    info.set_defaults(handler=cmd_info)

    report = subparsers.add_parser(
        "report", help="run every experiment and write a markdown report"
    )
    report.add_argument("--output", default="REPRODUCTION.md")
    report.add_argument("--frames", type=int, default=None)
    report.add_argument("--trials", type=int, default=20)
    report.add_argument("--seed", type=int, default=0)
    report.add_argument(
        "--only", default=None,
        help="comma list of experiment names (default: all)",
    )
    _add_telemetry(report)
    report.set_defaults(handler=cmd_report)

    runs = subparsers.add_parser(
        "runs", help="inspect the run ledger and gate regressions"
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)

    def _add_runs_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--ledger", default="runs.jsonl", metavar="PATH",
            help="run ledger JSONL (written by --run-ledger)",
        )
        sub.add_argument(
            "--command", dest="filter_command", default=None,
            help="only consider runs of this subcommand",
        )
        sub.add_argument(
            "--run", default=None, metavar="ID",
            help="select a run by id (or unique id prefix) instead of "
                 "the latest",
        )

    runs_list = runs_sub.add_parser("list", help="list recorded runs")
    _add_runs_common(runs_list)
    runs_list.add_argument(
        "--limit", type=int, default=None, help="show only the newest N"
    )
    runs_list.set_defaults(handler=cmd_runs_list)

    runs_show = runs_sub.add_parser("show", help="print one run record")
    _add_runs_common(runs_show)
    runs_show.set_defaults(handler=cmd_runs_show)

    runs_diff = runs_sub.add_parser(
        "diff", help="compare a run against a pinned baseline"
    )
    _add_runs_common(runs_diff)
    runs_diff.add_argument(
        "--baseline", required=True, metavar="PATH",
        help="pinned baseline record JSON (or another ledger JSONL)",
    )
    runs_diff.set_defaults(handler=cmd_runs_diff)

    runs_check = runs_sub.add_parser(
        "check", help="regression-gate a run against a pinned baseline"
    )
    _add_runs_common(runs_check)
    runs_check.add_argument(
        "--baseline", required=True, metavar="PATH",
        help="pinned baseline record JSON (or another ledger JSONL)",
    )
    runs_check.add_argument(
        "--max-wall-ratio", type=float, default=10.0,
        help="fail if wall seconds exceed this multiple of the baseline",
    )
    runs_check.add_argument(
        "--max-invocation-ratio", type=float, default=1.0,
        help="fail if model invocations exceed this multiple of the "
             "baseline (profiling is seed-deterministic, so 1.0 is safe)",
    )
    runs_check.add_argument(
        "--min-cache-hit-ratio", type=float, default=None,
        help="absolute cache hit-ratio floor (default: baseline - 0.02)",
    )
    runs_check.add_argument(
        "--max-bound-ratio", type=float, default=1.001,
        help="fail if the max bound width exceeds this multiple of the "
             "baseline",
    )
    runs_check.add_argument(
        "--min-sentinel-recall", type=float, default=None,
        help="absolute floor on chaos-run sentinel recall "
             "(default: the baseline's recall)",
    )
    runs_check.add_argument(
        "--max-sentinel-fpr", type=float, default=None,
        help="absolute ceiling on chaos-run sentinel false-positive "
             "rate (default: the baseline's FPR)",
    )
    runs_check.add_argument(
        "--max-executor-fallbacks", type=float, default=None,
        help="absolute ceiling on executor serial fallbacks "
             "(default: the baseline's count)",
    )
    runs_check.add_argument(
        "--min-serve-speedup", type=float, default=None,
        help="absolute floor on the serve benchmark's warm-daemon "
             "speedup over a cold CLI run (default: not checked — both "
             "sides are machine-dependent wall times)",
    )
    runs_check.add_argument(
        "--min-serve-coalescing", type=float, default=None,
        help="absolute floor on the serve benchmark's requests-per-"
             "kernel-call coalescing ratio (default: not checked)",
    )
    runs_check.add_argument(
        "--min-stream-fps", type=float, default=None,
        help="absolute floor on the stream replay's steady-state ingest "
             "throughput, frames/second (default: not checked — wall "
             "times are machine-dependent)",
    )
    runs_check.add_argument(
        "--max-p99-latency", type=float, default=None,
        help="absolute ceiling, in seconds, on the serve benchmark's "
             "warm p99 request latency (default: not checked — tail "
             "latency is machine-dependent)",
    )
    runs_check.set_defaults(handler=cmd_runs_check)

    runs_pin = runs_sub.add_parser(
        "pin", help="write a run record out as the pinned baseline"
    )
    _add_runs_common(runs_pin)
    runs_pin.add_argument(
        "--output", required=True, metavar="PATH",
        help="baseline JSON file to write",
    )
    runs_pin.set_defaults(handler=cmd_runs_pin)

    trace = subparsers.add_parser(
        "trace", help="inspect a running daemon's distributed traces"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    def _add_trace_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--host", default="127.0.0.1", help="daemon host")
        sub.add_argument(
            "--port", type=int, default=8177, help="daemon port"
        )
        sub.add_argument(
            "--timeout", type=float, default=30.0,
            help="daemon call timeout, seconds",
        )

    trace_list = trace_sub.add_parser(
        "list", help="list recent traces in the daemon's ring buffer"
    )
    _add_trace_common(trace_list)
    trace_list.set_defaults(handler=cmd_trace_list)

    trace_show = trace_sub.add_parser(
        "show", help="print every span of one trace"
    )
    _add_trace_common(trace_show)
    trace_show.add_argument(
        "trace_id", help="trace id (or unique id prefix)"
    )
    trace_show.set_defaults(handler=cmd_trace_show)

    trace_export = trace_sub.add_parser(
        "export", help="export one trace as Chrome tracing JSON"
    )
    _add_trace_common(trace_export)
    trace_export.add_argument(
        "trace_id", help="trace id (or unique id prefix)"
    )
    trace_export.add_argument(
        "--output", default="trace.json", metavar="PATH",
        help="chrome://tracing JSON file to write",
    )
    trace_export.set_defaults(handler=cmd_trace_export)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.

    Args:
        argv: Argument list; defaults to ``sys.argv[1:]``.

    Returns:
        Process exit code.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    telemetry.setup_logging(
        level=getattr(args, "log_level", "warning"),
        fmt=getattr(args, "log_format", "human"),
    )
    snapshot_path = getattr(args, "telemetry", None)
    trace_path = getattr(args, "trace", None)
    prometheus_path = getattr(args, "prometheus", None)
    collect = bool(snapshot_path or trace_path or prometheus_path)
    registry = telemetry.enable() if collect else None
    # Every working subcommand records a ledger run (the ``runs``
    # inspection commands do not run anything worth recording). The run
    # handle exists even without --run-ledger: its id also keys the
    # snapshot temporary files so concurrent runs never collide.
    run = None
    if args.command not in ("runs", "trace"):
        config = {
            key: value
            for key, value in vars(args).items()
            if key not in (
                "handler", "command", "runs_command", "telemetry",
                "trace", "prometheus", "run_ledger", "log_level",
                "log_format",
            )
        }
        run = observe.begin_run(
            args.command, config, getattr(args, "run_ledger", None)
        )
    # ``--cache-dir`` handlers install the process-global detector cache;
    # an in-process caller (tests, notebooks) must not inherit it after
    # main() returns, so restore the no-cache state unless the caller had
    # activated one itself.
    entry_cache = diskcache.active_cache()
    handler: Callable[[argparse.Namespace], int] = args.handler
    exit_code = 1
    try:
        with telemetry.span(f"cli.{args.command}"):
            exit_code = handler(args)
        return exit_code
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if entry_cache is None and diskcache.active_cache() is not None:
            diskcache.deactivate()
        snapshot = registry.snapshot() if registry is not None else None
        if run is not None:
            observe.finish_run(
                status="ok" if exit_code == 0 else "error",
                exit_code=exit_code,
                snapshot=snapshot,
            )
        if registry is not None:
            run_id = run.run_id if run is not None else observe.new_run_id()
            if snapshot_path:
                _write_telemetry_snapshot(snapshot, snapshot_path, run_id)
            if trace_path:
                observe.export_chrome_trace(snapshot, trace_path)
                print(f"chrome trace written to {trace_path}")
            if prometheus_path:
                observe.export_prometheus(snapshot, prometheus_path)
                print(f"prometheus metrics written to {prometheus_path}")
            telemetry.disable()


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
