"""The paper's primary contribution: video degradation-accuracy profiling.

This subpackage turns the estimators into the administrator-facing model of
§2.3/§3.1:

- :class:`~repro.core.profile.Profile` — a tradeoff curve: (degradation,
  error-bound) pairs along one knob.
- :class:`~repro.core.profile.DegradationHypercube` — error bounds over the
  full ``(f, p, c)`` candidate grid, with the 2D slices administrators
  browse.
- :mod:`repro.core.candidates` — intervention candidate design (§3.3.2).
- :mod:`repro.core.correction` — correction-set sizing (§3.3.1).
- :class:`~repro.core.profiler.DegradationProfiler` — profile generation
  with nested-sample reuse and early stopping.
- :mod:`repro.core.tradeoff` — choosing a tradeoff under public preferences.
- :mod:`repro.core.similarity` — profile comparison/transfer between
  visually similar videos (§5.3.2).
- :class:`~repro.core.smokescreen.Smokescreen` — the system facade.
"""

from repro.core.candidates import CandidateGrid, default_candidates
from repro.core.correction import CorrectionSet, determine_correction_set
from repro.core.profile import DegradationHypercube, Profile, ProfilePoint
from repro.core.profiler import DegradationProfiler
from repro.core.serialization import (
    load_hypercube,
    load_profile,
    save_hypercube,
    save_profile,
)
from repro.core.similarity import profile_difference
from repro.core.smokescreen import Smokescreen
from repro.core.tradeoff import PublicPreferences, TradeoffChoice, choose_tradeoff
from repro.core.workload import QueryWorkload, WorkloadChoice

__all__ = [
    "CandidateGrid",
    "CorrectionSet",
    "DegradationHypercube",
    "DegradationProfiler",
    "Profile",
    "ProfilePoint",
    "PublicPreferences",
    "QueryWorkload",
    "Smokescreen",
    "TradeoffChoice",
    "WorkloadChoice",
    "choose_tradeoff",
    "default_candidates",
    "determine_correction_set",
    "load_hypercube",
    "load_profile",
    "profile_difference",
    "save_hypercube",
    "save_profile",
]
