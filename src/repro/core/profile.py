"""Profiles and the degradation hypercube.

A *profile* (paper §2.3) is the tradeoff curve for one unique combination
of video corpus, query, and intervention: a set of (degradation,
error-bound) pairs, with missing values interpolated by the administrator.
The *degradation hypercube* (§3.1) holds error bounds over the full
``(f, p, c)`` candidate grid; administrators are initially shown the three
2D slices obtained by fixing the unseen dimensions at their loosest values
and then drill in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ProfileError
from repro.interventions.plan import InterventionPlan
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution

#: The knob axes a profile can vary along.
AXES = ("sampling", "resolution", "removal")


@dataclass(frozen=True)
class ProfilePoint:
    """One (degradation setting, error bound) pair of a profile.

    Attributes:
        plan: The full degradation setting at this point.
        error_bound: The estimated upper bound ``err_b`` at the setting.
        value: The approximate answer at the setting (informational).
        n: Sample size used to compute the bound.
        true_error: The oracle true relative error, when an experiment
            filled it in; None in production use (computing it would need
            the non-degraded video, which profiling avoids by design).
    """

    plan: InterventionPlan
    error_bound: float
    value: float
    n: int
    true_error: float | None = None


@dataclass(frozen=True)
class Profile:
    """A tradeoff curve along one degradation axis.

    Attributes:
        axis: Which knob varies: ``"sampling"``, ``"resolution"`` or
            ``"removal"``.
        points: The curve's points, ordered from loosest to most degraded.
        query_label: The profiled query's description.
    """

    axis: str
    points: tuple[ProfilePoint, ...]
    query_label: str = ""

    def __post_init__(self) -> None:
        if self.axis not in AXES:
            raise ProfileError(f"unknown profile axis {self.axis!r}; valid: {AXES}")
        if not self.points:
            raise ProfileError("a profile needs at least one point")

    def knob_values(self) -> list[float | str]:
        """The varying knob's value at each point.

        Sampling profiles return fractions, resolution profiles return
        resolution sides, removal profiles return class-combination labels.
        """
        values: list[float | str] = []
        for point in self.points:
            if self.axis == "sampling":
                values.append(point.plan.fraction)
            elif self.axis == "resolution":
                resolution = point.plan.resolution
                values.append(float(resolution.resolution.side) if resolution else math.nan)
            else:
                removal = point.plan.removal
                values.append(removal.label if removal else "none")
        return values

    def error_bounds(self) -> np.ndarray:
        """Error bounds at each point, in point order."""
        return np.array([point.error_bound for point in self.points])

    def true_errors(self) -> np.ndarray:
        """Oracle true errors (NaN where not filled in)."""
        return np.array(
            [
                point.true_error if point.true_error is not None else math.nan
                for point in self.points
            ]
        )

    def interpolate_bound(self, knob_value: float) -> float:
        """Linear interpolation of the bound at an unprofiled knob value.

        Only numeric axes (sampling, resolution) can be interpolated —
        the administrator-side convention of §2.3 that "missing values
        should simply be interpolated".

        Args:
            knob_value: The fraction or resolution side to evaluate at.

        Returns:
            The interpolated error bound.
        """
        if self.axis == "removal":
            raise ProfileError("removal profiles are categorical; cannot interpolate")
        knobs = np.array([float(v) for v in self.knob_values()])
        bounds = self.error_bounds()
        order = np.argsort(knobs)
        knobs, bounds = knobs[order], bounds[order]
        if not knobs[0] <= knob_value <= knobs[-1]:
            raise ProfileError(
                f"knob value {knob_value} outside profiled range "
                f"[{knobs[0]}, {knobs[-1]}]"
            )
        return float(np.interp(knob_value, knobs, bounds))


@dataclass(frozen=True)
class DegradationHypercube:
    """Error bounds over the full intervention-candidate grid (§3.1).

    The bound array is indexed ``[fraction, resolution, removal]``; NaN
    entries mark candidates skipped by early stopping.

    Attributes:
        fractions: Sampling-fraction grid, ascending.
        resolutions: Resolution grid, ascending side order.
        removals: Restricted-class combinations (``()`` = no removal).
        bounds: Error-bound array, shape
            ``(len(fractions), len(resolutions), len(removals))``.
        values: Approximate answers at each cell (same shape).
        query_label: The profiled query's description.
    """

    fractions: tuple[float, ...]
    resolutions: tuple[Resolution, ...]
    removals: tuple[tuple[ObjectClass, ...], ...]
    bounds: np.ndarray
    values: np.ndarray
    query_label: str = ""

    def __post_init__(self) -> None:
        expected = (len(self.fractions), len(self.resolutions), len(self.removals))
        if self.bounds.shape != expected:
            raise ProfileError(
                f"bounds shape {self.bounds.shape} != grid shape {expected}"
            )
        if self.values.shape != expected:
            raise ProfileError(
                f"values shape {self.values.shape} != grid shape {expected}"
            )

    def _loosest_indices(self) -> tuple[int, int, int]:
        """Indices of the loosest value along each axis."""
        return (
            len(self.fractions) - 1,  # largest fraction
            len(self.resolutions) - 1,  # largest resolution
            self._no_removal_index(),
        )

    def _no_removal_index(self) -> int:
        for index, combo in enumerate(self.removals):
            if not combo:
                return index
        # All combos remove something; the first is as loose as any.
        return 0

    def _point(self, fi: int, ri: int, ci: int) -> ProfilePoint:
        combo = self.removals[ci]
        plan = InterventionPlan.from_knobs(
            f=self.fractions[fi], p=self.resolutions[ri], c=combo
        )
        return ProfilePoint(
            plan=plan,
            error_bound=float(self.bounds[fi, ri, ci]),
            value=float(self.values[fi, ri, ci]),
            n=0,
        )

    def slice_sampling(
        self, resolution_index: int | None = None, removal_index: int | None = None
    ) -> Profile:
        """The sampling-axis profile at fixed resolution/removal.

        Args:
            resolution_index: Fixed resolution index; defaults to loosest.
            removal_index: Fixed removal index; defaults to no removal.

        Returns:
            The profile over fractions, most degraded (smallest) first.
        """
        _, loose_r, loose_c = self._loosest_indices()
        ri = loose_r if resolution_index is None else resolution_index
        ci = loose_c if removal_index is None else removal_index
        points = [
            self._point(fi, ri, ci)
            for fi in range(len(self.fractions))
            if not math.isnan(self.bounds[fi, ri, ci])
        ]
        if not points:
            raise ProfileError("sampling slice has no profiled points")
        return Profile(axis="sampling", points=tuple(points), query_label=self.query_label)

    def slice_resolution(
        self, fraction_index: int | None = None, removal_index: int | None = None
    ) -> Profile:
        """The resolution-axis profile at fixed fraction/removal."""
        loose_f, _, loose_c = self._loosest_indices()
        fi = loose_f if fraction_index is None else fraction_index
        ci = loose_c if removal_index is None else removal_index
        points = [
            self._point(fi, ri, ci)
            for ri in range(len(self.resolutions))
            if not math.isnan(self.bounds[fi, ri, ci])
        ]
        if not points:
            raise ProfileError("resolution slice has no profiled points")
        return Profile(axis="resolution", points=tuple(points), query_label=self.query_label)

    def slice_removal(
        self, fraction_index: int | None = None, resolution_index: int | None = None
    ) -> Profile:
        """The removal-axis profile at fixed fraction/resolution."""
        loose_f, loose_r, _ = self._loosest_indices()
        fi = loose_f if fraction_index is None else fraction_index
        ri = loose_r if resolution_index is None else resolution_index
        points = [
            self._point(fi, ri, ci)
            for ci in range(len(self.removals))
            if not math.isnan(self.bounds[fi, ri, ci])
        ]
        if not points:
            raise ProfileError("removal slice has no profiled points")
        return Profile(axis="removal", points=tuple(points), query_label=self.query_label)

    def initial_slices(self) -> tuple[Profile, Profile, Profile]:
        """The three 2D plots first shown to administrators (§3.1):
        each axis varied with the other two fixed at their loosest values."""
        return (
            self.slice_sampling(),
            self.slice_resolution(),
            self.slice_removal(),
        )
