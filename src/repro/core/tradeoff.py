"""Choosing a tradeoff from a profile under public preferences (§2.3).

Administrators pick the most aggressive degradation whose *bounded* error
still satisfies the accuracy requirement. The quality of that choice is
what the paper's headline "88% more accurate tradeoffs" measures: a loose
bound forces a conservative (barely degraded) choice, a tight bound lets
the administrator degrade almost as far as the (unknowable) true error
curve would allow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.profile import Profile, ProfilePoint
from repro.errors import ProfileError
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution


@dataclass(frozen=True)
class PublicPreferences:
    """The administrator's policy constraints (paper §2.3).

    Attributes:
        max_error: Maximum allowable analytical (bounded) error.
        max_resolution: Maximum allowable frame resolution, or None —
            a privacy/legal ceiling, not a floor.
        required_removed: Classes that must be removed regardless of
            accuracy cost.
        max_fraction: Maximum allowable sampling fraction, or None — a
            bandwidth/energy ceiling.
    """

    max_error: float
    max_resolution: Resolution | None = None
    required_removed: tuple[ObjectClass, ...] = ()
    max_fraction: float | None = None

    def __post_init__(self) -> None:
        if self.max_error <= 0:
            raise ProfileError(f"max error must be positive, got {self.max_error}")

    def admits(self, point: ProfilePoint) -> bool:
        """Whether a profile point satisfies the degradation constraints
        (accuracy is checked separately against the bound)."""
        plan = point.plan
        if self.max_resolution is not None:
            side = (
                plan.resolution.resolution.side
                if plan.resolution is not None
                else math.inf
            )
            if side > self.max_resolution.side:
                return False
        if self.max_fraction is not None and plan.fraction > self.max_fraction:
            return False
        removed = set(plan.removal.classes) if plan.removal else set()
        return set(self.required_removed).issubset(removed)


@dataclass(frozen=True)
class TradeoffChoice:
    """The selected degradation setting.

    Attributes:
        point: The chosen profile point.
        degradation_level: The knob value at the choice (fraction or
            resolution side), for regret comparisons.
    """

    point: ProfilePoint
    degradation_level: float


def _degradation_key(profile: Profile, point: ProfilePoint) -> float:
    """Orders points from most to least degraded along the profile axis."""
    if profile.axis == "sampling":
        return point.plan.fraction
    if profile.axis == "resolution":
        resolution = point.plan.resolution
        return float(resolution.resolution.side) if resolution else math.inf
    # Removal: more classes removed = more degraded; order by -count.
    removal = point.plan.removal
    return -float(len(removal.classes)) if removal else 0.0


def choose_tradeoff(
    profile: Profile,
    preferences: PublicPreferences,
    use_true_error: bool = False,
) -> TradeoffChoice:
    """Pick the most degraded admissible setting meeting the error target.

    Args:
        profile: The tradeoff curve to choose from.
        preferences: The administrator's constraints.
        use_true_error: Choose against the oracle true-error values instead
            of the bounds — only possible when an experiment filled them
            in; used to compute the optimal reference choice.

    Returns:
        The chosen tradeoff.
    """
    admissible = []
    for point in profile.points:
        error = point.true_error if use_true_error else point.error_bound
        if error is None:
            raise ProfileError(
                "profile has no oracle true errors; cannot choose against them"
            )
        if error <= preferences.max_error and preferences.admits(point):
            admissible.append(point)
    if not admissible:
        raise ProfileError(
            f"no profiled setting meets max error {preferences.max_error} "
            "under the given constraints"
        )
    best = min(admissible, key=lambda point: _degradation_key(profile, point))
    return TradeoffChoice(
        point=best, degradation_level=_degradation_key(profile, best)
    )


def tradeoff_regret(
    profile: Profile, preferences: PublicPreferences
) -> float:
    """How much degradation a method's bound left on the table.

    Both the bound-driven and the oracle (true-error-driven) choices are
    made on the same profile; the regret is the relative gap between their
    degradation levels, 0 when the bound-driven choice is optimal. Requires
    oracle true errors on the profile.

    Args:
        profile: A profile with ``true_error`` filled in on every point.
        preferences: The administrator's constraints.

    Returns:
        ``(chosen_level - optimal_level) / optimal_level`` for sampling /
        resolution axes (both knobs shrink with degradation).
    """
    chosen = choose_tradeoff(profile, preferences, use_true_error=False)
    optimal = choose_tradeoff(profile, preferences, use_true_error=True)
    if optimal.degradation_level == 0:
        raise ProfileError("optimal degradation level is zero; regret undefined")
    return (
        chosen.degradation_level - optimal.degradation_level
    ) / abs(optimal.degradation_level)
