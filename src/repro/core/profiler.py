"""Profile generation (paper §3.1, §3.3.2).

The :class:`DegradationProfiler` prices intervention candidates: for every
requested ``(f, p, c)`` setting it estimates the query answer and a tight
error bound, producing :class:`~repro.core.profile.Profile` curves or a
full :class:`~repro.core.profile.DegradationHypercube`.

Efficiency follows the paper's reuse strategy: for each (resolution,
removal) pair, sample fractions are evaluated in *ascending* order over a
nested (prefix) sample, so model outputs computed for a low fraction are
reused by every higher fraction, and the sweep can stop early once the
bound improves too slowly. Newly processed frames are recorded in an
optional :class:`~repro.system.costs.InvocationLedger` for cost accounting.

Bound selection per setting:

- plan with only random interventions: the basic Smokescreen bound; if a
  correction set is supplied, the tighter of the basic and corrected
  bounds (§5.2.2, first row of Figure 6).
- plan with non-random interventions: the corrected bound when a
  correction set is supplied; otherwise the (possibly invalid) uncorrected
  bound — kept available because the experiments compare both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.candidates import CandidateGrid
from repro.core.correction import CorrectionSet
from repro.core.profile import DegradationHypercube, Profile, ProfilePoint
from repro.errors import ConfigurationError
from repro.estimators.base import Estimate
from repro.estimators.quantile import SmokescreenQuantileEstimator
from repro.estimators.repair import ProfileRepair
from repro.estimators.smokescreen import SmokescreenMeanEstimator
from repro.estimators.variance import SmokescreenVarianceEstimator
from repro.interventions.plan import DegradedSample, InterventionPlan
from repro.query.processor import QueryProcessor
from repro.query.query import AggregateQuery
from repro.stats.sampling import ProgressiveSampler, SampleDesign
from repro.system.costs import InvocationLedger
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution


@dataclass(frozen=True)
class PointEstimate:
    """Internal result for one degradation setting."""

    value: float
    error_bound: float
    n: int


class DegradationProfiler:
    """Generates degradation-accuracy profiles for aggregate queries."""

    def __init__(
        self,
        processor: QueryProcessor,
        trials: int = 1,
        ledger: InvocationLedger | None = None,
    ) -> None:
        """Create a profiler.

        Args:
            processor: The query processor (owns model-output access).
            trials: Independent sampling trials averaged per setting;
                1 matches production use, larger values smooth the curves
                as the paper's experiments do (100 trials).
            ledger: Optional invocation ledger for cost accounting.
        """
        if trials <= 0:
            raise ConfigurationError(f"trials must be positive, got {trials}")
        self._processor = processor
        self._trials = trials
        self._ledger = ledger
        self._mean_estimator = SmokescreenMeanEstimator()
        self._quantile_estimator = SmokescreenQuantileEstimator()
        self._variance_estimator = SmokescreenVarianceEstimator()
        self._repair = ProfileRepair(self._mean_estimator, self._quantile_estimator)

    def _record(self, resolution: Resolution, new_frames: int) -> None:
        if self._ledger is not None and new_frames > 0:
            self._ledger.record(resolution.side, new_frames)

    @staticmethod
    def _plan_is_random(query: AggregateQuery, plan: InterventionPlan) -> bool:
        """Randomness classification, accounting for sequence models.

        For models that process frame sequences (paper §7), reduced frame
        sampling changes the model's inputs and is therefore *not* a random
        intervention; the basic bounds must not be trusted for them.
        """
        if getattr(query.model, "requires_sequence", False):
            return False
        return plan.is_random_for(query.dataset)

    def _estimate_sample(
        self,
        query: AggregateQuery,
        sample: DegradedSample,
        plan_is_random: bool,
        correction: CorrectionSet | None,
    ) -> Estimate:
        """Bound for one drawn sample, applying the correction-set policy."""
        values = self._processor.values_for_sample(query, sample)
        population = query.dataset.frame_count
        if query.aggregate.is_mean_family or query.aggregate.is_variance:
            if query.aggregate.is_variance:
                basic = self._variance_estimator.estimate(
                    values, sample.universe_size, query.delta
                )
            else:
                basic = self._mean_estimator.estimate(
                    values,
                    sample.universe_size,
                    query.delta,
                    value_range=query.known_value_range,
                )
            scale = (
                population if query.aggregate.name in ("SUM", "COUNT") else 1.0
            )
            basic = basic.scaled(scale) if scale != 1.0 else basic
            if correction is None:
                return basic
            corrected_bound = self._corrected_mean_bound(
                query, basic, correction, scale
            )
            if plan_is_random:
                bound = min(basic.error_bound, corrected_bound)
            else:
                bound = corrected_bound
            return Estimate(
                value=basic.value,
                error_bound=bound,
                method=basic.method,
                n=basic.n,
                universe_size=basic.universe_size,
                extras=dict(basic.extras),
            )

        basic = self._quantile_estimator.estimate(
            values,
            sample.universe_size,
            query.effective_quantile,
            query.delta,
            query.aggregate,
        )
        if correction is None:
            return basic
        corrected_bound = self._corrected_quantile_bound(query, basic, correction)
        if plan_is_random:
            bound = min(basic.error_bound, corrected_bound)
        else:
            bound = corrected_bound
        return Estimate(
            value=basic.value,
            error_bound=bound,
            method=basic.method,
            n=basic.n,
            universe_size=basic.universe_size,
            extras=dict(basic.extras),
        )

    def _corrected_mean_bound(
        self,
        query: AggregateQuery,
        basic: Estimate,
        correction: CorrectionSet,
        scale: float,
    ) -> float:
        estimator = (
            self._variance_estimator
            if query.aggregate.is_variance
            else self._mean_estimator
        )
        correction_estimate = estimator.estimate(
            correction.values,
            query.dataset.frame_count,
            query.delta,
            value_range=query.known_value_range,
        )
        if scale != 1.0:
            correction_estimate = correction_estimate.scaled(scale)
        return ProfileRepair.corrected_mean_bound(basic.value, correction_estimate)

    def _corrected_quantile_bound(
        self, query: AggregateQuery, basic: Estimate, correction: CorrectionSet
    ) -> float:
        correction_estimate = self._quantile_estimator.estimate(
            correction.values,
            query.dataset.frame_count,
            query.effective_quantile,
            query.delta,
            query.aggregate,
        )
        return ProfileRepair.corrected_quantile_bound(
            basic.value,
            correction_estimate.value,
            correction.values,
            query.effective_quantile,
            correction_estimate,
        )

    def estimate_plan(
        self,
        query: AggregateQuery,
        plan: InterventionPlan,
        rng: np.random.Generator,
        correction: CorrectionSet | None = None,
    ) -> PointEstimate:
        """Price a single degradation setting (averaged over trials).

        Args:
            query: The query to profile.
            plan: The degradation setting.
            rng: Randomness for the trial samples.
            correction: Optional correction set for repair.

        Returns:
            The averaged value/bound at the setting.
        """
        values_sum = 0.0
        bounds_sum = 0.0
        n = 0
        for _ in range(self._trials):
            sample = plan.draw(query.dataset, rng, self._processor.suite)
            self._record(sample.resolution, sample.size)
            estimate = self._estimate_sample(
                query, sample, self._plan_is_random(query, plan), correction
            )
            values_sum += estimate.value
            bounds_sum += estimate.error_bound
            n = estimate.n
        return PointEstimate(
            value=values_sum / self._trials,
            error_bound=bounds_sum / self._trials,
            n=n,
        )

    def _sweep_fractions(
        self,
        query: AggregateQuery,
        fractions: tuple[float, ...],
        resolution: Resolution | None,
        removal: tuple[ObjectClass, ...],
        correction: CorrectionSet | None,
        rng: np.random.Generator,
        early_stop_tolerance: float | None,
    ) -> list[tuple[float, PointEstimate]]:
        """Evaluate ascending fractions with nested-sample reuse.

        Returns one (fraction, estimate) pair per evaluated fraction;
        fractions skipped by early stopping are absent.
        """
        if list(fractions) != sorted(fractions):
            raise ConfigurationError("fractions must be ascending for reuse")
        base_plan = InterventionPlan.from_knobs(p=resolution, c=removal)
        eligible = base_plan.eligible_indices(query.dataset, self._processor.suite)
        effective_resolution = base_plan.effective_resolution(query.dataset)
        population = query.dataset.frame_count

        samplers = [
            ProgressiveSampler(eligible.size, rng) for _ in range(self._trials)
        ]
        processed = [0] * self._trials

        results: list[tuple[float, PointEstimate]] = []
        previous_bound: float | None = None
        for fraction in fractions:
            plan = InterventionPlan.from_knobs(f=fraction, p=resolution, c=removal)
            size = SampleDesign(eligible.size, fraction).size
            values_sum = 0.0
            bounds_sum = 0.0
            for t, sampler in enumerate(samplers):
                indices = eligible[sampler.prefix(size)]
                self._record(effective_resolution, max(0, size - processed[t]))
                processed[t] = max(processed[t], size)
                sample = DegradedSample(
                    frame_indices=indices,
                    universe_size=int(eligible.size),
                    population_size=population,
                    resolution=effective_resolution,
                    quality=plan.quality,
                )
                estimate = self._estimate_sample(
                    query, sample, self._plan_is_random(query, plan), correction
                )
                values_sum += estimate.value
                bounds_sum += estimate.error_bound
            point = PointEstimate(
                value=values_sum / self._trials,
                error_bound=bounds_sum / self._trials,
                n=size,
            )
            results.append((fraction, point))
            if (
                early_stop_tolerance is not None
                and previous_bound is not None
                and abs(previous_bound - point.error_bound) < early_stop_tolerance
            ):
                break
            previous_bound = point.error_bound
        return results

    def profile_sampling(
        self,
        query: AggregateQuery,
        fractions: tuple[float, ...],
        rng: np.random.Generator,
        resolution: Resolution | None = None,
        removal: tuple[ObjectClass, ...] = (),
        correction: CorrectionSet | None = None,
        early_stop_tolerance: float | None = None,
    ) -> Profile:
        """Profile the reduced-frame-sampling axis.

        Args:
            query: The query.
            fractions: Ascending fraction candidates.
            rng: Trial randomness.
            resolution: Fixed resolution knob (None = native).
            removal: Fixed restricted classes (empty = none).
            correction: Optional correction set.
            early_stop_tolerance: Stop the ascending sweep when the bound
                improves by less than this (§3.3.2); None disables.

        Returns:
            The sampling-axis profile.
        """
        swept = self._sweep_fractions(
            query, tuple(fractions), resolution, removal, correction, rng,
            early_stop_tolerance,
        )
        points = [
            ProfilePoint(
                plan=InterventionPlan.from_knobs(f=fraction, p=resolution, c=removal),
                error_bound=point.error_bound,
                value=point.value,
                n=point.n,
            )
            for fraction, point in swept
        ]
        return Profile(axis="sampling", points=tuple(points), query_label=query.label())

    def profile_resolution(
        self,
        query: AggregateQuery,
        resolutions: tuple[Resolution, ...],
        rng: np.random.Generator,
        fraction: float = 0.5,
        removal: tuple[ObjectClass, ...] = (),
        correction: CorrectionSet | None = None,
    ) -> Profile:
        """Profile the reduced-resolution axis at a fixed fraction.

        Args:
            query: The query.
            resolutions: Resolution candidates (ascending side order).
            rng: Trial randomness.
            fraction: Fixed sampling fraction (paper experiments use 0.5).
            removal: Fixed restricted classes.
            correction: Optional correction set.

        Returns:
            The resolution-axis profile.
        """
        points = []
        for resolution in resolutions:
            plan = InterventionPlan.from_knobs(f=fraction, p=resolution, c=removal)
            point = self.estimate_plan(query, plan, rng, correction)
            points.append(
                ProfilePoint(
                    plan=plan,
                    error_bound=point.error_bound,
                    value=point.value,
                    n=point.n,
                )
            )
        return Profile(
            axis="resolution", points=tuple(points), query_label=query.label()
        )

    def profile_removal(
        self,
        query: AggregateQuery,
        removals: tuple[tuple[ObjectClass, ...], ...],
        rng: np.random.Generator,
        fraction: float = 0.5,
        resolution: Resolution | None = None,
        correction: CorrectionSet | None = None,
    ) -> Profile:
        """Profile the image-removal axis at fixed fraction/resolution.

        Args:
            query: The query.
            removals: Restricted-class combinations; ``()`` = no removal.
            rng: Trial randomness.
            fraction: Fixed sampling fraction.
            resolution: Fixed resolution knob (None = native).
            correction: Optional correction set.

        Returns:
            The removal-axis profile.
        """
        points = []
        for combo in removals:
            plan = InterventionPlan.from_knobs(f=fraction, p=resolution, c=combo)
            point = self.estimate_plan(query, plan, rng, correction)
            points.append(
                ProfilePoint(
                    plan=plan,
                    error_bound=point.error_bound,
                    value=point.value,
                    n=point.n,
                )
            )
        return Profile(axis="removal", points=tuple(points), query_label=query.label())

    def generate_hypercube(
        self,
        query: AggregateQuery,
        candidates: CandidateGrid,
        rng: np.random.Generator,
        correction: CorrectionSet | None = None,
        early_stop_tolerance: float | None = None,
    ) -> DegradationHypercube:
        """Price the full candidate grid (§3.1's degradation hypercube).

        For each (resolution, removal) pair the fraction axis is swept in
        ascending order with nested-sample reuse; cells skipped by early
        stopping are NaN.

        Args:
            query: The query.
            candidates: The candidate grid.
            rng: Trial randomness.
            correction: Optional correction set.
            early_stop_tolerance: Early-stop threshold for the fraction
                sweeps; None disables.

        Returns:
            The degradation hypercube.
        """
        shape = (
            len(candidates.fractions),
            len(candidates.resolutions),
            len(candidates.removals),
        )
        bounds = np.full(shape, math.nan)
        values = np.full(shape, math.nan)
        fraction_index = {f: i for i, f in enumerate(candidates.fractions)}

        for ci, combo in enumerate(candidates.removals):
            for ri, resolution in enumerate(candidates.resolutions):
                swept = self._sweep_fractions(
                    query,
                    candidates.fractions,
                    resolution,
                    combo,
                    correction,
                    rng,
                    early_stop_tolerance,
                )
                for fraction, point in swept:
                    fi = fraction_index[fraction]
                    bounds[fi, ri, ci] = point.error_bound
                    values[fi, ri, ci] = point.value
        return DegradationHypercube(
            fractions=candidates.fractions,
            resolutions=candidates.resolutions,
            removals=candidates.removals,
            bounds=bounds,
            values=values,
            query_label=query.label(),
        )
