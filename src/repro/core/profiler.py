"""Profile generation (paper §3.1, §3.3.2).

The :class:`DegradationProfiler` prices intervention candidates: for every
requested ``(f, p, c)`` setting it estimates the query answer and a tight
error bound, producing :class:`~repro.core.profile.Profile` curves or a
full :class:`~repro.core.profile.DegradationHypercube`.

Efficiency follows the paper's reuse strategy: for each (resolution,
removal) pair, sample fractions are evaluated in *ascending* order over a
nested (prefix) sample, so model outputs computed for a low fraction are
reused by every higher fraction, and the sweep can stop early once the
bound improves too slowly. Newly processed frames are recorded in an
optional :class:`~repro.system.costs.InvocationLedger` for cost accounting;
settings whose full-corpus outputs were served by the persistent detector
cache (:mod:`repro.detection.diskcache`) are already paid for and are not
recorded.

Two execution styles coexist:

- the original ``rng``-threaded methods (``profile_sampling`` etc.), whose
  results depend on generator state and call order; and
- ``*_seeded`` variants that derive every ``(setting, trial)`` stream from
  a root seed via :func:`repro.system.executor.child_rng`, making results
  independent of evaluation order — and therefore of the worker count when
  a :class:`~repro.system.executor.ParallelExecutor` fans settings out
  over processes.

Internally a sweep computes every fraction grid point from ONE gather of
the trial's maximal prefix sample: because prefix samples are nested,
``full[eligible[perm[:n]]]`` equals ``(full[eligible[perm]])[:n]``, so one
pass of prefix aggregates serves the whole ascending fraction grid.

On top of that reuse, the default ``vectorized=True`` execution stacks the
per-trial prefix gathers into one ``(trials, max_size)``
:class:`~repro.stats.prefix_moments.PrefixMoments` matrix and prices every
fraction with the batch estimator kernels
(:func:`repro.estimators.dispatch.estimate_batch`'s machinery), collapsing
the per-setting cost from O(trials × fractions × n) of Python-level
estimator calls to O(trials × n) of numpy cumulative sums. The
``vectorized=False`` path keeps the original per-(fraction, trial) loops;
both paths draw identical samples, record identical ledger totals, make
identical early-stopping decisions, and agree on values/bounds within the
repo's 1e-9 numerical-equivalence policy (differential tests pin this).

Bound selection per setting:

- plan with only random interventions: the basic Smokescreen bound; if a
  correction set is supplied, the tighter of the basic and corrected
  bounds (§5.2.2, first row of Figure 6).
- plan with non-random interventions: the corrected bound when a
  correction set is supplied; otherwise the (possibly invalid) uncorrected
  bound — kept available because the experiments compare both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.candidates import CandidateGrid
from repro.core.correction import CorrectionSet
from repro.core.profile import DegradationHypercube, Profile, ProfilePoint
from repro.errors import ConfigurationError
from repro.estimators.base import Estimate
from repro.estimators.quantile import SmokescreenQuantileEstimator
from repro.estimators.repair import ProfileRepair
from repro.estimators.smokescreen import SmokescreenMeanEstimator
from repro.estimators.variance import SmokescreenVarianceEstimator
from repro.interventions.plan import DegradedSample, InterventionPlan
from repro.query.processor import QueryProcessor
from repro.query.query import AggregateQuery
from repro.stats.prefix_moments import PrefixMoments
from repro.stats.sampling import ProgressiveSampler, SampleDesign
from repro.system import telemetry
from repro.system.costs import InvocationLedger
from repro.system.executor import (
    ParallelExecutor,
    PlanUnit,
    RootSeed,
    SweepUnit,
    child_rng,
    merge_ledger_counts,
    normalize_root,
    run_plan_unit,
    run_sweep_unit,
    trial_chunks,
)
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution


@dataclass(frozen=True)
class PointEstimate:
    """Internal result for one degradation setting."""

    value: float
    error_bound: float
    n: int


@dataclass(frozen=True)
class SweptFraction:
    """Per-trial results at one fraction of a sweep (pre-averaging).

    Keeping per-trial arrays (instead of running sums) lets callers that
    split trials across work units concatenate chunks in trial order and
    reduce over the full array — the reduction then never depends on where
    the chunk boundaries fell.

    Attributes:
        fraction: The sampling fraction.
        values: Per-trial estimate values, in trial order.
        bounds: Per-trial error bounds, in trial order.
        size: Sample size ``n`` at this fraction.
    """

    fraction: float
    values: np.ndarray
    bounds: np.ndarray
    size: int

    def point(self) -> PointEstimate:
        """The trial-averaged point estimate."""
        return PointEstimate(
            value=float(self.values.mean()),
            error_bound=float(self.bounds.mean()),
            n=self.size,
        )


class DegradationProfiler:
    """Generates degradation-accuracy profiles for aggregate queries."""

    def __init__(
        self,
        processor: QueryProcessor,
        trials: int = 1,
        ledger: InvocationLedger | None = None,
        vectorized: bool = True,
    ) -> None:
        """Create a profiler.

        Args:
            processor: The query processor (owns model-output access).
            trials: Independent sampling trials averaged per setting;
                1 matches production use, larger values smooth the curves
                as the paper's experiments do (100 trials).
            ledger: Optional invocation ledger for cost accounting.
            vectorized: Price all trials of a fraction with the batch
                estimator kernels (the default); False keeps the original
                per-(fraction, trial) loops, primarily for differential
                testing of the kernels.
        """
        if trials <= 0:
            raise ConfigurationError(f"trials must be positive, got {trials}")
        self._processor = processor
        self._trials = trials
        self._ledger = ledger
        self._vectorized = bool(vectorized)
        self._mean_estimator = SmokescreenMeanEstimator()
        self._quantile_estimator = SmokescreenQuantileEstimator()
        self._variance_estimator = SmokescreenVarianceEstimator()
        self._repair = ProfileRepair(self._mean_estimator, self._quantile_estimator)

    def _record_sampled(
        self,
        query: AggregateQuery,
        resolution: Resolution,
        quality: float,
        new_frames: int,
    ) -> None:
        """Account for newly sampled frames at a setting.

        Frames are free when the model's full-corpus outputs at this
        (resolution, quality) were served by the persistent detector cache
        — an earlier run already paid for them. Outputs evaluated in this
        process still charge per sampled frame: that is the paper's §5.3.1
        accounting of the in-process reuse strategy.
        """
        if self._ledger is None or new_frames <= 0:
            return
        if self._setting_precomputed(query, resolution, quality):
            return
        telemetry.count("profiler.frames_invoked", new_frames)
        self._ledger.record(resolution.side, new_frames)

    @staticmethod
    def _setting_precomputed(
        query: AggregateQuery, resolution: Resolution, quality: float
    ) -> bool:
        checker = getattr(query.model, "output_was_precomputed", None)
        if checker is None:
            return False
        return bool(checker(query.dataset, resolution, quality))

    @staticmethod
    def _plan_is_random(query: AggregateQuery, plan: InterventionPlan) -> bool:
        """Randomness classification, accounting for sequence models.

        For models that process frame sequences (paper §7), reduced frame
        sampling changes the model's inputs and is therefore *not* a random
        intervention; the basic bounds must not be trusted for them.
        """
        if getattr(query.model, "requires_sequence", False):
            return False
        return plan.is_random_for(query.dataset)

    def _estimate_sample(
        self,
        query: AggregateQuery,
        sample: DegradedSample,
        plan_is_random: bool,
        correction: CorrectionSet | None,
    ) -> Estimate:
        """Bound for one drawn sample, applying the correction-set policy."""
        values = self._processor.values_for_sample(query, sample)
        return self._estimate_values(
            query, values, sample.universe_size, plan_is_random, correction
        )

    def _estimate_values(
        self,
        query: AggregateQuery,
        values: np.ndarray,
        universe_size: int,
        plan_is_random: bool,
        correction: CorrectionSet | None,
    ) -> Estimate:
        """Bound for already-gathered sample values.

        Split out of :meth:`_estimate_sample` so fraction sweeps can slice
        one gathered prefix array instead of re-gathering per fraction.
        """
        population = query.dataset.frame_count
        if query.aggregate.is_mean_family or query.aggregate.is_variance:
            if query.aggregate.is_variance:
                basic = self._variance_estimator.estimate(
                    values, universe_size, query.delta
                )
            else:
                basic = self._mean_estimator.estimate(
                    values,
                    universe_size,
                    query.delta,
                    value_range=query.known_value_range,
                )
            scale = (
                population if query.aggregate.name in ("SUM", "COUNT") else 1.0
            )
            basic = basic.scaled(scale) if scale != 1.0 else basic
            if correction is None:
                return basic
            corrected_bound = self._corrected_mean_bound(
                query, basic, correction, scale
            )
            if plan_is_random:
                bound = min(basic.error_bound, corrected_bound)
            else:
                bound = corrected_bound
            return Estimate(
                value=basic.value,
                error_bound=bound,
                method=basic.method,
                n=basic.n,
                universe_size=basic.universe_size,
                extras=dict(basic.extras),
            )

        basic = self._quantile_estimator.estimate(
            values,
            universe_size,
            query.effective_quantile,
            query.delta,
            query.aggregate,
        )
        if correction is None:
            return basic
        corrected_bound = self._corrected_quantile_bound(query, basic, correction)
        if plan_is_random:
            bound = min(basic.error_bound, corrected_bound)
        else:
            bound = corrected_bound
        return Estimate(
            value=basic.value,
            error_bound=bound,
            method=basic.method,
            n=basic.n,
            universe_size=basic.universe_size,
            extras=dict(basic.extras),
        )

    def _estimate_prefix_batch(
        self,
        query: AggregateQuery,
        moments: PrefixMoments,
        size: int,
        universe_size: int,
        plan_is_random: bool,
        correction: CorrectionSet | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batch analogue of :meth:`_estimate_values` over all trials.

        Prices the length-``size`` prefix of every trial row at once with
        the estimators' batch kernels, applying the same correction-set
        policy. The correction estimate is computed once per call instead
        of once per trial — it only depends on the correction set, so the
        per-trial recomputation of the loop path is pure redundancy.

        Quantile aggregates keep the scalar path per trial (their
        distinct-value-table estimate has no cumulative form); the batch
        entry point is still the single place sweeps call.

        Returns:
            Per-trial ``(values, bounds)`` arrays, aligned with the rows.
        """
        population = query.dataset.frame_count
        if query.aggregate.is_mean_family or query.aggregate.is_variance:
            if query.aggregate.is_variance:
                estimator = self._variance_estimator
                batch = estimator.estimate_batch(
                    moments, size, universe_size, query.delta
                )
            else:
                estimator = self._mean_estimator
                batch = estimator.estimate_batch(
                    moments,
                    size,
                    universe_size,
                    query.delta,
                    value_range=query.known_value_range,
                )
            scale = (
                population if query.aggregate.name in ("SUM", "COUNT") else 1.0
            )
            if scale != 1.0:
                batch = batch.scaled(scale)
            if correction is None:
                return batch.values, batch.error_bounds
            correction_estimate = estimator.estimate(
                correction.values,
                population,
                query.delta,
                value_range=query.known_value_range,
            )
            if scale != 1.0:
                correction_estimate = correction_estimate.scaled(scale)
            corrected = ProfileRepair.corrected_mean_bound_batch(
                batch.values, correction_estimate
            )
            if plan_is_random:
                bounds = np.minimum(batch.error_bounds, corrected)
            else:
                bounds = corrected
            return batch.values, bounds

        values = np.empty(moments.trials)
        bounds = np.empty(moments.trials)
        for t in range(moments.trials):
            estimate = self._estimate_values(
                query,
                moments.row(t)[:size],
                universe_size,
                plan_is_random,
                correction,
            )
            values[t] = estimate.value
            bounds[t] = estimate.error_bound
        return values, bounds

    def _corrected_mean_bound(
        self,
        query: AggregateQuery,
        basic: Estimate,
        correction: CorrectionSet,
        scale: float,
    ) -> float:
        estimator = (
            self._variance_estimator
            if query.aggregate.is_variance
            else self._mean_estimator
        )
        correction_estimate = estimator.estimate(
            correction.values,
            query.dataset.frame_count,
            query.delta,
            value_range=query.known_value_range,
        )
        if scale != 1.0:
            correction_estimate = correction_estimate.scaled(scale)
        return ProfileRepair.corrected_mean_bound(basic.value, correction_estimate)

    def _corrected_quantile_bound(
        self, query: AggregateQuery, basic: Estimate, correction: CorrectionSet
    ) -> float:
        correction_estimate = self._quantile_estimator.estimate(
            correction.values,
            query.dataset.frame_count,
            query.effective_quantile,
            query.delta,
            query.aggregate,
        )
        return ProfileRepair.corrected_quantile_bound(
            basic.value,
            correction_estimate.value,
            correction.values,
            query.effective_quantile,
            correction_estimate,
        )

    def estimate_plan(
        self,
        query: AggregateQuery,
        plan: InterventionPlan,
        rng: np.random.Generator,
        correction: CorrectionSet | None = None,
    ) -> PointEstimate:
        """Price a single degradation setting (averaged over trials).

        Args:
            query: The query to profile.
            plan: The degradation setting.
            rng: Randomness for the trial samples.
            correction: Optional correction set for repair.

        Returns:
            The averaged value/bound at the setting. The reported ``n`` is
            the maximum sample size over trials (trustworthy even if a
            plan yields trial-varying eligible sets).
        """
        plan_is_random = self._plan_is_random(query, plan)
        if self._vectorized:
            samples = []
            for _ in range(self._trials):
                sample = plan.draw(query.dataset, rng, self._processor.suite)
                self._record_sampled(
                    query, sample.resolution, sample.quality, sample.size
                )
                samples.append(sample)
            return self._point_from_samples(
                query, samples, plan_is_random, correction
            )
        values_sum = 0.0
        bounds_sum = 0.0
        n = 0
        for _ in range(self._trials):
            sample = plan.draw(query.dataset, rng, self._processor.suite)
            self._record_sampled(
                query, sample.resolution, sample.quality, sample.size
            )
            estimate = self._estimate_sample(
                query, sample, plan_is_random, correction
            )
            values_sum += estimate.value
            bounds_sum += estimate.error_bound
            n = max(n, estimate.n)
        return PointEstimate(
            value=values_sum / self._trials,
            error_bound=bounds_sum / self._trials,
            n=n,
        )

    def _point_from_samples(
        self,
        query: AggregateQuery,
        samples: list[DegradedSample],
        plan_is_random: bool,
        correction: CorrectionSet | None,
    ) -> PointEstimate:
        """Price drawn trial samples together via the batch kernels.

        Trials of one plan share the eligible universe, so their samples
        have equal sizes and stack into a prefix matrix; if a plan ever
        yields trial-varying sets, the per-trial scalar path takes over
        (and the reported ``n`` is the maximum across trials).
        """
        values_list = [
            self._processor.values_for_sample(query, sample)
            for sample in samples
        ]
        sizes = {array.size for array in values_list}
        universes = {sample.universe_size for sample in samples}
        if len(sizes) == 1 and len(universes) == 1:
            n = next(iter(sizes))
            moments = PrefixMoments(np.stack(values_list))
            values, bounds = self._estimate_prefix_batch(
                query,
                moments,
                n,
                next(iter(universes)),
                plan_is_random,
                correction,
            )
            return PointEstimate(
                value=float(values.mean()),
                error_bound=float(bounds.mean()),
                n=int(n),
            )
        values = np.empty(len(samples))
        bounds = np.empty(len(samples))
        n = 0
        for t, sample in enumerate(samples):
            estimate = self._estimate_values(
                query, values_list[t], sample.universe_size,
                plan_is_random, correction,
            )
            values[t] = estimate.value
            bounds[t] = estimate.error_bound
            n = max(n, estimate.n)
        return PointEstimate(
            value=float(values.mean()),
            error_bound=float(bounds.mean()),
            n=n,
        )

    def estimate_plan_seeded(
        self,
        query: AggregateQuery,
        plan: InterventionPlan,
        root: RootSeed,
        unit_index: int,
        correction: CorrectionSet | None = None,
    ) -> PointEstimate:
        """Price one setting with per-trial seed streams.

        Trial ``t`` draws its sample from ``child_rng(root, unit_index,
        t)``, so the result is a pure function of ``(root, unit_index)`` —
        independent of evaluation order, process, or sibling settings.

        Args:
            query: The query to profile.
            plan: The degradation setting.
            root: Root entropy of the seed stream.
            unit_index: This setting's index (first spawn-key coordinate).
            correction: Optional correction set for repair.

        Returns:
            The averaged value/bound at the setting. The reported ``n`` is
            the maximum sample size over trials.
        """
        plan_is_random = self._plan_is_random(query, plan)
        if self._vectorized:
            with telemetry.span(
                "profiler.plan", unit=unit_index, trials=self._trials
            ):
                samples = []
                for t in range(self._trials):
                    rng = child_rng(root, unit_index, t)
                    sample = plan.draw(query.dataset, rng, self._processor.suite)
                    self._record_sampled(
                        query, sample.resolution, sample.quality, sample.size
                    )
                    samples.append(sample)
                telemetry.count("profiler.trials_priced", self._trials)
                return self._point_from_samples(
                    query, samples, plan_is_random, correction
                )
        values = np.empty(self._trials)
        bounds = np.empty(self._trials)
        n = 0
        for t in range(self._trials):
            rng = child_rng(root, unit_index, t)
            sample = plan.draw(query.dataset, rng, self._processor.suite)
            self._record_sampled(
                query, sample.resolution, sample.quality, sample.size
            )
            estimate = self._estimate_sample(
                query, sample, plan_is_random, correction
            )
            values[t] = estimate.value
            bounds[t] = estimate.error_bound
            n = max(n, estimate.n)
        telemetry.count("profiler.trials_priced", self._trials)
        return PointEstimate(
            value=float(values.mean()),
            error_bound=float(bounds.mean()),
            n=n,
        )

    def _sweep_core(
        self,
        query: AggregateQuery,
        fractions: tuple[float, ...],
        resolution: Resolution | None,
        removal: tuple[ObjectClass, ...],
        correction: CorrectionSet | None,
        samplers: list[ProgressiveSampler],
        early_stop_tolerance: float | None,
    ) -> list[SweptFraction]:
        """Evaluate ascending fractions from one prefix gather per trial.

        The maximal prefix sample's values are gathered once per trial;
        every fraction's values are a slice of that array (prefix samples
        are nested), so the whole grid costs one full-corpus gather plus
        cheap per-fraction slices — identical results to re-gathering at
        each fraction, without the redundant index arithmetic.

        Returns one :class:`SweptFraction` per evaluated fraction;
        fractions skipped by early stopping are absent.
        """
        if list(fractions) != sorted(fractions):
            raise ConfigurationError("fractions must be ascending for reuse")
        if not fractions:
            return []
        with telemetry.span(
            "profiler.sweep",
            resolution=resolution.side if resolution is not None else "native",
            removal=len(removal),
            fractions=len(fractions),
            trials=len(samplers),
        ):
            return self._sweep_core_timed(
                query, fractions, resolution, removal, correction, samplers,
                early_stop_tolerance,
            )

    def _sweep_core_timed(
        self,
        query: AggregateQuery,
        fractions: tuple[float, ...],
        resolution: Resolution | None,
        removal: tuple[ObjectClass, ...],
        correction: CorrectionSet | None,
        samplers: list[ProgressiveSampler],
        early_stop_tolerance: float | None,
    ) -> list[SweptFraction]:
        """:meth:`_sweep_core`'s body, inside its telemetry span."""
        base_plan = InterventionPlan.from_knobs(p=resolution, c=removal)
        eligible = base_plan.eligible_indices(query.dataset, self._processor.suite)
        effective_resolution = base_plan.effective_resolution(query.dataset)
        quality = base_plan.quality
        sizes = [SampleDesign(eligible.size, f).size for f in fractions]
        max_size = max(sizes)

        with telemetry.span(
            "profiler.gather", eligible=int(eligible.size), max_size=max_size
        ):
            full_values = self._processor.frame_values(
                query, effective_resolution, quality
            )
            # One (trials, max_size) fancy index instead of a gather per
            # trial; row t is exactly
            # full_values[eligible[samplers[t].prefix(...)]].
            prefix_matrix = np.stack(
                [sampler.prefix(max_size) for sampler in samplers]
            )
            value_matrix = full_values[eligible[prefix_matrix]]
        trial_values = list(value_matrix)
        # The fraction knob never changes the randomness classification
        # (frame sampling is always the random intervention), so classify
        # the setting once.
        plan_is_random = self._plan_is_random(
            query,
            InterventionPlan.from_knobs(f=fractions[0], p=resolution, c=removal),
        )

        trials = len(samplers)
        with telemetry.span(
            "profiler.price",
            trials=trials,
            fractions=len(fractions),
            vectorized=self._vectorized,
        ):
            if self._vectorized:
                return self._sweep_grid_vectorized(
                    query,
                    fractions,
                    sizes,
                    effective_resolution,
                    quality,
                    value_matrix,
                    int(eligible.size),
                    plan_is_random,
                    correction,
                    early_stop_tolerance,
                )
            processed = [0] * trials
            results: list[SweptFraction] = []
            previous_bound: float | None = None
            for fraction, size in zip(fractions, sizes):
                values = np.empty(trials)
                bounds = np.empty(trials)
                for t in range(trials):
                    self._record_sampled(
                        query,
                        effective_resolution,
                        quality,
                        max(0, size - processed[t]),
                    )
                    processed[t] = max(processed[t], size)
                    estimate = self._estimate_values(
                        query,
                        trial_values[t][:size],
                        int(eligible.size),
                        plan_is_random,
                        correction,
                    )
                    values[t] = estimate.value
                    bounds[t] = estimate.error_bound
                swept = SweptFraction(
                    fraction=fraction, values=values, bounds=bounds, size=size
                )
                results.append(swept)
                telemetry.count("profiler.trials_priced", trials)
                mean_bound = float(bounds.mean())
                if (
                    early_stop_tolerance is not None
                    and previous_bound is not None
                    and abs(previous_bound - mean_bound) < early_stop_tolerance
                ):
                    telemetry.count("profiler.early_stop")
                    break
                previous_bound = mean_bound
            return results

    def _sweep_grid_vectorized(
        self,
        query: AggregateQuery,
        fractions: tuple[float, ...],
        sizes: list[int],
        resolution: Resolution,
        quality: float,
        value_matrix: np.ndarray,
        universe_size: int,
        plan_is_random: bool,
        correction: CorrectionSet | None,
        early_stop_tolerance: float | None,
    ) -> list[SweptFraction]:
        """The fraction grid on the prefix-moment kernel.

        One :class:`~repro.stats.prefix_moments.PrefixMoments` pass over
        the stacked trial matrix serves every fraction as O(trials)
        slices. Ledger updates are batched per fraction — all trials share
        the size trajectory, so ``new_frames × trials`` in one record call
        yields exactly the loop path's totals — and early stopping walks
        the ascending fractions in the same order with the same mean-bound
        rule, so the evaluated set matches the loop path's.
        """
        moments = PrefixMoments(value_matrix)
        trials = int(value_matrix.shape[0])
        processed = 0
        results: list[SweptFraction] = []
        previous_bound: float | None = None
        for fraction, size in zip(fractions, sizes):
            new_frames = max(0, size - processed)
            self._record_sampled(query, resolution, quality, new_frames * trials)
            processed = max(processed, size)
            values, bounds = self._estimate_prefix_batch(
                query, moments, size, universe_size, plan_is_random, correction
            )
            swept = SweptFraction(
                fraction=fraction,
                values=np.asarray(values, dtype=float),
                bounds=np.asarray(bounds, dtype=float),
                size=size,
            )
            results.append(swept)
            telemetry.count("profiler.trials_priced", trials)
            mean_bound = float(swept.bounds.mean())
            if (
                early_stop_tolerance is not None
                and previous_bound is not None
                and abs(previous_bound - mean_bound) < early_stop_tolerance
            ):
                telemetry.count("profiler.early_stop")
                break
            previous_bound = mean_bound
        return results

    @staticmethod
    def _sweep_max_size(universe: int, fractions: tuple[float, ...]) -> int | None:
        """The largest design size a fraction sweep will request.

        Passed to :class:`ProgressiveSampler` so each trial draws only the
        prefix the sweep can actually consume (O(max_size) instead of a
        full O(universe) permutation). None when the grid is empty or
        malformed — the sweep core raises its own error then, and the
        sampler falls back to the full permutation meanwhile.
        """
        if not fractions:
            return None
        top = max(fractions)
        if not 0.0 < top <= 1.0:
            return None
        return SampleDesign(universe, top).size

    def _sweep_fractions(
        self,
        query: AggregateQuery,
        fractions: tuple[float, ...],
        resolution: Resolution | None,
        removal: tuple[ObjectClass, ...],
        correction: CorrectionSet | None,
        rng: np.random.Generator,
        early_stop_tolerance: float | None,
    ) -> list[tuple[float, PointEstimate]]:
        """The sweep over sequential-``rng`` trial samplers (legacy path)."""
        base_plan = InterventionPlan.from_knobs(p=resolution, c=removal)
        eligible = base_plan.eligible_indices(query.dataset, self._processor.suite)
        max_size = self._sweep_max_size(int(eligible.size), fractions)
        samplers = [
            ProgressiveSampler(eligible.size, rng, max_size=max_size)
            for _ in range(self._trials)
        ]
        swept = self._sweep_core(
            query, fractions, resolution, removal, correction, samplers,
            early_stop_tolerance,
        )
        return [(item.fraction, item.point()) for item in swept]

    def sweep_fractions_seeded(
        self,
        query: AggregateQuery,
        fractions: tuple[float, ...],
        resolution: Resolution | None,
        removal: tuple[ObjectClass, ...],
        correction: CorrectionSet | None,
        root: RootSeed,
        unit_index: int,
        trial_indices: tuple[int, ...],
        early_stop_tolerance: float | None = None,
    ) -> list[SweptFraction]:
        """One (resolution, removal) fraction sweep with seeded trials.

        Trial ``t`` permutes the eligible universe with ``child_rng(root,
        unit_index, t)``; results are independent of which process runs
        the sweep and which other trials it shares the unit with.

        Args:
            query: The query to profile.
            fractions: Ascending fraction candidates.
            resolution: Fixed resolution knob (None = native).
            removal: Fixed restricted classes.
            correction: Optional correction set.
            root: Root entropy of the seed stream.
            unit_index: This setting's index (first spawn-key coordinate).
            trial_indices: The trial coordinates this call evaluates.
            early_stop_tolerance: Stop the sweep when the mean bound over
                *these* trials improves by less than this; pass None when
                trials are split across units (the caller truncates after
                merging, on the all-trials mean).

        Returns:
            Per-fraction per-trial results, in ``trial_indices`` order.
        """
        base_plan = InterventionPlan.from_knobs(p=resolution, c=removal)
        eligible = base_plan.eligible_indices(query.dataset, self._processor.suite)
        max_size = self._sweep_max_size(int(eligible.size), fractions)
        samplers = [
            ProgressiveSampler(
                eligible.size, child_rng(root, unit_index, t), max_size=max_size
            )
            for t in trial_indices
        ]
        return self._sweep_core(
            query, fractions, resolution, removal, correction, samplers,
            early_stop_tolerance,
        )

    def profile_sampling(
        self,
        query: AggregateQuery,
        fractions: tuple[float, ...],
        rng: np.random.Generator,
        resolution: Resolution | None = None,
        removal: tuple[ObjectClass, ...] = (),
        correction: CorrectionSet | None = None,
        early_stop_tolerance: float | None = None,
    ) -> Profile:
        """Profile the reduced-frame-sampling axis.

        Args:
            query: The query.
            fractions: Ascending fraction candidates.
            rng: Trial randomness.
            resolution: Fixed resolution knob (None = native).
            removal: Fixed restricted classes (empty = none).
            correction: Optional correction set.
            early_stop_tolerance: Stop the ascending sweep when the bound
                improves by less than this (§3.3.2); None disables.

        Returns:
            The sampling-axis profile.
        """
        swept = self._sweep_fractions(
            query, tuple(fractions), resolution, removal, correction, rng,
            early_stop_tolerance,
        )
        points = [
            ProfilePoint(
                plan=InterventionPlan.from_knobs(f=fraction, p=resolution, c=removal),
                error_bound=point.error_bound,
                value=point.value,
                n=point.n,
            )
            for fraction, point in swept
        ]
        return Profile(axis="sampling", points=tuple(points), query_label=query.label())

    def profile_resolution(
        self,
        query: AggregateQuery,
        resolutions: tuple[Resolution, ...],
        rng: np.random.Generator,
        fraction: float = 0.5,
        removal: tuple[ObjectClass, ...] = (),
        correction: CorrectionSet | None = None,
    ) -> Profile:
        """Profile the reduced-resolution axis at a fixed fraction.

        Args:
            query: The query.
            resolutions: Resolution candidates (ascending side order).
            rng: Trial randomness.
            fraction: Fixed sampling fraction (paper experiments use 0.5).
            removal: Fixed restricted classes.
            correction: Optional correction set.

        Returns:
            The resolution-axis profile.
        """
        points = []
        for resolution in resolutions:
            plan = InterventionPlan.from_knobs(f=fraction, p=resolution, c=removal)
            point = self.estimate_plan(query, plan, rng, correction)
            points.append(
                ProfilePoint(
                    plan=plan,
                    error_bound=point.error_bound,
                    value=point.value,
                    n=point.n,
                )
            )
        return Profile(
            axis="resolution", points=tuple(points), query_label=query.label()
        )

    def profile_removal(
        self,
        query: AggregateQuery,
        removals: tuple[tuple[ObjectClass, ...], ...],
        rng: np.random.Generator,
        fraction: float = 0.5,
        resolution: Resolution | None = None,
        correction: CorrectionSet | None = None,
    ) -> Profile:
        """Profile the image-removal axis at fixed fraction/resolution.

        Args:
            query: The query.
            removals: Restricted-class combinations; ``()`` = no removal.
            rng: Trial randomness.
            fraction: Fixed sampling fraction.
            resolution: Fixed resolution knob (None = native).
            correction: Optional correction set.

        Returns:
            The removal-axis profile.
        """
        points = []
        for combo in removals:
            plan = InterventionPlan.from_knobs(f=fraction, p=resolution, c=combo)
            point = self.estimate_plan(query, plan, rng, correction)
            points.append(
                ProfilePoint(
                    plan=plan,
                    error_bound=point.error_bound,
                    value=point.value,
                    n=point.n,
                )
            )
        return Profile(axis="removal", points=tuple(points), query_label=query.label())

    def generate_hypercube(
        self,
        query: AggregateQuery,
        candidates: CandidateGrid,
        rng: np.random.Generator,
        correction: CorrectionSet | None = None,
        early_stop_tolerance: float | None = None,
    ) -> DegradationHypercube:
        """Price the full candidate grid (§3.1's degradation hypercube).

        For each (resolution, removal) pair the fraction axis is swept in
        ascending order with nested-sample reuse; cells skipped by early
        stopping are NaN.

        Args:
            query: The query.
            candidates: The candidate grid.
            rng: Trial randomness.
            correction: Optional correction set.
            early_stop_tolerance: Early-stop threshold for the fraction
                sweeps; None disables.

        Returns:
            The degradation hypercube.
        """
        shape = (
            len(candidates.fractions),
            len(candidates.resolutions),
            len(candidates.removals),
        )
        bounds = np.full(shape, math.nan)
        values = np.full(shape, math.nan)
        fraction_index = {f: i for i, f in enumerate(candidates.fractions)}

        for ci, combo in enumerate(candidates.removals):
            for ri, resolution in enumerate(candidates.resolutions):
                swept = self._sweep_fractions(
                    query,
                    candidates.fractions,
                    resolution,
                    combo,
                    correction,
                    rng,
                    early_stop_tolerance,
                )
                for fraction, point in swept:
                    fi = fraction_index[fraction]
                    bounds[fi, ri, ci] = point.error_bound
                    values[fi, ri, ci] = point.value
        return DegradationHypercube(
            fractions=candidates.fractions,
            resolutions=candidates.resolutions,
            removals=candidates.removals,
            bounds=bounds,
            values=values,
            query_label=query.label(),
        )

    # ------------------------------------------------------------------
    # Seeded, parallelizable profile generation.
    #
    # Results are a pure function of (query, settings, root): the same
    # bits come back for any worker count, any unit scheduling, and the
    # serial fallback. Work units run against fresh ledgers; their counts
    # are merged into this profiler's ledger in unit order.
    # ------------------------------------------------------------------

    def profile_sampling_seeded(
        self,
        query: AggregateQuery,
        fractions: tuple[float, ...],
        root: RootSeed,
        resolution: Resolution | None = None,
        removal: tuple[ObjectClass, ...] = (),
        correction: CorrectionSet | None = None,
        early_stop_tolerance: float | None = None,
        executor: ParallelExecutor | None = None,
    ) -> Profile:
        """Sampling-axis profile with seeded trials, parallel over trials.

        Trials are split into contiguous chunks (one work unit each); every
        trial keeps its own seed stream, so chunking is invisible to the
        result. Early stopping is applied *after* merging, on the
        all-trials mean bound — the kept points are exactly those the
        incremental strategy keeps, but the ledger reflects the full sweep
        (each unit cannot see the other units' bounds mid-flight).

        Args:
            query: The query.
            fractions: Ascending fraction candidates.
            root: Root entropy of the seed stream.
            resolution: Fixed resolution knob (None = native).
            removal: Fixed restricted classes.
            correction: Optional correction set.
            early_stop_tolerance: Post-hoc truncation threshold; None
                disables.
            executor: Execution substrate; defaults to serial.

        Returns:
            The sampling-axis profile.
        """
        executor = executor or ParallelExecutor()
        root_t = normalize_root(root)
        fractions = tuple(fractions)
        chunks = trial_chunks(self._trials, executor.worker_count(self._trials))
        units = [
            SweepUnit(
                query=query,
                fractions=fractions,
                resolution=resolution,
                removal=tuple(removal),
                correction=correction,
                trials=self._trials,
                root=root_t,
                unit_index=0,
                trial_indices=tuple(chunk),
                early_stop_tolerance=None,
                suite=self._processor.suite,
                vectorized=self._vectorized,
            )
            for chunk in chunks
        ]
        with telemetry.span(
            "profiler.profile_sampling", units=len(units), trials=self._trials
        ):
            outcomes = executor.map(run_sweep_unit, units)
        for _, counts in outcomes:
            merge_ledger_counts(self._ledger, counts)
        swept_chunks = [swept for swept, _ in outcomes]

        points: list[ProfilePoint] = []
        previous_bound: float | None = None
        for idx, fraction in enumerate(fractions):
            per_trial_values = np.concatenate(
                [chunk[idx].values for chunk in swept_chunks]
            )
            per_trial_bounds = np.concatenate(
                [chunk[idx].bounds for chunk in swept_chunks]
            )
            bound = float(per_trial_bounds.mean())
            points.append(
                ProfilePoint(
                    plan=InterventionPlan.from_knobs(
                        f=fraction, p=resolution, c=tuple(removal)
                    ),
                    error_bound=bound,
                    value=float(per_trial_values.mean()),
                    n=swept_chunks[0][idx].size,
                )
            )
            if (
                early_stop_tolerance is not None
                and previous_bound is not None
                and abs(previous_bound - bound) < early_stop_tolerance
            ):
                telemetry.count("profiler.early_stop")
                break
            previous_bound = bound
        return Profile(
            axis="sampling", points=tuple(points), query_label=query.label()
        )

    def _profile_plans_seeded(
        self,
        query: AggregateQuery,
        axis: str,
        plans: list[InterventionPlan],
        root: RootSeed,
        correction: CorrectionSet | None,
        executor: ParallelExecutor | None,
    ) -> Profile:
        """Price a list of settings as one plan unit each."""
        executor = executor or ParallelExecutor()
        root_t = normalize_root(root)
        units = [
            PlanUnit(
                query=query,
                plan=plan,
                correction=correction,
                trials=self._trials,
                root=root_t,
                unit_index=i,
                suite=self._processor.suite,
                vectorized=self._vectorized,
            )
            for i, plan in enumerate(plans)
        ]
        outcomes = executor.map(run_plan_unit, units)
        points = []
        for plan, (point, counts) in zip(plans, outcomes):
            merge_ledger_counts(self._ledger, counts)
            points.append(
                ProfilePoint(
                    plan=plan,
                    error_bound=point.error_bound,
                    value=point.value,
                    n=point.n,
                )
            )
        return Profile(axis=axis, points=tuple(points), query_label=query.label())

    def profile_resolution_seeded(
        self,
        query: AggregateQuery,
        resolutions: tuple[Resolution, ...],
        root: RootSeed,
        fraction: float = 0.5,
        removal: tuple[ObjectClass, ...] = (),
        correction: CorrectionSet | None = None,
        executor: ParallelExecutor | None = None,
    ) -> Profile:
        """Resolution-axis profile with seeded trials, parallel over settings.

        Args:
            query: The query.
            resolutions: Resolution candidates (ascending side order).
            root: Root entropy of the seed stream.
            fraction: Fixed sampling fraction.
            removal: Fixed restricted classes.
            correction: Optional correction set.
            executor: Execution substrate; defaults to serial.

        Returns:
            The resolution-axis profile.
        """
        plans = [
            InterventionPlan.from_knobs(f=fraction, p=resolution, c=tuple(removal))
            for resolution in resolutions
        ]
        return self._profile_plans_seeded(
            query, "resolution", plans, root, correction, executor
        )

    def profile_removal_seeded(
        self,
        query: AggregateQuery,
        removals: tuple[tuple[ObjectClass, ...], ...],
        root: RootSeed,
        fraction: float = 0.5,
        resolution: Resolution | None = None,
        correction: CorrectionSet | None = None,
        executor: ParallelExecutor | None = None,
    ) -> Profile:
        """Removal-axis profile with seeded trials, parallel over settings.

        Args:
            query: The query.
            removals: Restricted-class combinations; ``()`` = no removal.
            root: Root entropy of the seed stream.
            fraction: Fixed sampling fraction.
            resolution: Fixed resolution knob (None = native).
            correction: Optional correction set.
            executor: Execution substrate; defaults to serial.

        Returns:
            The removal-axis profile.
        """
        plans = [
            InterventionPlan.from_knobs(f=fraction, p=resolution, c=tuple(combo))
            for combo in removals
        ]
        return self._profile_plans_seeded(
            query, "removal", plans, root, correction, executor
        )

    def generate_hypercube_seeded(
        self,
        query: AggregateQuery,
        candidates: CandidateGrid,
        root: RootSeed,
        correction: CorrectionSet | None = None,
        early_stop_tolerance: float | None = None,
        executor: ParallelExecutor | None = None,
    ) -> DegradationHypercube:
        """Price the candidate grid, parallel over (resolution, removal).

        Each (removal, resolution) pair is one work unit sweeping the
        fraction axis with all trials inside it, so early stopping keeps
        its incremental semantics per unit. Unit ``ci * R + ri`` seeds
        trial ``t`` from ``child_rng(root, ci * R + ri, t)``.

        Args:
            query: The query.
            candidates: The candidate grid.
            root: Root entropy of the seed stream.
            correction: Optional correction set.
            early_stop_tolerance: Early-stop threshold for the fraction
                sweeps; None disables.
            executor: Execution substrate; defaults to serial.

        Returns:
            The degradation hypercube (bit-identical for any worker count).
        """
        executor = executor or ParallelExecutor()
        root_t = normalize_root(root)
        resolution_count = len(candidates.resolutions)
        units = [
            SweepUnit(
                query=query,
                fractions=tuple(candidates.fractions),
                resolution=resolution,
                removal=tuple(combo),
                correction=correction,
                trials=self._trials,
                root=root_t,
                unit_index=ci * resolution_count + ri,
                early_stop_tolerance=early_stop_tolerance,
                suite=self._processor.suite,
                vectorized=self._vectorized,
            )
            for ci, combo in enumerate(candidates.removals)
            for ri, resolution in enumerate(candidates.resolutions)
        ]
        with telemetry.span(
            "profiler.hypercube", units=len(units), trials=self._trials
        ):
            outcomes = executor.map(run_sweep_unit, units)

        shape = (
            len(candidates.fractions),
            len(candidates.resolutions),
            len(candidates.removals),
        )
        bounds = np.full(shape, math.nan)
        values = np.full(shape, math.nan)
        fraction_index = {f: i for i, f in enumerate(candidates.fractions)}
        for unit, (swept, counts) in zip(units, outcomes):
            merge_ledger_counts(self._ledger, counts)
            ci, ri = divmod(unit.unit_index, resolution_count)
            for item in swept:
                fi = fraction_index[item.fraction]
                point = item.point()
                bounds[fi, ri, ci] = point.error_bound
                values[fi, ri, ci] = point.value
        return DegradationHypercube(
            fractions=candidates.fractions,
            resolutions=candidates.resolutions,
            removals=candidates.removals,
            bounds=bounds,
            values=values,
            query_label=query.label(),
        )
