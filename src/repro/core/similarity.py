"""Profile similarity and transfer between videos (paper §3.3.1, §5.3.2).

When even a small correction set is not permissible on a sensitive video,
an alternative is to generate the profile on a *similar but less sensitive*
video — same camera at a different time — and use it to guide the
interventions on the sensitive one. This module quantifies how close two
profiles are, supporting the §5.3.2 experiment (Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.profile import Profile
from repro.errors import ProfileError


@dataclass(frozen=True)
class ProfileDifference:
    """Point-wise comparison of two profiles along the same axis.

    Attributes:
        knob_values: The knob values where both profiles have points.
        differences: ``|err_b_a - err_b_b|`` at each shared knob value.
    """

    knob_values: tuple[float, ...]
    differences: np.ndarray

    @property
    def max_difference(self) -> float:
        """Largest point-wise bound difference."""
        return float(self.differences.max())

    @property
    def mean_difference(self) -> float:
        """Mean point-wise bound difference."""
        return float(self.differences.mean())


def profile_difference(profile_a: Profile, profile_b: Profile) -> ProfileDifference:
    """Absolute error-bound differences at shared knob values.

    Args:
        profile_a: First profile (e.g. the target video's).
        profile_b: Second profile (e.g. the similar video's), along the
            same axis.

    Returns:
        The point-wise difference at knob values present in both profiles.
    """
    if profile_a.axis != profile_b.axis:
        raise ProfileError(
            f"cannot compare profiles along different axes: "
            f"{profile_a.axis} vs {profile_b.axis}"
        )
    if profile_a.axis == "removal":
        raise ProfileError("removal profiles are categorical; compare by label")

    bounds_a = {
        float(knob): bound
        for knob, bound in zip(profile_a.knob_values(), profile_a.error_bounds())
    }
    bounds_b = {
        float(knob): bound
        for knob, bound in zip(profile_b.knob_values(), profile_b.error_bounds())
    }
    shared = sorted(set(bounds_a) & set(bounds_b))
    if not shared:
        raise ProfileError("profiles share no knob values to compare at")
    differences = np.array([abs(bounds_a[knob] - bounds_b[knob]) for knob in shared])
    return ProfileDifference(knob_values=tuple(shared), differences=differences)
