"""Multi-query workloads sharing samples and a correction set.

The paper's administrator determines "the appropriate degradation/accuracy
tradeoff for *each query in a workload*" (§1). Queries over the same corpus
and model share everything expensive — model outputs, the degraded sample,
and the correction set (which, once constructed, "can be used for
correcting error bounds of any combination of interventions", §3.2.5) — so
profiling them together costs barely more than profiling one.

:class:`QueryWorkload` bundles queries over one deployment, sizes a single
correction set at the most demanding query's elbow, and prices a shared
degradation plan for all of them at once. The administrator then needs one
plan satisfying *every* query's error target: :meth:`choose_sampling`
intersects the per-query admissible regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.correction import CorrectionSet, determine_correction_set
from repro.core.profile import Profile
from repro.core.profiler import DegradationProfiler
from repro.errors import ConfigurationError, ProfileError
from repro.query.processor import QueryProcessor
from repro.query.query import AggregateQuery


@dataclass(frozen=True)
class WorkloadChoice:
    """A sampling fraction satisfying every query's error target.

    Attributes:
        fraction: The chosen (smallest admissible) sampling fraction.
        bounds: Each query's bounded error at the chosen fraction, keyed
            by the query's label.
    """

    fraction: float
    bounds: Mapping[str, float]


class QueryWorkload:
    """Several aggregate queries over one corpus, profiled together."""

    def __init__(
        self,
        queries: list[AggregateQuery],
        processor: QueryProcessor,
        trials: int = 1,
    ) -> None:
        """Bundle queries over a shared deployment.

        Args:
            queries: The workload's queries; all must target the same
                corpus (they may use different aggregates and models).
            processor: The shared query processor.
            trials: Sampling trials averaged per profiled setting.
        """
        if not queries:
            raise ConfigurationError("a workload needs at least one query")
        corpora = {id(query.dataset) for query in queries}
        if len(corpora) != 1:
            raise ConfigurationError(
                "workload queries must share one corpus; profile different "
                "corpora separately"
            )
        labels = [query.label() for query in queries]
        if len(set(labels)) != len(labels):
            raise ConfigurationError(f"duplicate query labels: {labels}")
        self._queries = list(queries)
        self._processor = processor
        self._profiler = DegradationProfiler(processor, trials=trials)

    @property
    def queries(self) -> list[AggregateQuery]:
        """The workload's queries (copy)."""
        return list(self._queries)

    def build_shared_correction_set(
        self, rng: np.random.Generator, tolerance: float = 0.02
    ) -> CorrectionSet:
        """One correction set serving every query in the workload.

        Each query's elbow heuristic may stop at a different size; the
        shared set uses the *largest* — a superset of every per-query set,
        so each query's repaired bound is at least as tight as with its own
        set (§3.2.5: one set corrects any combination of interventions).

        Args:
            rng: Randomness for the underlying sample. A single nested
                sampler is reused so the per-query sets are prefixes of the
                shared one.
            tolerance: Elbow threshold (paper: 2%).

        Returns:
            The shared correction set.
        """
        seed_state = rng.bit_generator.state
        largest: CorrectionSet | None = None
        for query in self._queries:
            rng.bit_generator.state = seed_state  # same underlying sample
            candidate = determine_correction_set(
                self._processor, query, rng, tolerance=tolerance
            )
            if largest is None or candidate.size > largest.size:
                largest = candidate
        assert largest is not None  # guarded by the constructor
        return largest

    def profile_sampling(
        self,
        fractions: tuple[float, ...],
        rng: np.random.Generator,
        correction: CorrectionSet | None = None,
    ) -> dict[str, Profile]:
        """Sampling-axis profiles for every query, keyed by query label.

        Args:
            fractions: Ascending fraction candidates, shared by all.
            rng: Trial randomness (each query gets its own derived stream
                so profiles are individually reproducible).
            correction: Optional shared correction set. Note a correction
                set holds *values*, which are model/aggregate-specific:
                when queries use different models, build per-query sets
                instead and pass None here.

        Returns:
            One profile per query.
        """
        seeds = rng.integers(0, 2**63 - 1, size=len(self._queries))
        profiles: dict[str, Profile] = {}
        for query, seed in zip(self._queries, seeds):
            query_correction = correction
            if correction is not None:
                # Re-evaluate the correction frames under THIS query's
                # model/aggregate so the values match.
                values = self._processor.true_values(query)[
                    correction.frame_indices
                ]
                query_correction = CorrectionSet(
                    frame_indices=correction.frame_indices,
                    values=values,
                    error_bound=correction.error_bound,
                    trace=correction.trace,
                )
            profiles[query.label()] = self._profiler.profile_sampling(
                query,
                fractions,
                np.random.default_rng(int(seed)),
                correction=query_correction,
            )
        return profiles

    def choose_sampling(
        self,
        profiles: Mapping[str, Profile],
        max_errors: Mapping[str, float],
    ) -> WorkloadChoice:
        """The most aggressive fraction admissible for *every* query.

        Args:
            profiles: Per-query sampling profiles (from
                :meth:`profile_sampling`).
            max_errors: Per-query error targets, keyed by query label;
                every profiled query must have a target.

        Returns:
            The chosen fraction with each query's bound there.
        """
        missing = set(profiles) - set(max_errors)
        if missing:
            raise ProfileError(f"no error target for queries: {sorted(missing)}")

        admissible: set[float] | None = None
        for label, profile in profiles.items():
            target = max_errors[label]
            query_ok = {
                point.plan.fraction
                for point in profile.points
                if point.error_bound <= target
            }
            admissible = query_ok if admissible is None else admissible & query_ok
        if not admissible:
            raise ProfileError(
                "no profiled fraction satisfies every query's error target"
            )
        fraction = min(admissible)
        bounds = {}
        for label, profile in profiles.items():
            for point in profile.points:
                if point.plan.fraction == fraction:
                    bounds[label] = point.error_bound
                    break
        return WorkloadChoice(fraction=fraction, bounds=bounds)
