"""Intervention-candidate design (paper §3.3.2).

The system first enumerates many possible ``(f, p, c)`` settings: sample
fractions at 1% intervals, ten uniformly spaced frame resolutions, and all
combinations of the possibly sensitive classes. Administrators then filter
out candidates that cannot satisfy their degradation goals before the
profiler prices the rest.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.video.dataset import VideoDataset
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution, resolution_grid


@dataclass(frozen=True)
class CandidateGrid:
    """The intervention candidates the profiler will price.

    Attributes:
        fractions: Sampling fractions, ascending.
        resolutions: Resolutions, ascending side order (native last).
        removals: Restricted-class combinations; ``()`` means no removal.
    """

    fractions: tuple[float, ...]
    resolutions: tuple[Resolution, ...]
    removals: tuple[tuple[ObjectClass, ...], ...]

    def __post_init__(self) -> None:
        if not self.fractions:
            raise ConfigurationError("candidate grid needs at least one fraction")
        if not self.resolutions:
            raise ConfigurationError("candidate grid needs at least one resolution")
        if not self.removals:
            raise ConfigurationError(
                "candidate grid needs at least one removal combination "
                "(use an empty tuple for 'no removal')"
            )
        if list(self.fractions) != sorted(self.fractions):
            raise ConfigurationError("fractions must be ascending")
        sides = [resolution.side for resolution in self.resolutions]
        if sides != sorted(sides):
            raise ConfigurationError("resolutions must be in ascending side order")

    @property
    def cell_count(self) -> int:
        """Total number of grid cells."""
        return len(self.fractions) * len(self.resolutions) * len(self.removals)

    def filtered(
        self,
        min_fraction: float | None = None,
        max_fraction: float | None = None,
        max_resolution: Resolution | None = None,
        required_removed: tuple[ObjectClass, ...] = (),
    ) -> "CandidateGrid":
        """Apply administrator degradation goals to the grid (§3.1).

        Args:
            min_fraction: Drop fractions below this (accuracy floor).
            max_fraction: Drop fractions above this (degradation goal).
            max_resolution: Drop resolutions above this (privacy/legal
                goal, e.g. "nothing sharper than 256x256 leaves the
                camera").
            required_removed: Keep only combinations that remove at least
                these classes.

        Returns:
            The filtered grid.
        """
        fractions = tuple(
            f
            for f in self.fractions
            if (min_fraction is None or f >= min_fraction)
            and (max_fraction is None or f <= max_fraction)
        )
        resolutions = tuple(
            resolution
            for resolution in self.resolutions
            if max_resolution is None or resolution.side <= max_resolution.side
        )
        required = set(required_removed)
        removals = tuple(
            combo for combo in self.removals if required.issubset(set(combo))
        )
        return CandidateGrid(fractions, resolutions, removals)


def fraction_candidates(step: float = 0.01, maximum: float = 1.0) -> tuple[float, ...]:
    """Sampling fractions at fixed intervals (paper default: 1% steps).

    Args:
        step: Grid step; the paper uses 0.01.
        maximum: Largest fraction to include.

    Returns:
        Ascending fractions ``(step, 2*step, ..., <= maximum)``.
    """
    if not 0.0 < step <= 1.0:
        raise ConfigurationError(f"fraction step must lie in (0, 1], got {step}")
    if not step <= maximum <= 1.0:
        raise ConfigurationError(
            f"maximum fraction must lie in [{step}, 1], got {maximum}"
        )
    count = int(round(maximum / step))
    fractions = tuple(round(step * i, 10) for i in range(1, count + 1))
    return tuple(f for f in fractions if f <= maximum + 1e-12)


def removal_candidates(
    restricted: tuple[ObjectClass, ...] = (ObjectClass.PERSON, ObjectClass.FACE),
) -> tuple[tuple[ObjectClass, ...], ...]:
    """All combinations of the possibly sensitive classes, incl. none.

    Args:
        restricted: The classes an administrator might restrict.

    Returns:
        Every subset of ``restricted``, smallest first, starting with the
        empty (no-removal) combination.
    """
    combos: list[tuple[ObjectClass, ...]] = []
    for size in range(len(restricted) + 1):
        combos.extend(itertools.combinations(restricted, size))
    return tuple(combos)


def default_candidates(
    dataset: VideoDataset,
    fraction_step: float = 0.01,
    max_fraction: float = 1.0,
    resolution_count: int = 10,
    restricted: tuple[ObjectClass, ...] = (ObjectClass.PERSON, ObjectClass.FACE),
) -> CandidateGrid:
    """The paper's default candidate design for a corpus.

    Args:
        dataset: The corpus (supplies the native resolution).
        fraction_step: Sampling-fraction interval (paper: 1%).
        max_fraction: Largest fraction candidate.
        resolution_count: Number of uniformly spaced resolutions (paper: 10).
        restricted: Possibly sensitive classes (paper: person and face).

    Returns:
        The full candidate grid.
    """
    return CandidateGrid(
        fractions=fraction_candidates(fraction_step, max_fraction),
        resolutions=tuple(
            resolution_grid(dataset.native_resolution, resolution_count)
        ),
        removals=removal_candidates(restricted),
    )
