"""Correction-set construction (paper §3.3.1).

The correction set is a without-replacement sample of the *original* corpus
(random interventions only: native resolution, no removal) used by profile
repair. It should be as small as possible — it is the one place profiling
touches lightly-degraded video — but large enough that its own error bound
``err_b(v)`` is tight, since the corrected bound inherits it.

The paper's heuristic finds the elbow of ``err_b(v)`` versus the set size
``m``: grow the set by 1% of the corpus at a time and stop once the bound's
improvement over the previous step falls below 2% (or a size limit is hit).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.estimators.base import MeanEstimator, QuantileEstimator
from repro.estimators.quantile import SmokescreenQuantileEstimator
from repro.estimators.smokescreen import SmokescreenMeanEstimator
from repro.estimators.variance import SmokescreenVarianceEstimator
from repro.query.processor import QueryProcessor
from repro.query.query import AggregateQuery
from repro.stats.sampling import ProgressiveSampler


@dataclass(frozen=True)
class CorrectionSet:
    """A constructed correction set and its sizing trace.

    Attributes:
        frame_indices: The sampled frame indices (nested prefix order, so
            any prefix is itself a valid smaller correction set).
        values: Aggregate input values on those frames at native
            resolution and full quality.
        error_bound: The set's own bound ``err_b(v)`` at the final size.
        trace: The sizing trace as ``(size, error_bound)`` pairs, one per
            growth step — the curve of Figure 9.
    """

    frame_indices: np.ndarray
    values: np.ndarray
    error_bound: float
    trace: tuple[tuple[int, float], ...]

    @property
    def size(self) -> int:
        """The chosen correction-set size ``m``."""
        return int(self.frame_indices.size)

    def fraction(self, population: int) -> float:
        """The chosen size as a fraction of the corpus length."""
        return self.size / population


def determine_correction_set(
    processor: QueryProcessor,
    query: AggregateQuery,
    rng: np.random.Generator,
    growth_step: float = 0.01,
    tolerance: float = 0.02,
    size_limit: int | None = None,
) -> CorrectionSet:
    """Size and draw a correction set by the paper's elbow heuristic.

    The set grows by ``growth_step`` of the corpus per step; after each
    step the set's own error bound is computed with the Smokescreen
    estimator matching the query's aggregate, and growth stops when the
    bound improved by less than ``tolerance`` — the elbow — or the size
    limit is reached.

    Args:
        processor: Query processor (supplies native-resolution values).
        query: The query the correction set will repair bounds for.
        rng: Randomness for the underlying without-replacement sample.
        growth_step: Step size as a corpus fraction (paper: 1%).
        tolerance: Stop when the bound's step-to-step improvement is below
            this (paper: 2%).
        size_limit: Administrator-imposed maximum size, or None.

    Returns:
        The constructed correction set with its sizing trace.
    """
    if not 0.0 < growth_step <= 1.0:
        raise ConfigurationError(f"growth step must lie in (0, 1], got {growth_step}")
    if tolerance < 0.0:
        raise ConfigurationError(f"tolerance must be non-negative, got {tolerance}")

    population = query.dataset.frame_count
    step_frames = max(1, int(round(population * growth_step)))
    limit = min(size_limit or population, population)

    sampler = ProgressiveSampler(population, rng)
    full_values = processor.true_values(query)

    mean_estimator: MeanEstimator = SmokescreenMeanEstimator()
    quantile_estimator: QuantileEstimator = SmokescreenQuantileEstimator()
    variance_estimator: MeanEstimator = SmokescreenVarianceEstimator()

    trace: list[tuple[int, float]] = []
    size = 0
    previous_bound: float | None = None
    while True:
        size = min(size + step_frames, limit)
        indices = sampler.prefix(size)
        values = full_values[indices]
        if query.aggregate.is_mean_family:
            bound = mean_estimator.estimate(
                values, population, query.delta,
                value_range=query.known_value_range,
            ).error_bound
        elif query.aggregate.is_variance:
            bound = variance_estimator.estimate(
                values, population, query.delta
            ).error_bound
        else:
            bound = quantile_estimator.estimate(
                values,
                population,
                query.effective_quantile,
                query.delta,
                query.aggregate,
            ).error_bound
        trace.append((size, bound))
        at_limit = size >= limit
        at_elbow = (
            previous_bound is not None and abs(previous_bound - bound) < tolerance
        )
        if at_limit or at_elbow:
            break
        previous_bound = bound

    indices = sampler.prefix(size)
    return CorrectionSet(
        frame_indices=indices,
        values=full_values[indices],
        error_bound=trace[-1][1],
        trace=tuple(trace),
    )
