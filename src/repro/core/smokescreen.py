"""The Smokescreen system facade.

Ties the prototype's three components together (paper §4): the video frame
processor (detectors + query processor), the analytical result and error
bound estimator, and the correction set / intervention candidate design —
behind one object mirroring the administration procedure of §3.1:
``profile`` (profile generation) then ``choose`` (choosing a tradeoff) then
``estimate`` (running the query under the chosen degradation).
"""

from __future__ import annotations

import numpy as np

from repro.core.candidates import CandidateGrid, default_candidates
from repro.core.correction import CorrectionSet, determine_correction_set
from repro.core.profile import DegradationHypercube, Profile
from repro.core.profiler import DegradationProfiler
from repro.core.tradeoff import PublicPreferences, TradeoffChoice, choose_tradeoff
from repro.detection.base import Detector
from repro.detection.zoo import DetectorSuite, default_suite
from repro.errors import ConfigurationError
from repro.estimators.base import Estimate
from repro.estimators.dispatch import estimate_query
from repro.interventions.plan import InterventionPlan
from repro.query.aggregates import Aggregate, FramePredicate
from repro.query.processor import QueryProcessor
from repro.query.query import AggregateQuery
from repro.system.costs import InvocationLedger
from repro.system.observe import ledger as run_ledger
from repro.system.executor import ExecutorConfig, ParallelExecutor
from repro.video.dataset import VideoDataset


class Smokescreen:
    """The prototype system: profiling, tradeoff choice, and estimation."""

    def __init__(
        self,
        dataset: VideoDataset,
        model: Detector,
        suite: DetectorSuite | None = None,
        delta: float = 0.05,
        trials: int = 1,
        seed: int = 0,
        workers: int | str = 1,
        vectorized: bool = True,
    ) -> None:
        """Deploy Smokescreen on a corpus with a query UDF.

        Args:
            dataset: The video corpus.
            model: The query's vision model (e.g. a car detector).
            suite: Restricted-class detectors; defaults to the paper's
                YOLOv4-person + MTCNN-face suite.
            delta: Bound failure probability (paper: 0.05).
            trials: Sampling trials averaged per profiled setting.
            seed: Seed of the system's own RNG stream.
            workers: Worker processes for profile generation; the profile
                is bit-identical for any value. ``"auto"`` defers to the
                host CPU count and workload size.
            vectorized: Price all trials of a sweep through the batch
                estimator kernels (the default). False keeps the
                per-trial loops; both paths draw the same samples and
                agree within 1e-9.
        """
        self._dataset = dataset
        self._model = model
        self._suite = suite or default_suite()
        self._delta = delta
        self._processor = QueryProcessor(self._suite)
        self._ledger = InvocationLedger()
        self._profiler = DegradationProfiler(
            self._processor, trials=trials, ledger=self._ledger,
            vectorized=vectorized,
        )
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._executor = ParallelExecutor(ExecutorConfig(workers=workers))
        self._profile_calls = 0

    @property
    def processor(self) -> QueryProcessor:
        """The underlying query processor."""
        return self._processor

    @property
    def ledger(self) -> InvocationLedger:
        """Model-invocation accounting accumulated by this system."""
        return self._ledger

    @property
    def profiler(self) -> DegradationProfiler:
        """The underlying profiler (for advanced sweeps)."""
        return self._profiler

    def query(
        self,
        aggregate: Aggregate,
        predicate: FramePredicate | None = None,
        quantile_r: float | None = None,
    ) -> AggregateQuery:
        """Build a query over this deployment's corpus and model.

        Args:
            aggregate: The aggregate function.
            predicate: COUNT predicate (optional).
            quantile_r: MAX/MIN quantile level (optional).

        Returns:
            The query object.
        """
        return AggregateQuery(
            dataset=self._dataset,
            model=self._model,
            aggregate=aggregate,
            predicate=predicate,
            quantile_r=quantile_r,
            delta=self._delta,
        )

    def build_correction_set(
        self,
        query: AggregateQuery,
        growth_step: float = 0.01,
        tolerance: float = 0.02,
        size_limit: int | None = None,
    ) -> CorrectionSet:
        """Size and draw a correction set for a query (§3.3.1).

        Args:
            query: The query whose bounds the set will repair.
            growth_step: Growth step as a corpus fraction (paper: 1%).
            tolerance: Elbow threshold on the bound change (paper: 2%).
            size_limit: Administrator-imposed maximum size.

        Returns:
            The correction set.
        """
        if query.dataset is not self._dataset:
            raise ConfigurationError("query targets a different corpus")
        return determine_correction_set(
            self._processor,
            query,
            self._rng,
            growth_step=growth_step,
            tolerance=tolerance,
            size_limit=size_limit,
        )

    def candidates(self, **kwargs) -> CandidateGrid:
        """The default intervention-candidate grid for this corpus (§3.3.2).

        Keyword arguments are forwarded to
        :func:`repro.core.candidates.default_candidates`.
        """
        return default_candidates(self._dataset, **kwargs)

    def profile(
        self,
        query: AggregateQuery,
        candidates: CandidateGrid,
        correction: CorrectionSet | None = None,
        early_stop_tolerance: float | None = None,
    ) -> DegradationHypercube:
        """Profile generation: price the candidate grid (§3.1).

        Args:
            query: The query.
            candidates: Intervention candidates to price.
            correction: Optional correction set (required for trustworthy
                bounds under the non-random candidates).
            early_stop_tolerance: Early-stop threshold for fraction sweeps.

        Returns:
            The degradation hypercube; browse it via ``initial_slices()``.
        """
        # Root the seed stream in (system seed, call counter): repeated
        # profile() calls draw fresh trials, yet each call's result is
        # independent of the worker count and of other RNG consumers.
        root = (self._seed, self._profile_calls)
        self._profile_calls += 1
        cube = self._profiler.generate_hypercube_seeded(
            query,
            candidates,
            root,
            correction=correction,
            early_stop_tolerance=early_stop_tolerance,
            executor=self._executor,
        )
        finite = cube.bounds[np.isfinite(cube.bounds)]
        run_ledger.annotate(
            model_invocations=self._ledger.total,
            dataset=self._dataset.name,
            detector=self._model.name,
            bounds={
                "max_width": (
                    round(float(finite.max()), 6) if finite.size else None
                ),
                "mean_width": (
                    round(float(finite.mean()), 6) if finite.size else None
                ),
                "cells": int(cube.bounds.size),
                "priced_cells": int(finite.size),
            },
        )
        return cube

    def choose(
        self, profile: Profile, preferences: PublicPreferences
    ) -> TradeoffChoice:
        """Choosing a tradeoff: the most degraded admissible setting.

        Args:
            profile: A profile (hypercube slice).
            preferences: The administrator's public preferences.

        Returns:
            The chosen tradeoff.
        """
        return choose_tradeoff(profile, preferences)

    def estimate(
        self,
        query: AggregateQuery,
        plan: InterventionPlan,
        method: str = "smokescreen",
    ) -> Estimate:
        """Run the query under a chosen degradation and estimate the answer.

        Args:
            query: The query.
            plan: The chosen degradation setting.
            method: Estimator name (see :mod:`repro.estimators.dispatch`).

        Returns:
            The approximate answer with its error bound.
        """
        execution = self._processor.execute(query, plan, self._rng)
        return estimate_query(query, execution, method)
