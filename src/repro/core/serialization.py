"""JSON persistence for plans, profiles, and hypercubes.

Profile generation is the expensive stage (it drives the detectors), so
administrators keep its outputs around: a profile priced today guides knob
choices for weeks of upcoming video from the same camera. This module
round-trips the administrator-facing objects through plain JSON — no
pickle, so files are inspectable and safe to exchange.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.profile import DegradationHypercube, Profile, ProfilePoint
from repro.errors import ProfileError
from repro.interventions.plan import InterventionPlan
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution

#: Schema version written into every file; bump on breaking changes.
SCHEMA_VERSION = 1


def _encode_float(value: float) -> float | str:
    """JSON has no inf/nan literals; encode them as strings."""
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _decode_float(value: float | str) -> float:
    if isinstance(value, str):
        return float(value)
    return float(value)


def plan_to_dict(plan: InterventionPlan) -> dict[str, Any]:
    """Encode an intervention plan (extension operators excluded — only
    the paper's ``(f, p, c)`` triple is persisted).

    Args:
        plan: The plan to encode.

    Returns:
        A JSON-safe dict.
    """
    if plan.extras:
        raise ProfileError(
            "plans with extension interventions (noise/compression) are "
            "not serialisable; persist the (f, p, c) triple only"
        )
    return {
        "fraction": plan.sampling.fraction if plan.sampling else None,
        "resolution": plan.resolution.resolution.side if plan.resolution else None,
        "removed_classes": [
            cls.name.lower() for cls in (plan.removal.classes if plan.removal else ())
        ],
    }


def plan_from_dict(data: dict[str, Any]) -> InterventionPlan:
    """Decode an intervention plan.

    Args:
        data: A dict produced by :func:`plan_to_dict`.

    Returns:
        The plan.
    """
    removed = tuple(
        ObjectClass.from_name(name) for name in data.get("removed_classes", [])
    )
    return InterventionPlan.from_knobs(
        f=data.get("fraction"),
        p=data.get("resolution"),
        c=removed,
    )


def profile_to_dict(profile: Profile) -> dict[str, Any]:
    """Encode a profile.

    Args:
        profile: The profile to encode.

    Returns:
        A JSON-safe dict including the schema version.
    """
    return {
        "schema": SCHEMA_VERSION,
        "kind": "profile",
        "axis": profile.axis,
        "query_label": profile.query_label,
        "points": [
            {
                "plan": plan_to_dict(point.plan),
                "error_bound": _encode_float(point.error_bound),
                "value": _encode_float(point.value),
                "n": point.n,
                "true_error": (
                    _encode_float(point.true_error)
                    if point.true_error is not None
                    else None
                ),
            }
            for point in profile.points
        ],
    }


def profile_from_dict(data: dict[str, Any]) -> Profile:
    """Decode a profile.

    Args:
        data: A dict produced by :func:`profile_to_dict`.

    Returns:
        The profile.
    """
    _check_header(data, "profile")
    points = tuple(
        ProfilePoint(
            plan=plan_from_dict(entry["plan"]),
            error_bound=_decode_float(entry["error_bound"]),
            value=_decode_float(entry["value"]),
            n=int(entry["n"]),
            true_error=(
                _decode_float(entry["true_error"])
                if entry.get("true_error") is not None
                else None
            ),
        )
        for entry in data["points"]
    )
    return Profile(
        axis=data["axis"], points=points, query_label=data.get("query_label", "")
    )


def hypercube_to_dict(cube: DegradationHypercube) -> dict[str, Any]:
    """Encode a degradation hypercube.

    Args:
        cube: The hypercube to encode.

    Returns:
        A JSON-safe dict (NaN cells become ``"nan"`` strings).
    """
    return {
        "schema": SCHEMA_VERSION,
        "kind": "hypercube",
        "query_label": cube.query_label,
        "fractions": list(cube.fractions),
        "resolutions": [resolution.side for resolution in cube.resolutions],
        "removals": [
            [cls.name.lower() for cls in combo] for combo in cube.removals
        ],
        "bounds": [
            [[_encode_float(float(v)) for v in row] for row in plane]
            for plane in cube.bounds
        ],
        "values": [
            [[_encode_float(float(v)) for v in row] for row in plane]
            for plane in cube.values
        ],
    }


def hypercube_from_dict(data: dict[str, Any]) -> DegradationHypercube:
    """Decode a degradation hypercube.

    Args:
        data: A dict produced by :func:`hypercube_to_dict`.

    Returns:
        The hypercube.
    """
    _check_header(data, "hypercube")

    def decode_array(nested) -> np.ndarray:
        return np.array(
            [[[_decode_float(v) for v in row] for row in plane] for plane in nested]
        )

    return DegradationHypercube(
        fractions=tuple(float(f) for f in data["fractions"]),
        resolutions=tuple(Resolution(int(side)) for side in data["resolutions"]),
        removals=tuple(
            tuple(ObjectClass.from_name(name) for name in combo)
            for combo in data["removals"]
        ),
        bounds=decode_array(data["bounds"]),
        values=decode_array(data["values"]),
        query_label=data.get("query_label", ""),
    )


def _check_header(data: dict[str, Any], kind: str) -> None:
    if data.get("kind") != kind:
        raise ProfileError(
            f"expected a {kind} document, got kind={data.get('kind')!r}"
        )
    if data.get("schema") != SCHEMA_VERSION:
        raise ProfileError(
            f"unsupported schema version {data.get('schema')!r}; "
            f"this build reads version {SCHEMA_VERSION}"
        )


def save_profile(profile: Profile, path: str | Path) -> None:
    """Write a profile to a JSON file.

    Args:
        profile: The profile to persist.
        path: Destination file path.
    """
    Path(path).write_text(json.dumps(profile_to_dict(profile), indent=2))


def load_profile(path: str | Path) -> Profile:
    """Read a profile from a JSON file.

    Args:
        path: Source file path.

    Returns:
        The profile.
    """
    return profile_from_dict(json.loads(Path(path).read_text()))


def save_hypercube(cube: DegradationHypercube, path: str | Path) -> None:
    """Write a hypercube to a JSON file.

    Args:
        cube: The hypercube to persist.
        path: Destination file path.
    """
    Path(path).write_text(json.dumps(hypercube_to_dict(cube), indent=2))


def load_hypercube(path: str | Path) -> DegradationHypercube:
    """Read a hypercube from a JSON file.

    Args:
        path: Source file path.

    Returns:
        The hypercube.
    """
    return hypercube_from_dict(json.loads(Path(path).read_text()))
