"""Smokescreen: controlled intentional degradation for analytical video
systems.

A full reproduction of He & Cafarella, "Controlled Intentional Degradation
in Analytical Video Systems" (SIGMOD 2022). The library produces
*degradation-accuracy profiles*: for a video corpus, an aggregate query
over a vision-model UDF, and destructive interventions (reduced frame
sampling, reduced resolution, image removal), it estimates tight upper
bounds on the analytical error — without access to the non-degraded video —
so an administrator can pick the most aggressive degradation that still
meets an accuracy target.

Quickstart::

    import numpy as np
    from repro import (
        Aggregate, InterventionPlan, PublicPreferences, Smokescreen,
        ua_detrac, yolo_v4_like,
    )

    system = Smokescreen(ua_detrac(frame_count=4000), yolo_v4_like())
    query = system.query(Aggregate.AVG)
    correction = system.build_correction_set(query)
    cube = system.profile(query, system.candidates(fraction_step=0.05),
                          correction=correction)
    sampling_curve, resolution_curve, removal_curve = cube.initial_slices()
    choice = system.choose(sampling_curve, PublicPreferences(max_error=0.10))
    estimate = system.estimate(query, choice.point.plan)

See ``examples/`` for runnable end-to-end scenarios and ``DESIGN.md`` for
the system inventory and paper-experiment index.
"""

from repro.core.candidates import CandidateGrid, default_candidates
from repro.core.correction import CorrectionSet, determine_correction_set
from repro.core.profile import DegradationHypercube, Profile, ProfilePoint
from repro.core.profiler import DegradationProfiler
from repro.core.serialization import (
    load_hypercube,
    load_profile,
    save_hypercube,
    save_profile,
)
from repro.core.similarity import profile_difference
from repro.core.smokescreen import Smokescreen
from repro.core.tradeoff import (
    PublicPreferences,
    TradeoffChoice,
    choose_tradeoff,
    tradeoff_regret,
)
from repro.core.workload import QueryWorkload, WorkloadChoice
from repro.detection import (
    DetectorSuite,
    SimulatedDetector,
    default_suite,
    mask_rcnn_like,
    mtcnn_like,
    yolo_v4_like,
)
from repro.errors import (
    ConfigurationError,
    DatasetError,
    EstimationError,
    InterventionError,
    ProfileError,
    ReproError,
)
from repro.estimators import (
    Estimate,
    ProfileRepair,
    SmokescreenMeanEstimator,
    SmokescreenQuantileEstimator,
    estimate_query,
)
from repro.interventions import (
    Compression,
    FrameSampling,
    ImageRemoval,
    InterventionPlan,
    NoiseAddition,
    ResolutionReduction,
)
from repro.query import (
    Aggregate,
    AggregateQuery,
    FramePredicate,
    QueryProcessor,
    contains_at_least,
)
from repro.video import (
    ObjectClass,
    Resolution,
    VideoDataset,
    build_dataset,
    detrac_sequence_pair,
    night_street,
    ua_detrac,
)

__version__ = "1.0.0"

__all__ = [
    "Aggregate",
    "AggregateQuery",
    "CandidateGrid",
    "Compression",
    "ConfigurationError",
    "CorrectionSet",
    "DatasetError",
    "DegradationHypercube",
    "DegradationProfiler",
    "DetectorSuite",
    "Estimate",
    "EstimationError",
    "FramePredicate",
    "FrameSampling",
    "ImageRemoval",
    "InterventionError",
    "InterventionPlan",
    "NoiseAddition",
    "ObjectClass",
    "Profile",
    "ProfileError",
    "QueryWorkload",
    "ProfilePoint",
    "ProfileRepair",
    "PublicPreferences",
    "QueryProcessor",
    "ReproError",
    "Resolution",
    "ResolutionReduction",
    "SimulatedDetector",
    "Smokescreen",
    "SmokescreenMeanEstimator",
    "SmokescreenQuantileEstimator",
    "TradeoffChoice",
    "VideoDataset",
    "WorkloadChoice",
    "build_dataset",
    "choose_tradeoff",
    "contains_at_least",
    "default_candidates",
    "default_suite",
    "detrac_sequence_pair",
    "determine_correction_set",
    "estimate_query",
    "load_hypercube",
    "load_profile",
    "mask_rcnn_like",
    "mtcnn_like",
    "night_street",
    "profile_difference",
    "save_hypercube",
    "save_profile",
    "tradeoff_regret",
    "ua_detrac",
    "yolo_v4_like",
]
