"""Detector protocol and output container.

The query processor and interventions only rely on this narrow interface, so
a real detector wrapper (calling an actual network) could be dropped in
without touching any estimation code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.video.dataset import VideoDataset
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution


@dataclass(frozen=True)
class DetectorOutputs:
    """Per-frame outputs of one detector run over a whole corpus.

    Attributes:
        counts: Detected-object count per frame.
        resolution: Resolution the frames were processed at.
    """

    counts: np.ndarray
    resolution: Resolution

    @property
    def presence(self) -> np.ndarray:
        """Boolean per-frame flags: at least one detection."""
        return self.counts > 0


@runtime_checkable
class Detector(Protocol):
    """A frame-level object detector for a single target class.

    Implementations must be deterministic: repeated calls with the same
    arguments return identical outputs (real network inference is
    deterministic too; the paper relies on this when it defines the model
    output as ground truth).
    """

    @property
    def name(self) -> str:
        """Model name, e.g. ``"yolo-v4-like"``; part of cache keys."""
        ...

    @property
    def target_class(self) -> ObjectClass:
        """The object class this detector reports."""
        ...

    @property
    def threshold(self) -> float:
        """Detection confidence threshold in ``(0, 1)``."""
        ...

    def run(
        self,
        dataset: VideoDataset,
        resolution: Resolution | None = None,
        quality: float = 1.0,
    ) -> DetectorOutputs:
        """Process every frame of a corpus at the given resolution.

        Args:
            dataset: The corpus to process.
            resolution: Processing resolution; defaults to the dataset's
                native resolution.
            quality: Image-quality multiplier in ``(0, 1]`` applied to
                apparent object sizes; extension interventions (noise,
                compression) degrade it below 1.

        Returns:
            Per-frame outputs for the full corpus.
        """
        ...
