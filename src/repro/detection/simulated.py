"""The deterministic simulated detector.

See :mod:`repro.detection` for the modelling rationale. The implementation
is fully vectorised: one call evaluates every object of the target class in
the corpus with a few numpy operations, and results are cached per
``(dataset, resolution, quality)`` — mirroring the paper's §3.3.2 point that
model outputs can be computed once and reused across the profile sweep.
"""

from __future__ import annotations

import numpy as np

from repro.detection import diskcache
from repro.detection.base import DetectorOutputs
from repro.detection.response import (
    AnomalyTerm,
    FalsePositiveModel,
    ResolutionResponse,
)
from repro.errors import ConfigurationError
from repro.system import telemetry
from repro.video.dataset import VideoDataset
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution


class SimulatedDetector:
    """Deterministic frame-level detector for one object class.

    An object with native size ``s`` processed at resolution ``p`` has
    apparent size ``s * quality * p / native``; the detector's confidence in
    it comes from the :class:`ResolutionResponse` curve, and the object is
    reported iff that confidence reaches :attr:`threshold`. Anomaly terms
    add duplicate detections at specific resolutions; the false-positive
    model adds phantom detections on cluttered frames.
    """

    def __init__(
        self,
        name: str,
        target_class: ObjectClass,
        response: ResolutionResponse,
        threshold: float = 0.7,
        anomalies: tuple[AnomalyTerm, ...] = (),
        false_positives: FalsePositiveModel | None = None,
    ) -> None:
        """Configure the detector.

        Args:
            name: Model name; part of output cache keys.
            target_class: Object class this detector reports.
            response: Confidence curve over apparent object size.
            threshold: Detection confidence threshold (the paper uses 0.7
                for YOLOv4 and Mask R-CNN, 0.8 for MTCNN).
            anomalies: Resolution-specific duplicate-detection artifacts.
            false_positives: Phantom-detection model; defaults to none.
        """
        if not 0.0 < threshold < 1.0:
            raise ConfigurationError(
                f"detection threshold must lie in (0, 1), got {threshold}"
            )
        self._name = name
        self._target_class = target_class
        self._response = response
        self._threshold = threshold
        self._anomalies = anomalies
        self._false_positives = false_positives or FalsePositiveModel(base_rate=0.0)
        self._cache: dict[tuple, np.ndarray] = {}
        #: Full configuration identity for the persistent cache. The zoo
        #: reuses names across configurations (``yolo-v4-like`` detects
        #: both cars and persons in the default suite), so the name alone
        #: would let two different detectors share — and poison — an
        #: entry. Every parameter that changes outputs participates; the
        #: response/anomaly/false-positive models are frozen dataclasses,
        #: so their reprs are stable and parameter-complete.
        self._cache_identity = repr((
            name,
            target_class.name,
            round(threshold, 9),
            self._response,
            self._anomalies,
            self._false_positives,
        ))
        #: Keys whose outputs were loaded from the persistent cache rather
        #: than evaluated in this process; cost accounting treats them as
        #: already paid for (see :meth:`output_was_precomputed`).
        self._disk_hits: set[tuple] = set()

    @property
    def name(self) -> str:
        """Model name."""
        return self._name

    @property
    def target_class(self) -> ObjectClass:
        """Object class this detector reports."""
        return self._target_class

    @property
    def threshold(self) -> float:
        """Detection confidence threshold."""
        return self._threshold

    @property
    def response(self) -> ResolutionResponse:
        """The confidence curve (exposed for calibration and tests)."""
        return self._response

    @property
    def anomalies(self) -> tuple[AnomalyTerm, ...]:
        """Resolution-specific artifact terms (exposed so wrappers such as
        :class:`~repro.detection.scenario.ScenarioDetector` can inherit the
        base model's full configuration)."""
        return self._anomalies

    @property
    def false_positive_model(self) -> FalsePositiveModel:
        """The phantom-detection model (exposed for wrappers and tests)."""
        return self._false_positives

    def clear_cache(self) -> None:
        """Drop all in-memory cached outputs and disk-hit bookkeeping.

        Persistent entries stay on disk; after clearing, the next ``run``
        behaves like a fresh process (a warm-cache load counts as
        precomputed again).
        """
        self._cache.clear()
        self._disk_hits.clear()

    def __getstate__(self) -> dict:
        """Pickle without the volatile output cache.

        Keeps worker-process payloads small; workers repopulate from the
        persistent cache (or recompute) on first use.
        """
        state = dict(self.__dict__)
        state["_cache"] = {}
        state["_disk_hits"] = set()
        return state

    @staticmethod
    def _cache_entry_key(
        dataset: VideoDataset, resolution: Resolution, quality: float
    ) -> tuple:
        return (dataset.cache_key, resolution.side, round(quality, 9))

    def output_was_precomputed(
        self,
        dataset: VideoDataset,
        resolution: Resolution | None = None,
        quality: float = 1.0,
    ) -> bool:
        """Whether this setting's outputs come from the persistent cache.

        Cost accounting (the profiler's :class:`InvocationLedger`) skips
        recording model invocations for settings whose full-corpus outputs
        were already paid for by an earlier run — the warm-cache case. An
        output evaluated locally in this process does *not* count: the
        in-process reuse strategy is priced by the sampled-frame accounting
        the paper describes.

        Args:
            dataset: The corpus.
            resolution: Processing resolution; defaults to native.
            quality: Quality factor.

        Returns:
            True when the outputs were (or will be) served from disk.
        """
        chosen = resolution or dataset.native_resolution
        key = self._cache_entry_key(dataset, chosen, quality)
        if key in self._disk_hits:
            return True
        if key in self._cache:
            return False  # evaluated locally this process
        cache = diskcache.active_cache()
        return cache is not None and cache.contains(self._digest(key))

    def _digest(self, key: tuple) -> str:
        dataset_key, side, quality = key
        return diskcache.DetectorDiskCache.digest(
            self._cache_identity, dataset_key, side, quality
        )

    def run(
        self,
        dataset: VideoDataset,
        resolution: Resolution | None = None,
        quality: float = 1.0,
    ) -> DetectorOutputs:
        """Process every frame of a corpus; see :class:`repro.detection.base.Detector`.

        Args:
            dataset: The corpus to process.
            resolution: Processing resolution; defaults to native. Must not
                exceed the dataset's native resolution (upscaling does not
                add information and the paper's intervention only reduces).
            quality: Image-quality multiplier in ``(0, 1]`` from extension
                interventions (noise/compression).

        Returns:
            Per-frame detected counts for the whole corpus.
        """
        native = dataset.native_resolution
        chosen = resolution or native
        if chosen.side > native.side:
            raise ConfigurationError(
                f"resolution {chosen} exceeds the corpus native resolution {native}"
            )
        if not 0.0 < quality <= 1.0:
            raise ConfigurationError(f"quality must lie in (0, 1], got {quality}")

        key = self._cache_entry_key(dataset, chosen, quality)
        cached = self._cache.get(key)
        if cached is not None:
            # Backfill the persistent cache so outputs computed before it
            # was activated still warm future runs.
            disk = diskcache.active_cache()
            if disk is not None and key not in self._disk_hits:
                digest = self._digest(key)
                if not disk.contains(digest):
                    disk.store(digest, cached)
            return DetectorOutputs(counts=cached, resolution=chosen)

        disk = diskcache.active_cache()
        if disk is not None:
            telemetry.count("detector.consultations")
            loaded = disk.load(self._digest(key))
            if loaded is not None and loaded.size == dataset.frame_count:
                loaded.flags.writeable = False
                self._cache[key] = loaded
                self._disk_hits.add(key)
                return DetectorOutputs(counts=loaded, resolution=chosen)

        telemetry.count("detector.evaluations")
        with telemetry.timer("detector.evaluate_seconds"):
            counts = self._evaluate(dataset, chosen, quality)
        counts.flags.writeable = False
        self._cache[key] = counts
        if disk is not None:
            disk.store(self._digest(key), counts)
        return DetectorOutputs(counts=counts, resolution=chosen)

    def _evaluate(
        self, dataset: VideoDataset, resolution: Resolution, quality: float
    ) -> np.ndarray:
        """Vectorised evaluation of the whole corpus at one setting.

        The evaluation is decomposed into overridable steps so scenario
        wrappers (:mod:`repro.detection.scenario`) can perturb individual
        stages — apparent sizes, per-object visibility, phantom counts,
        final per-frame counts — instead of rescaling outputs uniformly.
        The base implementations are exact no-ops, so the base detector's
        outputs (and cache digests) are untouched by the decomposition.
        """
        arrays = dataset.objects_of(self._target_class)
        native = dataset.native_resolution
        frame_count = dataset.frame_count

        if arrays.count == 0:
            detected_counts = np.zeros(frame_count, dtype=np.int64)
        else:
            apparent = resolution.apparent_size(arrays.size * quality, native)
            scale = self._apparent_size_scale(dataset, arrays)
            if scale is not None:
                apparent = apparent * scale
            confidence = self._response.confidence(apparent, arrays.difficulty)
            detected = confidence >= self._threshold
            visible = self._object_visibility(dataset, arrays, confidence)
            if visible is not None:
                detected = detected & visible
            detected_counts = np.bincount(
                arrays.frame[detected], minlength=frame_count
            )
            for anomaly in self._anomalies:
                duplicated = anomaly.duplicates(
                    detected, arrays.size, arrays.duplicate_latent, resolution.side
                )
                if duplicated.any():
                    detected_counts = detected_counts + np.bincount(
                        arrays.frame[duplicated], minlength=frame_count
                    )

        phantom = self._false_positives.counts(
            dataset.clutter, resolution.side, native.side
        )
        extra = self._extra_phantoms(dataset, resolution)
        if extra is not None:
            phantom = phantom + extra
        counts = (detected_counts + phantom).astype(np.int64)
        return self._transform_counts(counts, dataset, resolution)

    def _apparent_size_scale(
        self, dataset: VideoDataset, arrays
    ) -> np.ndarray | None:
        """Per-object multiplier on apparent sizes; None means no change."""
        return None

    def _object_visibility(
        self, dataset: VideoDataset, arrays, confidence: np.ndarray
    ) -> np.ndarray | None:
        """Per-object visibility mask ANDed into detections; None keeps all."""
        return None

    def _extra_phantoms(
        self, dataset: VideoDataset, resolution: Resolution
    ) -> np.ndarray | None:
        """Additional per-frame phantom counts; None adds nothing."""
        return None

    def _transform_counts(
        self, counts: np.ndarray, dataset: VideoDataset, resolution: Resolution
    ) -> np.ndarray:
        """Final per-frame count transform (e.g. targeted corruption)."""
        return counts

    def __repr__(self) -> str:
        return (
            f"SimulatedDetector(name={self._name!r}, "
            f"class={self._target_class.name}, threshold={self._threshold})"
        )
