"""Sequence-dependent models: where frame sampling stops being random.

The paper's conclusion (§7) flags a limit of its taxonomy: for models that
process *frame sequences* (action recognition, tracking), reducing the
sampling rate changes the model's inputs, so treating frame sampling as a
random intervention "seems inappropriate" — neither the random-intervention
bounds nor profile repair directly apply.

:class:`TemporalDifferenceDetector` makes that concrete with the simplest
sequence model: a traffic *flow* UDF whose per-frame output is the number
of newly appeared cars relative to the previous processed frame,
``max(0, count_t - count_{t-1})``. On consecutive frames this approximates
arrivals; on a sparse sample the "previous processed frame" is far away,
the differences grow, and the output distribution shifts — frame sampling
has become a non-random intervention.

Detectors advertise this through :attr:`requires_sequence`; the profiler
refuses to classify sampling as random for such models (see
:meth:`repro.core.profiler.DegradationProfiler`), and the
``extension_temporal`` experiment quantifies how badly the naive treatment
fails.
"""

from __future__ import annotations

import numpy as np

from repro.detection.base import Detector, DetectorOutputs
from repro.errors import ConfigurationError
from repro.video.dataset import VideoDataset
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution


class TemporalDifferenceDetector:
    """A frame-sequence UDF: newly appeared objects per processed frame.

    Wraps a frame-level detector and differences its counts along the
    *processed* frame order. The critical property: the output for frame
    ``t`` depends on which frame was processed before ``t``, so outputs are
    a function of the whole sampling pattern, not of the frame alone.
    """

    #: Sequence models invalidate the random classification of sampling.
    requires_sequence = True

    def __init__(self, base: Detector, name: str | None = None) -> None:
        """Wrap a frame-level detector.

        Args:
            base: The underlying per-frame detector.
            name: Model name; defaults to ``"flow(<base>)"``.
        """
        self._base = base
        self._name = name or f"flow({base.name})"

    @property
    def name(self) -> str:
        """Model name."""
        return self._name

    @property
    def target_class(self) -> ObjectClass:
        """The wrapped detector's class."""
        return self._base.target_class

    @property
    def threshold(self) -> float:
        """The wrapped detector's threshold."""
        return self._base.threshold

    def run(
        self,
        dataset: VideoDataset,
        resolution: Resolution | None = None,
        quality: float = 1.0,
    ) -> DetectorOutputs:
        """Flow over *consecutive* frames (the full-sequence ground truth).

        Args:
            dataset: The corpus.
            resolution: Processing resolution.
            quality: Quality factor.

        Returns:
            Per-frame newly-appeared counts; frame 0 flows from nothing.
        """
        base = self._base.run(dataset, resolution, quality)
        return DetectorOutputs(
            counts=self.flow_for_order(
                base.counts, np.arange(dataset.frame_count)
            ),
            resolution=base.resolution,
        )

    def run_on_sample(
        self,
        dataset: VideoDataset,
        frame_indices: np.ndarray,
        resolution: Resolution | None = None,
        quality: float = 1.0,
    ) -> np.ndarray:
        """Flow along a *sampled* frame order — the degraded execution.

        This is where the §7 problem lives: the same frame yields a
        different output depending on its sampled predecessor.

        Args:
            dataset: The corpus.
            frame_indices: The processed frames (any order; processed in
                temporal order, as a streaming system would).
            resolution: Processing resolution.
            quality: Quality factor.

        Returns:
            One flow value per sampled frame, in temporal order.
        """
        if frame_indices.size == 0:
            raise ConfigurationError("cannot run a sequence model on no frames")
        ordered = np.sort(np.asarray(frame_indices))
        base = self._base.run(dataset, resolution, quality)
        return self.flow_for_order(base.counts, ordered)

    @staticmethod
    def flow_for_order(counts: np.ndarray, ordered_indices: np.ndarray) -> np.ndarray:
        """Newly-appeared counts along an ordered frame sequence.

        Args:
            counts: Per-frame base counts for the whole corpus.
            ordered_indices: Frames in processing (temporal) order.

        Returns:
            ``max(0, counts[i_k] - counts[i_{k-1}])`` per position, with
            the first frame flowing from an empty scene.
        """
        sequence = counts[ordered_indices].astype(np.int64)
        previous = np.concatenate(([0], sequence[:-1]))
        return np.maximum(sequence - previous, 0)


class MotionEventDetector(TemporalDifferenceDetector):
    """A sequence UDF with *bounded* output: did the scene change?

    Per processed frame, emits 1 when the base count moved by at least
    :attr:`threshold_change` relative to the previously processed frame.
    On consecutive frames of smooth traffic, changes are rare; across
    sampling gaps, counts decorrelate and almost every pair "changes" — so
    the output mean inflates dramatically while its range stays [0, 1],
    making the naive random-intervention bound *tight and wrong* at once.
    This is the sharpest instance of the paper's §7 caveat.
    """

    def __init__(
        self, base: Detector, threshold_change: int = 2, name: str | None = None
    ) -> None:
        """Wrap a frame-level detector.

        Args:
            base: The underlying per-frame detector.
            threshold_change: Minimum absolute count change that counts as
                a motion event.
            name: Model name; defaults to ``"motion(<base>)"``.
        """
        if threshold_change <= 0:
            raise ConfigurationError(
                f"threshold change must be positive, got {threshold_change}"
            )
        super().__init__(base, name or f"motion({base.name})")
        self._threshold_change = threshold_change

    def flow_for_order(  # type: ignore[override]
        self, counts: np.ndarray, ordered_indices: np.ndarray
    ) -> np.ndarray:
        """Motion indicators along an ordered frame sequence.

        Args:
            counts: Per-frame base counts for the whole corpus.
            ordered_indices: Frames in processing (temporal) order.

        Returns:
            0/1 per position; the first frame never counts as motion.
        """
        sequence = counts[ordered_indices].astype(np.int64)
        previous = np.concatenate((sequence[:1], sequence[:-1]))
        return (np.abs(sequence - previous) >= self._threshold_change).astype(
            np.int64
        )
