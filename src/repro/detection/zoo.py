"""Built-in detector presets mirroring the paper's models (§4, §5.1).

The paper uses YOLOv4 (Darknet) and Mask R-CNN (Keras/TensorFlow) as the
built-in detection UDFs with threshold 0.7, plus MTCNN with threshold 0.8
for faces. The presets here are simulated equivalents with response curves
calibrated so that:

- at native resolution essentially every annotated object is detected (the
  paper's ground-truth definition),
- recall falls along a sigmoid as resolution shrinks, with the YOLOv4-like
  model degrading somewhat more gracefully than the Mask R-CNN-like one
  (matching the different curve shapes in Figure 3), and
- the YOLOv4-like model has the documented 384x384 duplicate-detection
  anomaly (Figures 7 and 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.base import Detector
from repro.detection.response import (
    AnomalyTerm,
    FalsePositiveModel,
    ResolutionResponse,
)
from repro.detection.simulated import SimulatedDetector
from repro.errors import ConfigurationError
from repro.video.dataset import VideoDataset
from repro.video.frame import ObjectClass

YOLO_ANOMALY_SIDE = 384


def yolo_v4_like(
    target_class: ObjectClass = ObjectClass.CAR,
    threshold: float = 0.7,
    with_anomaly: bool = True,
) -> SimulatedDetector:
    """A YOLOv4-like detector (paper threshold 0.7).

    Args:
        target_class: Class to detect; the paper runs YOLOv4 for both cars
            (the query UDF on UA-DETRAC) and persons (restricted-class
            detection).
        threshold: Detection confidence threshold.
        with_anomaly: Include the 384x384 duplicate-detection artifact;
            disable for ablations.

    Returns:
        The configured simulated detector.
    """
    anomalies = (
        (
            AnomalyTerm(
                resolution_side=YOLO_ANOMALY_SIDE,
                duplicate_probability=0.8,
                band_low=20.0,
                band_high=240.0,
            ),
        )
        if with_anomaly
        else ()
    )
    return SimulatedDetector(
        name="yolo-v4-like" + ("" if with_anomaly else "-no-anomaly"),
        target_class=target_class,
        response=ResolutionResponse(
            midpoint_size=13.0, slope=0.22, confidence_spread=0.25
        ),
        threshold=threshold,
        anomalies=anomalies,
        false_positives=FalsePositiveModel(base_rate=0.006, gain=2.0),
    )


def mask_rcnn_like(
    target_class: ObjectClass = ObjectClass.CAR, threshold: float = 0.7
) -> SimulatedDetector:
    """A Mask R-CNN-like detector (paper threshold 0.7).

    Two-stage detectors hold on to large objects longer but fall off more
    sharply for small ones, so the response sigmoid is steeper with a larger
    midpoint than the YOLOv4-like preset.

    Args:
        target_class: Class to detect.
        threshold: Detection confidence threshold.

    Returns:
        The configured simulated detector.
    """
    return SimulatedDetector(
        name="mask-rcnn-like",
        target_class=target_class,
        response=ResolutionResponse(
            midpoint_size=16.0, slope=0.30, confidence_spread=0.20
        ),
        threshold=threshold,
        false_positives=FalsePositiveModel(base_rate=0.004, gain=1.5),
    )


def mtcnn_like(threshold: float = 0.8) -> SimulatedDetector:
    """An MTCNN-like face detector (paper threshold 0.8).

    Faces are tiny, so the curve midpoint is small and steep: faces are
    found reliably at native resolution but disappear almost immediately
    under resolution reduction — the behaviour that makes face blurring via
    downscaling effective.

    Args:
        threshold: Detection confidence threshold.

    Returns:
        The configured simulated detector.
    """
    return SimulatedDetector(
        name="mtcnn-like",
        target_class=ObjectClass.FACE,
        response=ResolutionResponse(
            midpoint_size=6.0, slope=0.60, confidence_spread=0.15
        ),
        threshold=threshold,
    )


@dataclass(frozen=True)
class DetectorSuite:
    """The detectors a deployment uses for restricted-class flags.

    The paper stores per-frame "contains person"/"contains face" flags as
    prior information, computed by YOLOv4 (persons) and MTCNN (faces) at
    native resolution. The image-removal intervention consults this suite.

    Attributes:
        person_detector: Detector used for the ``person`` restricted class.
        face_detector: Detector used for the ``face`` restricted class.
    """

    person_detector: Detector
    face_detector: Detector

    def detector_for(self, object_class: ObjectClass) -> Detector:
        """The suite's detector for a restricted class.

        Args:
            object_class: PERSON or FACE.

        Returns:
            The matching detector.
        """
        if object_class == ObjectClass.PERSON:
            return self.person_detector
        if object_class == ObjectClass.FACE:
            return self.face_detector
        raise ConfigurationError(
            f"no restricted-class detector for {object_class.name}; "
            "only PERSON and FACE can be restricted"
        )

    def presence(self, dataset: VideoDataset, object_class: ObjectClass) -> np.ndarray:
        """Per-frame presence flags for a restricted class at native resolution.

        Args:
            dataset: The corpus.
            object_class: PERSON or FACE.

        Returns:
            Boolean array of length ``dataset.frame_count``.
        """
        detector = self.detector_for(object_class)
        return detector.run(dataset).presence


def default_suite() -> DetectorSuite:
    """The paper's restricted-class setup: YOLOv4 persons + MTCNN faces."""
    return DetectorSuite(
        person_detector=yolo_v4_like(target_class=ObjectClass.PERSON),
        face_detector=mtcnn_like(),
    )
