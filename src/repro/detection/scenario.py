"""Detector-response models for hostile and physical-world scenarios.

The paper's interventions degrade video *by design* — the detector response
to sampling, resolution, and removal is what the profile measures. Real
deployments also face degradations nobody chose: adversarially corrupted
frames ("Attacking Automatic Video Analysis Algorithms"), occlusion, camera
misalignment, weather and exposure shifts ("Towards Causal Physical Error
Discovery in Video Analytics Systems"). These do not act like a uniform
quality multiplier, so each scenario here perturbs the specific stage of
detection it corresponds to:

* occlusion / misalignment remove or shrink *specific objects* (selected by
  position in the frame),
* weather and exposure shift scale apparent sizes non-uniformly (hard
  objects suffer more) and introduce extra phantoms,
* adversarial compression pushes borderline-confidence objects just under
  the detection threshold,
* targeted frame corruption zeroes the highest-value frames outright.

Spatial position is not stored explicitly in :class:`ObjectArrays`, so the
scenarios reuse the per-object ``duplicate_latent`` — a fixed uniform
``[0, 1)`` draw — as a normalized horizontal position coordinate. It is
deterministic per object, independent of size and difficulty, and unused
except at anomaly resolutions, which makes it a faithful stand-in for "where
in the frame the object happens to sit".

A :class:`ScenarioDetector` wraps a base :class:`SimulatedDetector` and
routes the scenario's perturbations through the evaluation hooks the base
class exposes. A scenario at zero severity is an exact identity: the wrapped
detector's outputs match the base detector bit for bit (the differential
tests in ``tests/detection/test_scenario.py`` pin this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.detection.simulated import SimulatedDetector
from repro.errors import ConfigurationError
from repro.video.dataset import ObjectArrays, VideoDataset
from repro.video.geometry import Resolution


class ScenarioResponse:
    """Base class for scenario perturbations of detector evaluation.

    Subclasses override the hooks relevant to their failure mode; the
    defaults are exact no-ops. All concrete scenarios are frozen
    dataclasses, so their ``repr`` is parameter-complete and participates
    in the detector's persistent-cache identity.
    """

    @property
    def tag(self) -> str:
        """Short identity string, part of the wrapped detector's name."""
        raise NotImplementedError

    def size_scale(
        self, dataset: VideoDataset, arrays: ObjectArrays
    ) -> np.ndarray | None:
        """Per-object multiplier on apparent sizes; None means unchanged."""
        return None

    def visibility(
        self,
        dataset: VideoDataset,
        arrays: ObjectArrays,
        confidence: np.ndarray,
        threshold: float,
    ) -> np.ndarray | None:
        """Per-object visibility mask; None keeps every object visible."""
        return None

    def extra_phantoms(
        self, dataset: VideoDataset, resolution: Resolution
    ) -> np.ndarray | None:
        """Additional per-frame phantom counts; None adds nothing."""
        return None

    def transform_counts(
        self, counts: np.ndarray, dataset: VideoDataset
    ) -> np.ndarray:
        """Final transform on per-frame counts; identity by default."""
        return counts


@dataclass(frozen=True)
class OcclusionResponse(ScenarioResponse):
    """A static obstruction covering part of the field of view.

    Objects whose position latent falls inside the covered band are never
    detected, whatever their size — the physical-error analogue of a
    spider web, a parked truck, or foliage growing over the lens.

    Attributes:
        coverage: Fraction of the field of view obstructed, in ``[0, 1]``.
    """

    coverage: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.coverage <= 1.0:
            raise ConfigurationError(
                f"occlusion coverage must lie in [0, 1], got {self.coverage}"
            )

    @property
    def tag(self) -> str:
        return f"occlusion-{self.coverage:g}"

    def visibility(
        self,
        dataset: VideoDataset,
        arrays: ObjectArrays,
        confidence: np.ndarray,
        threshold: float,
    ) -> np.ndarray | None:
        if self.coverage == 0.0:
            return None
        return arrays.duplicate_latent >= self.coverage


@dataclass(frozen=True)
class MisalignmentResponse(ScenarioResponse):
    """The camera drifted, cropping one edge of the scene.

    Objects beyond the new edge leave the frame entirely; objects inside a
    boundary band are partially cropped, which halves their apparent size
    (and so can push them under the detection threshold).

    Attributes:
        shift: Fraction of the field of view lost to the drift, ``[0, 1]``.
        edge_band: Width of the partially-cropped band next to the new
            edge, as a fraction of the field of view.
    """

    shift: float
    edge_band: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.shift <= 1.0:
            raise ConfigurationError(
                f"misalignment shift must lie in [0, 1], got {self.shift}"
            )
        if not 0.0 <= self.edge_band <= 1.0:
            raise ConfigurationError(
                f"edge band must lie in [0, 1], got {self.edge_band}"
            )

    @property
    def tag(self) -> str:
        return f"misalignment-{self.shift:g}"

    def size_scale(
        self, dataset: VideoDataset, arrays: ObjectArrays
    ) -> np.ndarray | None:
        if self.shift == 0.0 or self.edge_band == 0.0:
            return None
        position = arrays.duplicate_latent
        edge = 1.0 - self.shift
        cropped = (position >= edge - self.edge_band) & (position < edge)
        if not cropped.any():
            return None
        scale = np.ones(arrays.count, dtype=float)
        scale[cropped] = 0.5
        return scale

    def visibility(
        self,
        dataset: VideoDataset,
        arrays: ObjectArrays,
        confidence: np.ndarray,
        threshold: float,
    ) -> np.ndarray | None:
        if self.shift == 0.0:
            return None
        return arrays.duplicate_latent < 1.0 - self.shift


@dataclass(frozen=True)
class WeatherExposureResponse(ScenarioResponse):
    """Rain, fog, or an exposure shift degrading the whole scene.

    Apparent sizes shrink non-uniformly — already-hard objects lose the
    most contrast — and droplets/flare occasionally read as phantom
    detections on otherwise calm frames. The phantom trigger region
    (``clutter`` *above* ``1 - severity * phantom_rate``) is disjoint from
    the base :class:`FalsePositiveModel` trigger (``clutter`` *below* its
    rate), so weather phantoms add to rather than shadow the base model's.

    Attributes:
        severity: Degradation strength in ``[0, 1]``.
        phantom_rate: Per-frame phantom probability at full severity.
    """

    severity: float
    phantom_rate: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.severity <= 1.0:
            raise ConfigurationError(
                f"weather severity must lie in [0, 1], got {self.severity}"
            )
        if not 0.0 <= self.phantom_rate <= 1.0:
            raise ConfigurationError(
                f"phantom rate must lie in [0, 1], got {self.phantom_rate}"
            )

    @property
    def tag(self) -> str:
        return f"weather-{self.severity:g}"

    def size_scale(
        self, dataset: VideoDataset, arrays: ObjectArrays
    ) -> np.ndarray | None:
        if self.severity == 0.0:
            return None
        return 1.0 - self.severity * (0.4 + 0.6 * arrays.difficulty)

    def extra_phantoms(
        self, dataset: VideoDataset, resolution: Resolution
    ) -> np.ndarray | None:
        if self.severity == 0.0 or self.phantom_rate == 0.0:
            return None
        cutoff = 1.0 - self.severity * self.phantom_rate
        return (dataset.clutter >= cutoff).astype(np.int64)


@dataclass(frozen=True)
class TargetedCorruptionResponse(ScenarioResponse):
    """Adversarial corruption concentrated on the highest-value frames.

    An attacker with a per-frame perturbation budget spends it where it
    hurts the analytics most: the frames with the largest detected counts
    are zeroed outright. Ties break by frame index (stable sort), so the
    attack is deterministic.

    Attributes:
        budget: Fraction of frames the attacker can corrupt, ``[0, 1]``.
    """

    budget: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.budget <= 1.0:
            raise ConfigurationError(
                f"corruption budget must lie in [0, 1], got {self.budget}"
            )

    @property
    def tag(self) -> str:
        return f"targeted-corruption-{self.budget:g}"

    def transform_counts(
        self, counts: np.ndarray, dataset: VideoDataset
    ) -> np.ndarray:
        if self.budget == 0.0:
            return counts
        corrupted = math.ceil(self.budget * counts.size)
        if corrupted == 0:
            return counts
        order = np.argsort(-counts, kind="stable")
        attacked = counts.copy()
        attacked[order[:corrupted]] = 0
        return attacked


@dataclass(frozen=True)
class CompressionAttackResponse(ScenarioResponse):
    """Adversarial compression tuned to the detector's threshold.

    The attack re-encodes frames so that objects the detector was *barely*
    confident about — confidence in ``[threshold, threshold + margin)`` —
    fall just under the threshold, while comfortable detections survive.
    This is the quality-space analogue of the few-pixel attacks in
    "Attacking Automatic Video Analysis Algorithms": a small, targeted
    perturbation with an outsized effect on counts.

    Attributes:
        margin: Confidence margin above the threshold that the attack can
            erase, in ``[0, 1]``.
    """

    margin: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.margin <= 1.0:
            raise ConfigurationError(
                f"compression-attack margin must lie in [0, 1], got {self.margin}"
            )

    @property
    def tag(self) -> str:
        return f"compression-attack-{self.margin:g}"

    def visibility(
        self,
        dataset: VideoDataset,
        arrays: ObjectArrays,
        confidence: np.ndarray,
        threshold: float,
    ) -> np.ndarray | None:
        if self.margin == 0.0:
            return None
        return ~(
            (confidence >= threshold) & (confidence < threshold + self.margin)
        )


class ScenarioDetector(SimulatedDetector):
    """A base detector perturbed by one :class:`ScenarioResponse`.

    The wrapper inherits the base detector's full configuration (response
    curve, threshold, anomaly terms, false-positive model) and overrides
    the evaluation hooks to route through the scenario. Its persistent
    cache identity extends the base identity with the scenario's repr, so
    scenario outputs never collide with clean outputs on disk.
    """

    def __init__(self, base: SimulatedDetector, scenario: ScenarioResponse) -> None:
        """Wrap a detector with a scenario.

        Args:
            base: The clean detector being degraded.
            scenario: The perturbation to apply.
        """
        super().__init__(
            name=f"{base.name}+{scenario.tag}",
            target_class=base.target_class,
            response=base.response,
            threshold=base.threshold,
            anomalies=base.anomalies,
            false_positives=base.false_positive_model,
        )
        self._scenario = scenario
        self._cache_identity = repr((self._cache_identity, scenario))

    @property
    def scenario(self) -> ScenarioResponse:
        """The perturbation applied on top of the base detector."""
        return self._scenario

    def _apparent_size_scale(
        self, dataset: VideoDataset, arrays: ObjectArrays
    ) -> np.ndarray | None:
        return self._scenario.size_scale(dataset, arrays)

    def _object_visibility(
        self, dataset: VideoDataset, arrays: ObjectArrays, confidence: np.ndarray
    ) -> np.ndarray | None:
        return self._scenario.visibility(
            dataset, arrays, confidence, self._threshold
        )

    def _extra_phantoms(
        self, dataset: VideoDataset, resolution: Resolution
    ) -> np.ndarray | None:
        return self._scenario.extra_phantoms(dataset, resolution)

    def _transform_counts(
        self, counts: np.ndarray, dataset: VideoDataset, resolution: Resolution
    ) -> np.ndarray:
        return self._scenario.transform_counts(counts, dataset)

    def __repr__(self) -> str:
        return (
            f"ScenarioDetector(name={self._name!r}, "
            f"scenario={self._scenario!r})"
        )
