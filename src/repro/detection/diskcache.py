"""Persistent, content-addressed detector-output cache.

The paper's reuse strategy (§3.3.2) computes model outputs once and reuses
them across the profile sweep. The in-memory cache of
:class:`~repro.detection.simulated.SimulatedDetector` implements that reuse
*within* one process; this module extends it *across* processes and runs —
the lever BlazeIt/Boggart-style systems pull to amortise model cost over
many queries — so worker processes of the parallel executor and repeated
CLI/benchmark invocations share full-corpus outputs instead of re-paying
detection.

Design:

- **Key**: BLAKE2 digest of (dataset content fingerprint, dataset name and
  length, model configuration identity, resolution side, quality). The
  dataset fingerprint hashes every ground-truth array (including duplicate
  latents), and the model identity covers the detector's class and tuning
  (names are reused across configurations in the zoo), so two runs that
  could produce different outputs can never share an entry.
- **Payload**: one ``.npz`` file per entry holding the per-frame counts.
- **Atomicity**: writes go to a process-unique temporary file in the cache
  directory and are published with :func:`os.replace`, so readers never
  observe a partial entry and concurrent writers of the same key are
  last-writer-wins with identical content.
- **Eviction**: least-recently-used by file mtime under an optional byte
  budget; reads touch the entry so hot outputs survive.

A process-global *active* cache can be installed with :func:`activate`;
detectors consult it automatically (see ``SimulatedDetector.run``), and the
parallel executor re-activates it inside worker processes.
"""

from __future__ import annotations

import hashlib
import logging
import os
import tempfile
import zipfile
import zlib
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.system import telemetry

_PAYLOAD_FIELD = "counts"

_LOG = telemetry.get_logger("detection.diskcache")

#: Failures of ``np.load`` that mean the entry bytes are damaged rather
#: than absent: a truncated/garbage ``.npz`` raises ``zipfile.BadZipFile``
#: (not an OSError), a bad deflate stream raises ``zlib.error``, and the
#: remaining types cover header/pickle/field damage inside a readable file.
_CORRUPT_ERRORS = (
    zipfile.BadZipFile,
    zlib.error,
    ValueError,
    KeyError,
    EOFError,
    OSError,
)


class DetectorDiskCache:
    """An on-disk store of full-corpus detector outputs.

    Args:
        root: Directory holding the ``.npz`` entries; created if missing.
        byte_limit: Optional total-size budget; least-recently-used
            entries are evicted after each store to stay under it.
    """

    def __init__(self, root: str | Path, byte_limit: int | None = None) -> None:
        if byte_limit is not None and byte_limit <= 0:
            raise ConfigurationError(
                f"cache byte limit must be positive, got {byte_limit}"
            )
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._byte_limit = byte_limit

    @property
    def root(self) -> Path:
        """The cache directory."""
        return self._root

    @property
    def byte_limit(self) -> int | None:
        """The LRU byte budget (None = unbounded)."""
        return self._byte_limit

    @staticmethod
    def digest(
        model_identity: str,
        dataset_key: tuple,
        resolution_side: int,
        quality: float,
    ) -> str:
        """The content-addressed key of one (model, corpus, setting) entry.

        Args:
            model_identity: A string identifying the detector's *full*
                configuration, not just its name — the zoo reuses names
                across target classes (``yolo-v4-like`` detects both cars
                and persons), and two detectors that can disagree on any
                corpus must never share an entry.
            dataset_key: The dataset's :attr:`~repro.video.dataset.VideoDataset.cache_key`
                (name, frame count, content fingerprint).
            resolution_side: Processing resolution side length.
            quality: Quality factor (callers should pre-round as the
                in-memory cache does).

        Returns:
            A hex digest naming the cache entry.
        """
        hasher = hashlib.blake2b(digest_size=16)
        hasher.update(
            repr((model_identity, dataset_key, resolution_side, quality)).encode()
        )
        return hasher.hexdigest()

    def _path(self, digest: str) -> Path:
        return self._root / f"{digest}.npz"

    def contains(self, digest: str) -> bool:
        """Whether an entry is currently present on disk."""
        return self._path(digest).exists()

    def load(self, digest: str) -> np.ndarray | None:
        """Read one entry, refreshing its LRU recency.

        Args:
            digest: The entry key from :meth:`digest`.

        Returns:
            The stored counts array, or None when absent or unreadable
            (corrupt/evicted entries behave like misses).
        """
        path = self._path(digest)
        try:
            with np.load(path) as payload:
                counts = np.ascontiguousarray(payload[_PAYLOAD_FIELD])
        except FileNotFoundError:
            telemetry.count("cache.miss")
            return None
        except _CORRUPT_ERRORS as error:
            self._discard_corrupt(path, error)
            return None
        try:
            os.utime(path)
        except OSError:
            pass  # entry may have been evicted between read and touch
        telemetry.count("cache.hit")
        return counts

    def _discard_corrupt(self, path: Path, error: Exception) -> None:
        """Delete a poisoned entry so it cannot fail every future load."""
        telemetry.count("cache.corrupt")
        telemetry.count("cache.miss")
        telemetry.log_event(
            _LOG,
            logging.WARNING,
            "cache.corrupt",
            path=str(path),
            error=f"{type(error).__name__}: {error}",
        )
        try:
            path.unlink()
        except OSError:
            pass  # already evicted (or unwritable); the miss stands

    def store(self, digest: str, counts: np.ndarray) -> None:
        """Write one entry atomically and enforce the byte budget.

        Args:
            digest: The entry key from :meth:`digest`.
            counts: The per-frame outputs to persist.
        """
        path = self._path(digest)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{digest}.", suffix=".tmp", dir=self._root
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(handle, **{_PAYLOAD_FIELD: counts})
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        telemetry.count("cache.store")
        try:
            telemetry.count("cache.stored_bytes", path.stat().st_size)
        except OSError:
            pass  # concurrent eviction; the store still happened
        self._evict_to_budget(protect=digest)

    def entries(self) -> list[Path]:
        """All current entry files (excluding in-flight temporaries)."""
        return [p for p in self._root.glob("*.npz") if p.is_file()]

    def total_bytes(self) -> int:
        """Current total size of all entries."""
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def _evict_to_budget(self, protect: str | None = None) -> None:
        """Evict least-recently-used entries until under the byte budget.

        Args:
            protect: Digest exempt from this pass — the entry ``store``
                just wrote. Without the exemption, a single entry larger
                than the budget (or one tying the oldest mtime, where the
                sort falls through to size/path) could evict *itself*,
                silently turning every subsequent load into a miss.
        """
        if self._byte_limit is None:
            return
        protected = self._path(protect) if protect is not None else None
        stats = []
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            stats.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _, size, _ in stats)
        if total <= self._byte_limit:
            return
        for _, size, path in sorted(stats):  # oldest first
            if protected is not None and path == protected:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            telemetry.count("cache.evicted_bytes", size)
            telemetry.count("cache.evicted")
            total -= size
            if total <= self._byte_limit:
                return

    def clear(self) -> int:
        """Delete every entry.

        Returns:
            Number of entries removed.
        """
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def __repr__(self) -> str:
        limit = "unbounded" if self._byte_limit is None else f"{self._byte_limit}B"
        return f"DetectorDiskCache(root={str(self._root)!r}, limit={limit})"


_active_cache: DetectorDiskCache | None = None


def activate(root: str | Path, byte_limit: int | None = None) -> DetectorDiskCache:
    """Install the process-global cache all detectors consult.

    Args:
        root: Cache directory.
        byte_limit: Optional LRU byte budget.

    Returns:
        The activated cache.
    """
    global _active_cache
    _active_cache = DetectorDiskCache(root, byte_limit)
    return _active_cache


def deactivate() -> None:
    """Remove the process-global cache (detectors fall back to memory only)."""
    global _active_cache
    _active_cache = None


def active_cache() -> DetectorDiskCache | None:
    """The currently installed process-global cache, if any."""
    return _active_cache
