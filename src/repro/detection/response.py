"""Resolution-response curves: how detector confidence reacts to degradation.

Empirically, detector recall versus object pixel size follows a sharp
sigmoid: objects comfortably above a model-specific size are detected with
high confidence, objects below it are missed (Koziarski & Cyganek 2018, the
paper's [37]). Reducing the frame resolution shrinks every object's apparent
size, sliding the population down the sigmoid — which is exactly the
mechanism behind the paper's resolution tradeoff curves (Figure 3).

Real networks also have *non-monotonic* artifacts: the paper's Figure 7
shows YOLOv4 on night-street being much worse at 384x384 than at lower
resolutions (the predicted count distribution shifts away from the truth,
Figure 8). :class:`AnomalyTerm` reproduces this with deterministic duplicate
detections active only at the anomaly resolution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ResolutionResponse:
    """Logistic confidence curve over apparent object size.

    The confidence a detector assigns to an object of apparent size ``s``
    (pixels at the processed resolution) is
    ``sigmoid(slope * (s - midpoint_size))``, further scaled per object by
    ``1 - confidence_spread * difficulty`` so that objects differ in how
    easily they clear the detection threshold.

    Attributes:
        midpoint_size: Apparent size in pixels at which base confidence
            is 0.5.
        slope: Steepness of the sigmoid (per pixel).
        confidence_spread: Fraction of confidence lost by the hardest
            objects (difficulty close to 1); in ``[0, 1)``.
    """

    midpoint_size: float
    slope: float
    confidence_spread: float = 0.2

    def __post_init__(self) -> None:
        if self.midpoint_size <= 0:
            raise ConfigurationError(
                f"midpoint size must be positive, got {self.midpoint_size}"
            )
        if self.slope <= 0:
            raise ConfigurationError(f"slope must be positive, got {self.slope}")
        if not 0.0 <= self.confidence_spread < 1.0:
            raise ConfigurationError(
                f"confidence spread must lie in [0, 1), got {self.confidence_spread}"
            )

    def base_confidence(self, apparent_size: np.ndarray) -> np.ndarray:
        """Confidence of a perfectly easy object at the given apparent sizes.

        Args:
            apparent_size: Object sizes in pixels at the processed resolution.

        Returns:
            Values in ``(0, 1)``, monotone in size.
        """
        sizes = np.asarray(apparent_size, dtype=float)
        return 1.0 / (1.0 + np.exp(-self.slope * (sizes - self.midpoint_size)))

    def confidence(
        self, apparent_size: np.ndarray, difficulty: np.ndarray
    ) -> np.ndarray:
        """Per-object confidence given apparent sizes and latent difficulty.

        Args:
            apparent_size: Object sizes at the processed resolution.
            difficulty: Latent difficulties in ``[0, 1)``.

        Returns:
            Per-object confidences; monotone in apparent size for any fixed
            difficulty, which makes detection monotone in resolution.
        """
        return (1.0 - self.confidence_spread * np.asarray(difficulty)) * (
            self.base_confidence(apparent_size)
        )


@dataclass(frozen=True)
class AnomalyTerm:
    """Deterministic duplicate detections at one specific resolution.

    Models grid-aliasing artifacts such as YOLOv4's 384x384 failure: at
    exactly :attr:`resolution_side`, each *detected* object whose native
    size falls in ``[band_low, band_high)`` yields a second (duplicate)
    detection when its fixed ``duplicate_latent`` is below
    :attr:`duplicate_probability`.

    Attributes:
        resolution_side: Side length of the anomalous resolution.
        duplicate_probability: Fraction of in-band detected objects that
            get duplicated.
        band_low: Lower native-size bound of the affected objects (pixels).
        band_high: Upper native-size bound (exclusive).
    """

    resolution_side: int
    duplicate_probability: float
    band_low: float = 0.0
    band_high: float = float("inf")

    def __post_init__(self) -> None:
        if self.resolution_side <= 0:
            raise ConfigurationError(
                f"anomaly resolution must be positive, got {self.resolution_side}"
            )
        if not 0.0 <= self.duplicate_probability <= 1.0:
            raise ConfigurationError(
                "duplicate probability must lie in [0, 1], got "
                f"{self.duplicate_probability}"
            )
        if self.band_low > self.band_high:
            raise ConfigurationError(
                f"band [{self.band_low}, {self.band_high}) is empty"
            )

    def duplicates(
        self,
        detected: np.ndarray,
        native_size: np.ndarray,
        duplicate_latent: np.ndarray,
        resolution_side: int,
    ) -> np.ndarray:
        """Boolean mask of objects that produce a duplicate detection.

        Args:
            detected: Per-object detection mask at the current resolution.
            native_size: Object sizes at the native resolution.
            duplicate_latent: Fixed per-object latents in ``[0, 1)``.
            resolution_side: Side of the resolution being processed.

        Returns:
            Mask, all-False unless processing at the anomaly resolution.
        """
        if resolution_side != self.resolution_side:
            return np.zeros_like(detected, dtype=bool)
        in_band = (native_size >= self.band_low) & (native_size < self.band_high)
        return detected & in_band & (duplicate_latent < self.duplicate_probability)


@dataclass(frozen=True)
class FalsePositiveModel:
    """Deterministic frame-level false positives.

    Blur and block artifacts at degraded resolutions occasionally produce a
    phantom detection. The per-frame rate grows linearly as the resolution
    shrinks: ``rate(p) = base_rate * (1 + gain * (1 - p / native))``. A frame
    fires a false positive when its fixed clutter latent is below the rate,
    so outputs stay deterministic.

    Attributes:
        base_rate: False-positive probability per frame at native resolution.
        gain: Linear growth of the rate as resolution shrinks to zero.
    """

    base_rate: float = 0.0
    gain: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.base_rate <= 1.0:
            raise ConfigurationError(
                f"base false-positive rate must lie in [0, 1], got {self.base_rate}"
            )
        if self.gain < 0.0:
            raise ConfigurationError(f"gain must be non-negative, got {self.gain}")

    def rate(self, resolution_side: int, native_side: int) -> float:
        """Per-frame false-positive probability at a resolution."""
        if native_side <= 0:
            raise ConfigurationError("native side must be positive")
        shrink = max(0.0, 1.0 - resolution_side / native_side)
        return min(1.0, self.base_rate * (1.0 + self.gain * shrink))

    def counts(
        self, clutter: np.ndarray, resolution_side: int, native_side: int
    ) -> np.ndarray:
        """Per-frame false-positive counts (0 or 1).

        Args:
            clutter: Per-frame clutter latents in ``[0, 1)``.
            resolution_side: Side of the resolution being processed.
            native_side: Native resolution side.

        Returns:
            Integer array of the same length as ``clutter``.
        """
        rate = self.rate(resolution_side, native_side)
        return (np.asarray(clutter) < rate).astype(np.int64)
