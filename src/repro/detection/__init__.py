"""Simulated object detectors.

Stand-ins for the paper's YOLOv4 / Mask R-CNN / MTCNN UDFs (see DESIGN.md).
A :class:`~repro.detection.simulated.SimulatedDetector` is a *deterministic*
function of (dataset, resolution, quality): each synthetic object carries a
fixed latent difficulty, and the detector's confidence in it is a logistic
function of its apparent pixel size at the processed resolution. Determinism
matches real inference (re-running a frame yields the same detections) and
per-object monotonicity in resolution reproduces the recall-loss curves the
paper's resolution intervention studies. Model-specific *anomaly terms*
reproduce non-monotonic artifacts such as YOLOv4's 384x384 failure
(paper Figures 7 and 8).
"""

from repro.detection.base import Detector, DetectorOutputs
from repro.detection.diskcache import (
    DetectorDiskCache,
    activate,
    active_cache,
    deactivate,
)
from repro.detection.response import (
    AnomalyTerm,
    FalsePositiveModel,
    ResolutionResponse,
)
from repro.detection.scenario import (
    CompressionAttackResponse,
    MisalignmentResponse,
    OcclusionResponse,
    ScenarioDetector,
    ScenarioResponse,
    TargetedCorruptionResponse,
    WeatherExposureResponse,
)
from repro.detection.simulated import SimulatedDetector
from repro.detection.zoo import (
    DetectorSuite,
    default_suite,
    mask_rcnn_like,
    mtcnn_like,
    yolo_v4_like,
)

__all__ = [
    "AnomalyTerm",
    "CompressionAttackResponse",
    "Detector",
    "DetectorDiskCache",
    "DetectorOutputs",
    "DetectorSuite",
    "FalsePositiveModel",
    "MisalignmentResponse",
    "OcclusionResponse",
    "ResolutionResponse",
    "ScenarioDetector",
    "ScenarioResponse",
    "SimulatedDetector",
    "TargetedCorruptionResponse",
    "WeatherExposureResponse",
    "activate",
    "active_cache",
    "deactivate",
    "default_suite",
    "mask_rcnn_like",
    "mtcnn_like",
    "yolo_v4_like",
]
