"""Statistical substrate: concentration inequalities and sampling designs.

This subpackage contains the probabilistic machinery that the Smokescreen
estimators (:mod:`repro.estimators`) are built on:

- :mod:`repro.stats.inequalities` — interval radii from Hoeffding,
  Hoeffding–Serfling, empirical Bernstein (single-``n`` and the
  union-over-time form used by the EBGS stopping algorithm) and the CLT,
  each in a scalar and an array-broadcasting ``*_batch`` form.
- :mod:`repro.stats.prefix_moments` — cumulative moments of nested prefix
  samples, the engine behind the profiler's vectorized fraction sweeps.
- :mod:`repro.stats.hypergeometric` — moments and the normal approximation of
  the hypergeometric distribution used by the MAX/MIN quantile bound
  (Theorem 3.2 of the paper).
- :mod:`repro.stats.sampling` — sampling-without-replacement designs,
  including the progressive (nested) sampler that lets profile generation
  reuse model invocations across sample fractions (paper §3.3.2).
- :mod:`repro.stats.quantiles` — rank and distinct-value-frequency utilities
  underlying the rank-based quantile error metric.
"""

from repro.stats.hypergeometric import (
    hypergeometric_mean,
    hypergeometric_variance,
    normal_approximation_interval,
    z_score,
)
from repro.stats.inequalities import (
    clt_radius,
    clt_radius_batch,
    empirical_bernstein_radius,
    empirical_bernstein_radius_batch,
    empirical_bernstein_serfling_radius,
    empirical_bernstein_serfling_radius_batch,
    empirical_bernstein_union_radius,
    empirical_bernstein_union_radius_batch,
    hoeffding_radius,
    hoeffding_radius_batch,
    hoeffding_serfling_radius,
    hoeffding_serfling_radius_batch,
    hoeffding_serfling_rho,
    hoeffding_serfling_rho_batch,
)
from repro.stats.prefix_moments import PrefixMoments
from repro.stats.quantiles import (
    DistinctValueTable,
    empirical_quantile,
    quantile_rank_index,
    rank_of_value,
    relative_rank_error,
)
from repro.stats.sampling import (
    ProgressiveSampler,
    SampleDesign,
    sample_without_replacement,
    stratified_time_sample,
)

__all__ = [
    "DistinctValueTable",
    "PrefixMoments",
    "ProgressiveSampler",
    "SampleDesign",
    "clt_radius",
    "clt_radius_batch",
    "empirical_bernstein_radius",
    "empirical_bernstein_radius_batch",
    "empirical_bernstein_serfling_radius",
    "empirical_bernstein_serfling_radius_batch",
    "empirical_bernstein_union_radius",
    "empirical_bernstein_union_radius_batch",
    "empirical_quantile",
    "hoeffding_radius",
    "hoeffding_radius_batch",
    "hoeffding_serfling_radius",
    "hoeffding_serfling_radius_batch",
    "hoeffding_serfling_rho",
    "hoeffding_serfling_rho_batch",
    "hypergeometric_mean",
    "hypergeometric_variance",
    "normal_approximation_interval",
    "quantile_rank_index",
    "rank_of_value",
    "relative_rank_error",
    "sample_without_replacement",
    "stratified_time_sample",
    "z_score",
]
