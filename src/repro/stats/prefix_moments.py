"""Prefix-cumulative moments of nested trial samples.

The profiler's fraction sweeps evaluate every fraction of an ascending grid
on *nested* prefix samples (:class:`repro.stats.sampling.ProgressiveSampler`):
the sample at a low fraction is a prefix of the sample at any higher
fraction. The loop implementation re-derives the mean, variance, and range
of each prefix from scratch, costing O(trials × fractions × n) overall.

:class:`PrefixMoments` stacks each trial's maximal prefix gather into one
``(trials, max_size)`` matrix, computes cumulative sums, sums of squares,
and running extrema **once** (O(trials × n)), and then serves the mean /
variance / range of *every* prefix length as O(trials) slices. Combined
with the batch radius functions of :mod:`repro.stats.inequalities`, a whole
fraction grid point is priced by a handful of broadcasted numpy operations.

Numerical note: prefix means come from a sequential cumulative sum, while
``numpy``'s direct ``mean`` uses pairwise summation. Both are correct to
floating-point accuracy; the profiler's differential tests pin the paths to
each other within 1e-9, which is the repo-wide numerical-equivalence policy
for the vectorized kernels.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, EstimationError


class PrefixMoments:
    """Cumulative first/second moments and running extrema per trial row.

    One instance covers one ``(trials, max_size)`` matrix of prefix-sample
    values; every query method takes a prefix length ``n`` and returns a
    ``(trials,)`` array in O(trials).
    """

    def __init__(self, matrix: np.ndarray) -> None:
        """Precompute the cumulative statistics.

        Args:
            matrix: Per-trial prefix values, shape ``(trials, max_size)``;
                row ``t`` holds trial ``t``'s maximal prefix gather, whose
                leading ``n`` entries are exactly the trial's sample at
                prefix length ``n``.
        """
        array = np.asarray(matrix, dtype=float)
        if array.ndim != 2:
            raise ConfigurationError(
                f"prefix matrix must be 2-D (trials, max_size), "
                f"got shape {array.shape}"
            )
        if array.shape[0] == 0 or array.shape[1] == 0:
            raise ConfigurationError(
                f"prefix matrix must be non-empty, got shape {array.shape}"
            )
        if not np.all(np.isfinite(array)):
            raise EstimationError("prefix matrix contains non-finite values")
        self._matrix = array
        self._cumsum = np.cumsum(array, axis=1)
        self._cumsq = np.cumsum(array * array, axis=1)
        self._cummin = np.minimum.accumulate(array, axis=1)
        self._cummax = np.maximum.accumulate(array, axis=1)

    @property
    def trials(self) -> int:
        """Number of trial rows."""
        return int(self._matrix.shape[0])

    @property
    def max_size(self) -> int:
        """Largest prefix length served."""
        return int(self._matrix.shape[1])

    def row(self, trial: int) -> np.ndarray:
        """One trial's full maximal prefix (view; do not mutate).

        Kept for estimators without a batch form: a per-trial fallback
        slices ``row(t)[:n]`` and runs the scalar estimator unchanged.
        """
        return self._matrix[trial]

    def _check_size(self, n: int) -> int:
        if not 1 <= n <= self.max_size:
            raise ConfigurationError(
                f"prefix length {n} must lie in [1, {self.max_size}]"
            )
        return int(n)

    def mean(self, n: int) -> np.ndarray:
        """Per-trial means of the length-``n`` prefixes."""
        n = self._check_size(n)
        return self._cumsum[:, n - 1] / n

    def second_moment(self, n: int) -> np.ndarray:
        """Per-trial raw second moments ``mean(x^2)`` of the prefixes."""
        n = self._check_size(n)
        return self._cumsq[:, n - 1] / n

    def variance(self, n: int, ddof: int = 0) -> np.ndarray:
        """Per-trial prefix variances, clipped at zero.

        Args:
            n: Prefix length.
            ddof: Delta degrees of freedom (0 = population variance, as
                ``ndarray.var`` defaults; requires ``n > ddof``).
        """
        n = self._check_size(n)
        if ddof < 0 or n <= ddof:
            raise ConfigurationError(
                f"ddof {ddof} must satisfy 0 <= ddof < n={n}"
            )
        mean = self._cumsum[:, n - 1] / n
        variance = np.maximum(self._cumsq[:, n - 1] / n - mean * mean, 0.0)
        if ddof:
            variance = variance * (n / (n - ddof))
        return variance

    def std(self, n: int, ddof: int = 0) -> np.ndarray:
        """Per-trial prefix standard deviations (see :meth:`variance`)."""
        return np.sqrt(self.variance(n, ddof))

    def prefix_mean_matrix(self, n: int) -> np.ndarray:
        """Means of *every* prefix length ``1..n``, shape ``(trials, n)``.

        Serves envelope constructions (EBGS) that need all prefixes
        simultaneously; column ``t-1`` equals :meth:`mean` at ``t``.
        """
        n = self._check_size(n)
        t = np.arange(1, n + 1, dtype=float)
        return self._cumsum[:, :n] / t

    def prefix_variance_matrix(self, n: int) -> np.ndarray:
        """Population variances of every prefix length ``1..n``."""
        n = self._check_size(n)
        t = np.arange(1, n + 1, dtype=float)
        prefix_mean = self._cumsum[:, :n] / t
        return np.maximum(self._cumsq[:, :n] / t - prefix_mean**2, 0.0)

    def minimum(self, n: int) -> np.ndarray:
        """Per-trial minima of the length-``n`` prefixes."""
        n = self._check_size(n)
        return self._cummin[:, n - 1]

    def maximum(self, n: int) -> np.ndarray:
        """Per-trial maxima of the length-``n`` prefixes."""
        n = self._check_size(n)
        return self._cummax[:, n - 1]

    def value_range(self, n: int) -> np.ndarray:
        """Per-trial sample ranges ``max - min`` of the prefixes."""
        n = self._check_size(n)
        return self._cummax[:, n - 1] - self._cummin[:, n - 1]
