"""Prefix-cumulative moments of nested trial samples — batch and streaming.

The profiler's fraction sweeps evaluate every fraction of an ascending grid
on *nested* prefix samples (:class:`repro.stats.sampling.ProgressiveSampler`):
the sample at a low fraction is a prefix of the sample at any higher
fraction. The loop implementation re-derives the mean, variance, and range
of each prefix from scratch, costing O(trials × fractions × n) overall.

:class:`PrefixMoments` stacks each trial's maximal prefix gather into one
``(trials, max_size)`` matrix, computes cumulative sums, sums of squares,
and running extrema **once** (O(trials × n)), and then serves the mean /
variance / range of *every* prefix length as O(trials) slices. Combined
with the batch radius functions of :mod:`repro.stats.inequalities`, a whole
fraction grid point is priced by a handful of broadcasted numpy operations.

Live feeds do not arrive as a fixed matrix, so three streaming engines
share the batch class's query API:

- :class:`RollingPrefixMoments` — the growing-prefix counterpart:
  ``append``/``extend`` fold new frame values in O(1) amortized time
  (capacity-doubling buffers) while every cumulant stays **bit-identical**
  to rebuilding a :class:`PrefixMoments` over the same prefix, because each
  incremental step performs exactly the scalar operation
  ``np.cumsum``/``accumulate`` would have performed at that position.
- :class:`SlidingWindowMoments` — fixed-capacity window over the newest
  ``capacity`` values: deque-backed shifted cumulants with **exact** window
  minima/maxima via monotonic deques, all O(1) amortized per append.
- :class:`DecayedMoments` — exponentially decay-weighted cumulants with the
  Kish effective sample size, for bounds that should forget the distant
  past smoothly instead of truncating it.

Numerical note: prefix means come from a sequential cumulative sum, while
``numpy``'s direct ``mean`` uses pairwise summation. Both are correct to
floating-point accuracy; the profiler's differential tests pin the paths to
each other within 1e-9, which is the repo-wide numerical-equivalence policy
for the vectorized kernels. Variances are computed from cumulants *shifted
by each row's first element*: the raw ``E[x²] − E[x]²`` form catastrophically
cancels once values carry a large common offset (a ~1e8 offset leaves float64
with no significant bits for a small spread), and shifting by a value from
the data itself removes the offset without changing the variance.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.errors import ConfigurationError, EstimationError


class _MomentQueries:
    """Query surface shared by the batch and rolling prefix engines.

    Subclasses populate six aligned ``(trials, size)`` arrays — the raw
    value matrix, the raw cumulative sum, the *shifted* cumulative sum and
    sum of squares (values centered on each row's first element, held in
    ``_shift``), and the running extrema — and every query below is an
    O(trials) slice at column ``n - 1``.
    """

    _matrix: np.ndarray
    _cumsum: np.ndarray
    _scumsum: np.ndarray
    _scumsq: np.ndarray
    _cummin: np.ndarray
    _cummax: np.ndarray
    _shift: np.ndarray

    @property
    def trials(self) -> int:
        """Number of trial rows."""
        return int(self._matrix.shape[0])

    @property
    def max_size(self) -> int:
        """Largest prefix length served."""
        return int(self._matrix.shape[1])

    def row(self, trial: int) -> np.ndarray:
        """One trial's full maximal prefix (view; do not mutate).

        Kept for estimators without a batch form: a per-trial fallback
        slices ``row(t)[:n]`` and runs the scalar estimator unchanged.
        """
        return self._matrix[trial]

    def _check_size(self, n: int) -> int:
        if not 1 <= n <= self.max_size:
            raise ConfigurationError(
                f"prefix length {n} must lie in [1, {self.max_size}]"
            )
        return int(n)

    def mean(self, n: int) -> np.ndarray:
        """Per-trial means of the length-``n`` prefixes."""
        n = self._check_size(n)
        return self._cumsum[:, n - 1] / n

    def second_moment(self, n: int) -> np.ndarray:
        """Per-trial raw second moments ``mean(x^2)`` of the prefixes.

        Reconstructed from the shifted cumulants:
        ``E[x²] = E[(x−c)²] + 2c·E[x] − c²`` with ``c`` the row shift.
        """
        n = self._check_size(n)
        shifted = self._scumsq[:, n - 1] / n
        mean = self._cumsum[:, n - 1] / n
        return shifted + self._shift * (2.0 * mean - self._shift)

    def variance(self, n: int, ddof: int = 0) -> np.ndarray:
        """Per-trial prefix variances, clipped at zero.

        Computed from the shifted cumulants, so the clip only ever absorbs
        rounding-level negatives — never the catastrophic cancellation the
        raw ``E[x²] − E[x]²`` form suffers on large-offset data.

        Args:
            n: Prefix length.
            ddof: Delta degrees of freedom (0 = population variance, as
                ``ndarray.var`` defaults; requires ``n > ddof``).
        """
        n = self._check_size(n)
        if ddof < 0 or n <= ddof:
            raise ConfigurationError(
                f"ddof {ddof} must satisfy 0 <= ddof < n={n}"
            )
        shifted_mean = self._scumsum[:, n - 1] / n
        variance = np.maximum(
            self._scumsq[:, n - 1] / n - shifted_mean * shifted_mean, 0.0
        )
        if ddof:
            variance = variance * (n / (n - ddof))
        return variance

    def std(self, n: int, ddof: int = 0) -> np.ndarray:
        """Per-trial prefix standard deviations (see :meth:`variance`)."""
        return np.sqrt(self.variance(n, ddof))

    def prefix_mean_matrix(self, n: int) -> np.ndarray:
        """Means of *every* prefix length ``1..n``, shape ``(trials, n)``.

        Serves envelope constructions (EBGS) that need all prefixes
        simultaneously; column ``t-1`` equals :meth:`mean` at ``t``.
        """
        n = self._check_size(n)
        t = np.arange(1, n + 1, dtype=float)
        return self._cumsum[:, :n] / t

    def prefix_variance_matrix(self, n: int) -> np.ndarray:
        """Population variances of every prefix length ``1..n``."""
        n = self._check_size(n)
        t = np.arange(1, n + 1, dtype=float)
        shifted_mean = self._scumsum[:, :n] / t
        return np.maximum(self._scumsq[:, :n] / t - shifted_mean**2, 0.0)

    def minimum(self, n: int) -> np.ndarray:
        """Per-trial minima of the length-``n`` prefixes."""
        n = self._check_size(n)
        return self._cummin[:, n - 1]

    def maximum(self, n: int) -> np.ndarray:
        """Per-trial maxima of the length-``n`` prefixes."""
        n = self._check_size(n)
        return self._cummax[:, n - 1]

    def value_range(self, n: int) -> np.ndarray:
        """Per-trial sample ranges ``max - min`` of the prefixes."""
        n = self._check_size(n)
        return self._cummax[:, n - 1] - self._cummin[:, n - 1]


class PrefixMoments(_MomentQueries):
    """Cumulative first/second moments and running extrema per trial row.

    One instance covers one ``(trials, max_size)`` matrix of prefix-sample
    values; every query method takes a prefix length ``n`` and returns a
    ``(trials,)`` array in O(trials).
    """

    def __init__(self, matrix: np.ndarray) -> None:
        """Precompute the cumulative statistics.

        Args:
            matrix: Per-trial prefix values, shape ``(trials, max_size)``;
                row ``t`` holds trial ``t``'s maximal prefix gather, whose
                leading ``n`` entries are exactly the trial's sample at
                prefix length ``n``.
        """
        array = np.asarray(matrix, dtype=float)
        if array.ndim != 2:
            raise ConfigurationError(
                f"prefix matrix must be 2-D (trials, max_size), "
                f"got shape {array.shape}"
            )
        if array.shape[0] == 0 or array.shape[1] == 0:
            raise ConfigurationError(
                f"prefix matrix must be non-empty, got shape {array.shape}"
            )
        if not np.all(np.isfinite(array)):
            raise EstimationError("prefix matrix contains non-finite values")
        self._matrix = array
        self._shift = array[:, 0].copy()
        shifted = array - self._shift[:, None]
        self._cumsum = np.cumsum(array, axis=1)
        self._scumsum = np.cumsum(shifted, axis=1)
        self._scumsq = np.cumsum(shifted * shifted, axis=1)
        self._cummin = np.minimum.accumulate(array, axis=1)
        self._cummax = np.maximum.accumulate(array, axis=1)


class RollingPrefixMoments(_MomentQueries):
    """Growing-prefix moments for live feeds: O(1) amortized appends.

    Maintains exactly the cumulants :class:`PrefixMoments` would compute
    over the values appended so far, in capacity-doubling buffers. Each
    append performs the same scalar operation ``np.cumsum`` /
    ``np.minimum.accumulate`` would have performed at that column, so every
    query result is **bit-identical** to rebuilding the batch class on the
    same prefix — the profiler's vectorized answers and the live feed's
    incremental answers can never disagree.
    """

    def __init__(self, trials: int = 1, capacity: int = 64) -> None:
        """Start an empty rolling prefix.

        Args:
            trials: Number of parallel trial rows fed per append (1 for a
                single live feed).
            capacity: Initial buffer capacity (grows by doubling).
        """
        if trials < 1:
            raise ConfigurationError(f"trials must be positive, got {trials}")
        if capacity < 1:
            raise ConfigurationError(
                f"capacity must be positive, got {capacity}"
            )
        self._rows = int(trials)
        self._capacity = int(capacity)
        self._size = 0
        self._buffers = {
            name: np.empty((self._rows, self._capacity), dtype=float)
            for name in (
                "matrix", "cumsum", "scumsum", "scumsq", "cummin", "cummax"
            )
        }
        self._shift = np.zeros(self._rows, dtype=float)
        self._refresh_views()

    def _refresh_views(self) -> None:
        k = self._size
        self._matrix = self._buffers["matrix"][:, :k]
        self._cumsum = self._buffers["cumsum"][:, :k]
        self._scumsum = self._buffers["scumsum"][:, :k]
        self._scumsq = self._buffers["scumsq"][:, :k]
        self._cummin = self._buffers["cummin"][:, :k]
        self._cummax = self._buffers["cummax"][:, :k]

    def _grow(self) -> None:
        new_capacity = self._capacity * 2
        for name, buffer in self._buffers.items():
            grown = np.empty((self._rows, new_capacity), dtype=float)
            grown[:, : self._size] = buffer[:, : self._size]
            self._buffers[name] = grown
        self._capacity = new_capacity

    @property
    def size(self) -> int:
        """Values appended so far (alias of :attr:`max_size`)."""
        return self._size

    def _as_column(self, values) -> np.ndarray:
        column = np.asarray(values, dtype=float)
        if column.ndim == 0:
            column = column.reshape(1)
        if column.shape != (self._rows,):
            raise ConfigurationError(
                f"append expects {self._rows} value(s) per arrival, "
                f"got shape {column.shape}"
            )
        if not np.all(np.isfinite(column)):
            raise EstimationError("stream values must be finite")
        return column

    def append(self, values) -> None:
        """Fold one arrival (one value per trial row), O(1) amortized.

        Args:
            values: Scalar (``trials == 1``) or ``(trials,)`` array of
                finite values — one new column of the prefix matrix.
        """
        column = self._as_column(values)
        if self._size == self._capacity:
            self._grow()
        k = self._size
        buffers = self._buffers
        buffers["matrix"][:, k] = column
        if k == 0:
            self._shift = column.copy()
            buffers["cumsum"][:, 0] = column
            buffers["scumsum"][:, 0] = 0.0
            buffers["scumsq"][:, 0] = 0.0
            buffers["cummin"][:, 0] = column
            buffers["cummax"][:, 0] = column
        else:
            shifted = column - self._shift
            np.add(buffers["cumsum"][:, k - 1], column,
                   out=buffers["cumsum"][:, k])
            np.add(buffers["scumsum"][:, k - 1], shifted,
                   out=buffers["scumsum"][:, k])
            np.add(buffers["scumsq"][:, k - 1], shifted * shifted,
                   out=buffers["scumsq"][:, k])
            np.minimum(buffers["cummin"][:, k - 1], column,
                       out=buffers["cummin"][:, k])
            np.maximum(buffers["cummax"][:, k - 1], column,
                       out=buffers["cummax"][:, k])
        self._size += 1
        self._refresh_views()

    def extend(self, block) -> None:
        """Fold a batch of arrivals, in order, atomically validated.

        Args:
            block: ``(trials, k)`` array of ``k`` new columns, or a 1-D
                length-``k`` sequence when ``trials == 1``.
        """
        array = np.asarray(block, dtype=float)
        if array.ndim == 1 and self._rows == 1:
            array = array.reshape(1, -1)
        if array.ndim != 2 or array.shape[0] != self._rows:
            raise ConfigurationError(
                f"extend expects a ({self._rows}, k) block, "
                f"got shape {array.shape}"
            )
        if not np.all(np.isfinite(array)):
            raise EstimationError("stream values must be finite")
        for j in range(array.shape[1]):
            self.append(array[:, j])


class SlidingWindowMoments:
    """Moments of the newest ``capacity`` values of a single live feed.

    Shifted first/second cumulants are maintained by add-on-arrival /
    subtract-on-eviction over a deque, and are rebuilt from scratch every
    ``capacity`` appends (O(1) amortized) so subtract-accumulation error
    can never grow with stream length — window statistics track a from-
    scratch recomputation within the repo's 1e-9 equivalence policy. Window
    minima and maxima are **exact** at every step via monotonic deques.
    """

    def __init__(self, capacity: int) -> None:
        """Create an empty window.

        Args:
            capacity: Maximum number of retained values (≥ 1).
        """
        if capacity < 1:
            raise ConfigurationError(
                f"window capacity must be positive, got {capacity}"
            )
        self._capacity = int(capacity)
        self._values: deque[float] = deque()
        self._shift = 0.0
        self._sum_s = 0.0
        self._sumsq_s = 0.0
        self._min_dq: deque[tuple[int, float]] = deque()
        self._max_dq: deque[tuple[int, float]] = deque()
        self._appended = 0
        self._since_rebuild = 0

    @property
    def capacity(self) -> int:
        """Maximum number of retained values."""
        return self._capacity

    @property
    def count(self) -> int:
        """Values currently in the window."""
        return len(self._values)

    @property
    def total_appended(self) -> int:
        """Values ever appended (retained or evicted)."""
        return self._appended

    @property
    def is_full(self) -> bool:
        """Whether the window has reached capacity (and now slides)."""
        return len(self._values) == self._capacity

    def append(self, value: float) -> None:
        """Fold one arriving value, evicting the oldest when full."""
        x = float(value)
        if not math.isfinite(x):
            raise EstimationError(f"stream value must be finite, got {x}")
        if len(self._values) == self._capacity:
            evicted = self._values.popleft() - self._shift
            self._sum_s -= evicted
            self._sumsq_s -= evicted * evicted
        elif not self._values:
            self._shift = x
        self._values.append(x)
        shifted = x - self._shift
        self._sum_s += shifted
        self._sumsq_s += shifted * shifted
        index = self._appended
        self._appended += 1
        while self._min_dq and self._min_dq[-1][1] >= x:
            self._min_dq.pop()
        self._min_dq.append((index, x))
        while self._max_dq and self._max_dq[-1][1] <= x:
            self._max_dq.pop()
        self._max_dq.append((index, x))
        cutoff = self._appended - len(self._values)
        while self._min_dq[0][0] < cutoff:
            self._min_dq.popleft()
        while self._max_dq[0][0] < cutoff:
            self._max_dq.popleft()
        self._since_rebuild += 1
        if self._since_rebuild >= self._capacity:
            self._rebuild()

    def extend(self, values) -> None:
        """Fold a batch of values, in order, atomically validated."""
        batch = [float(v) for v in values]
        if not all(math.isfinite(v) for v in batch):
            raise EstimationError("stream values must be finite")
        for value in batch:
            self.append(value)

    def _rebuild(self) -> None:
        self._shift = self._values[0]
        sum_s = 0.0
        sumsq_s = 0.0
        for value in self._values:
            shifted = value - self._shift
            sum_s += shifted
            sumsq_s += shifted * shifted
        self._sum_s = sum_s
        self._sumsq_s = sumsq_s
        self._since_rebuild = 0

    def _require_values(self) -> int:
        n = len(self._values)
        if n == 0:
            raise EstimationError("window is empty — no values observed yet")
        return n

    def mean(self) -> float:
        """Mean of the current window."""
        n = self._require_values()
        return self._shift + self._sum_s / n

    def variance(self, ddof: int = 0) -> float:
        """Variance of the current window, clipped at zero."""
        n = self._require_values()
        if ddof < 0 or n <= ddof:
            raise ConfigurationError(
                f"ddof {ddof} must satisfy 0 <= ddof < n={n}"
            )
        shifted_mean = self._sum_s / n
        variance = max(self._sumsq_s / n - shifted_mean * shifted_mean, 0.0)
        if ddof:
            variance *= n / (n - ddof)
        return variance

    def std(self, ddof: int = 0) -> float:
        """Standard deviation of the current window."""
        return math.sqrt(self.variance(ddof))

    def minimum(self) -> float:
        """Exact minimum of the current window."""
        self._require_values()
        return self._min_dq[0][1]

    def maximum(self) -> float:
        """Exact maximum of the current window."""
        self._require_values()
        return self._max_dq[0][1]

    def value_range(self) -> float:
        """Exact range ``max - min`` of the current window."""
        return self.maximum() - self.minimum()

    def values(self) -> np.ndarray:
        """The current window contents, oldest first (copy)."""
        return np.fromiter(self._values, dtype=float, count=len(self._values))


class DecayedMoments:
    """Exponentially decay-weighted moments of a single live feed.

    Value ``i`` arrivals ago carries weight ``decay**i``; cumulants are
    one-multiply-one-add per append. The Kish effective sample size
    ``(Σw)² / Σw²`` converts the weighted state into the "how many
    independent frames is this worth" number the concentration bounds
    need; it saturates at ``(1 + decay) / (1 - decay)``.
    """

    def __init__(self, decay: float) -> None:
        """Create an empty decayed accumulator.

        Args:
            decay: Per-arrival weight multiplier in (0, 1) — older values
                fade geometrically. (For no forgetting use
                :class:`RollingPrefixMoments` instead.)
        """
        decay = float(decay)
        if not math.isfinite(decay) or not 0.0 < decay < 1.0:
            raise ConfigurationError(
                f"decay must lie strictly in (0, 1), got {decay}"
            )
        self._decay = decay
        self._count = 0
        self._weight = 0.0
        self._weight_sq = 0.0
        self._sum_s = 0.0
        self._sumsq_s = 0.0
        self._shift = 0.0
        self._minimum = math.inf
        self._maximum = -math.inf

    @property
    def decay(self) -> float:
        """The per-arrival weight multiplier."""
        return self._decay

    @property
    def count(self) -> int:
        """Values ever appended."""
        return self._count

    @property
    def weight(self) -> float:
        """Total decayed weight ``Σ decay**age == (1 - d**n) / (1 - d)``."""
        return self._weight

    def effective_size(self) -> float:
        """Kish effective sample size ``(Σw)² / Σw²`` (≤ (1+d)/(1-d))."""
        if self._count == 0:
            raise EstimationError("no values observed yet")
        return self._weight * self._weight / self._weight_sq

    def append(self, value: float) -> None:
        """Fold one arriving value; all prior weights decay by ``decay``."""
        x = float(value)
        if not math.isfinite(x):
            raise EstimationError(f"stream value must be finite, got {x}")
        if self._count == 0:
            self._shift = x
        d = self._decay
        shifted = x - self._shift
        self._weight = d * self._weight + 1.0
        self._weight_sq = d * d * self._weight_sq + 1.0
        self._sum_s = d * self._sum_s + shifted
        self._sumsq_s = d * self._sumsq_s + shifted * shifted
        self._minimum = min(self._minimum, x)
        self._maximum = max(self._maximum, x)
        self._count += 1

    def extend(self, values) -> None:
        """Fold a batch of values, in order, atomically validated."""
        batch = [float(v) for v in values]
        if not all(math.isfinite(v) for v in batch):
            raise EstimationError("stream values must be finite")
        for value in batch:
            self.append(value)

    def _require_values(self) -> None:
        if self._count == 0:
            raise EstimationError("no values observed yet")

    def mean(self) -> float:
        """Decay-weighted mean."""
        self._require_values()
        return self._shift + self._sum_s / self._weight

    def variance(self) -> float:
        """Decay-weighted population variance, clipped at zero."""
        self._require_values()
        shifted_mean = self._sum_s / self._weight
        return max(self._sumsq_s / self._weight - shifted_mean**2, 0.0)

    def std(self) -> float:
        """Decay-weighted standard deviation."""
        return math.sqrt(self.variance())

    def minimum(self) -> float:
        """Running minimum over *all* values seen (conservative: extrema
        do not decay, so the implied range never understates the data)."""
        self._require_values()
        return self._minimum

    def maximum(self) -> float:
        """Running maximum over all values seen (see :meth:`minimum`)."""
        self._require_values()
        return self._maximum

    def value_range(self) -> float:
        """Conservative range ``max - min`` over all values seen."""
        return self.maximum() - self.minimum()
