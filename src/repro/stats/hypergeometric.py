"""Hypergeometric moments and the normal approximation used by Theorem 3.2.

When ``n`` frames are drawn without replacement from ``N`` and ``K`` of the
``N`` population items fall at-or-below a quantile cut, the number of sampled
items at-or-below the cut is hypergeometric. The paper's MAX/MIN error bound
(Theorem 3.2) rests on the classical normal approximation of that
distribution (Nicholson [50], Feller [19]).
"""

from __future__ import annotations

import math

from scipy.stats import norm

from repro.errors import ConfigurationError


def _check_population(population: int, n: int) -> None:
    if population <= 0:
        raise ConfigurationError(
            f"population must be positive, got {population}"
        )
    if not 0 <= n <= population:
        raise ConfigurationError(
            f"sample size {n} must lie in [0, population={population}]"
        )


def hypergeometric_mean(population: int, successes: int, n: int) -> float:
    """Mean of the hypergeometric count.

    Args:
        population: Population size ``N``.
        successes: Number of success items ``K`` in the population.
        n: Number of draws without replacement.

    Returns:
        ``n * K / N``.
    """
    _check_population(population, n)
    if not 0 <= successes <= population:
        raise ConfigurationError(
            f"successes {successes} must lie in [0, population={population}]"
        )
    return n * successes / population


def hypergeometric_variance(population: int, successes: int, n: int) -> float:
    """Variance of the hypergeometric count.

    ``n * (K/N) * (1 - K/N) * (N - n) / (N - 1)`` — the binomial variance
    shrunk by the finite-population correction factor ``(N - n) / (N - 1)``.

    Args:
        population: Population size ``N``.
        successes: Number of success items ``K``.
        n: Number of draws without replacement.

    Returns:
        The variance; zero when ``N == 1``.
    """
    _check_population(population, n)
    if not 0 <= successes <= population:
        raise ConfigurationError(
            f"successes {successes} must lie in [0, population={population}]"
        )
    if population == 1:
        return 0.0
    fraction = successes / population
    correction = (population - n) / (population - 1)
    return n * fraction * (1.0 - fraction) * correction


def z_score(delta: float) -> float:
    """Two-sided standard-normal critical value ``z_{delta/2}``.

    Args:
        delta: Two-sided failure probability, e.g. ``0.05`` for 95%.

    Returns:
        ``Phi^{-1}(1 - delta / 2)``, e.g. ``1.96`` for ``delta = 0.05``.
    """
    if not 0.0 < delta < 1.0:
        raise ConfigurationError(f"delta must lie in (0, 1), got {delta}")
    return float(norm.ppf(1.0 - delta / 2.0))


def normal_approximation_interval(
    population: int, n: int, fraction: float, delta: float
) -> float:
    """Deviation radius of a sampled cumulative frequency (Theorem 3.2).

    Let ``F = fraction`` be a cumulative frequency in the population and
    ``F_hat`` its without-replacement sample analogue. Using the normal
    approximation of the hypergeometric distribution, with probability at
    least ``1 - delta``::

        |F_hat - F| <= z_{delta/2} * sqrt(F (1 - F)) * sqrt((N - n) / (n (N - 1)))

    The paper plugs ``fraction = r`` (MAX) or ``fraction = r + F_k`` (MIN)
    into this radius.

    Args:
        population: Population size ``N``.
        n: Number of draws without replacement; must be positive.
        fraction: The cumulative frequency whose binomial-style variance
            bounds the true variance; clipped to ``[0, 1]``.
        delta: Two-sided failure probability.

    Returns:
        The deviation radius; zero when ``N == 1`` or ``n == N``.
    """
    _check_population(population, n)
    if n == 0:
        raise ConfigurationError("sample size must be positive for the radius")
    clipped = min(max(fraction, 0.0), 1.0)
    if population == 1:
        return 0.0
    finite_pop = (population - n) / (n * (population - 1))
    return z_score(delta) * math.sqrt(clipped * (1.0 - clipped)) * math.sqrt(finite_pop)
