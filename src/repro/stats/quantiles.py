"""Rank and distinct-value utilities for the quantile (MAX/MIN) estimators.

The paper measures MAX/MIN accuracy with a *rank-based* relative error
(§3.2.4): the approximate answer's rank in the original output array is
compared against the true answer's rank. The helpers here define quantile
indexing, rank lookup, and the distinct-value frequency table
(``s_i``, ``F_i``, ``F_hat_i``) that Theorem 3.2's formulas are written in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


def quantile_rank_index(n: int, r: float) -> int:
    """0-based index of the ``r``-th quantile in a sorted array of length ``n``.

    Matches Algorithm 2's ``sortList[n * r]`` with clamping so that ``r = 1``
    selects the last element rather than overflowing.

    Args:
        n: Array length; must be positive.
        r: Quantile level in ``[0, 1]``.

    Returns:
        ``min(floor(n * r), n - 1)``.
    """
    if n <= 0:
        raise ConfigurationError(f"array length must be positive, got {n}")
    if not 0.0 <= r <= 1.0:
        raise ConfigurationError(f"quantile level must lie in [0, 1], got {r}")
    return min(int(n * r), n - 1)


def empirical_quantile(values: np.ndarray, r: float) -> float:
    """The ``r``-th empirical quantile, by the paper's indexing rule.

    Args:
        values: Sample values (any order).
        r: Quantile level in ``[0, 1]``.

    Returns:
        The element at :func:`quantile_rank_index` of the sorted values.
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ConfigurationError("cannot take a quantile of an empty sample")
    ordered = np.sort(array)
    return float(ordered[quantile_rank_index(ordered.size, r)])


def rank_of_value(values: np.ndarray, value: float) -> int:
    """Number of entries of ``values`` that are ``<= value``.

    This is the (1-based) rank used by the paper's rank-error metric: the
    cumulative count at ``value`` in the reference array.

    Args:
        values: Reference array (any order).
        value: Query value.

    Returns:
        ``#{ v in values : v <= value }``.
    """
    array = np.asarray(values, dtype=float)
    return int(np.count_nonzero(array <= value))


def relative_rank_error(reference: np.ndarray, approx: float, true: float) -> float:
    """The paper's MAX/MIN accuracy metric.

    ``| rank(approx) - rank(true) | / rank(true)`` where ranks are cumulative
    counts in the *reference* (original, non-degraded) output array.

    Args:
        reference: The original model outputs ``X_1..X_N``.
        approx: Approximate quantile answer.
        true: True quantile answer.

    Returns:
        The relative rank error; zero when the ranks agree.
    """
    true_rank = rank_of_value(reference, true)
    if true_rank == 0:
        raise ConfigurationError(
            "true value has rank zero in the reference array; "
            "the relative rank error is undefined"
        )
    approx_rank = rank_of_value(reference, approx)
    return abs(approx_rank - true_rank) / true_rank


@dataclass(frozen=True)
class DistinctValueTable:
    """Sorted distinct values of a sample with their relative frequencies.

    This is the ``(s_i, F_hat_i)`` table of §3.2.4: ``values[i]`` is the
    ``i``-th smallest distinct value and ``frequencies[i]`` its share of the
    sample. Built with :meth:`from_sample`.

    Attributes:
        values: Sorted distinct sample values.
        frequencies: Relative frequency of each distinct value; sums to 1.
    """

    values: np.ndarray
    frequencies: np.ndarray

    @classmethod
    def from_sample(cls, sample: np.ndarray) -> "DistinctValueTable":
        """Build the table from raw sample values.

        Args:
            sample: Non-empty array of sample values.

        Returns:
            The distinct-value table.
        """
        array = np.asarray(sample, dtype=float)
        if array.size == 0:
            raise ConfigurationError("cannot tabulate an empty sample")
        values, counts = np.unique(array, return_counts=True)
        return cls(values=values, frequencies=counts / array.size)

    @property
    def cumulative(self) -> np.ndarray:
        """Cumulative frequencies ``sum_{j <= i} F_hat_j``."""
        return np.cumsum(self.frequencies)

    def quantile_position(self, r: float) -> int:
        """Index of the ``r``-th quantile among the distinct values.

        Implements Theorem 3.2's ``min_i { s_i : sum_{j<=i} F_hat_j >= r }``.

        Args:
            r: Quantile level in ``(0, 1]``.

        Returns:
            0-based index ``k_hat`` into :attr:`values`.
        """
        if not 0.0 < r <= 1.0:
            raise ConfigurationError(
                f"quantile level must lie in (0, 1], got {r}"
            )
        cumulative = self.cumulative
        # Guard against floating-point round-off leaving the last cumulative
        # frequency infinitesimally below r.
        positions = np.nonzero(cumulative >= r - 1e-12)[0]
        if positions.size == 0:
            return int(self.values.size - 1)
        return int(positions[0])

    def frequency_at(self, index: int) -> float:
        """Relative frequency ``F_hat_i`` of the distinct value at ``index``."""
        if not 0 <= index < self.values.size:
            raise ConfigurationError(
                f"index {index} outside distinct-value table of size "
                f"{self.values.size}"
            )
        return float(self.frequencies[index])
