"""Sampling designs for the reduced-frame-sampling intervention.

The paper's random intervention draws frames *without replacement* (the
assumption behind the Hoeffding–Serfling inequality and the hypergeometric
quantile bound). Two extras matter for profile generation:

- :class:`SampleDesign` turns a sample *fraction* into a concrete sample
  *size* consistently everywhere (round-half-up, at least one frame when the
  fraction is positive).
- :class:`ProgressiveSampler` produces *nested* samples: the sample at a low
  fraction is a prefix of the sample at any higher fraction. This implements
  the reuse strategy of paper §3.3.2 — model outputs computed for a 1% sweep
  point are reused by the 2% point, and so on — and is what makes profile
  sweeps affordable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SampleDesign:
    """A without-replacement sampling plan over a finite frame universe.

    Attributes:
        population: Number of frames available to sample from.
        fraction: Sampling fraction ``f`` in ``(0, 1]``.
    """

    population: int
    fraction: float

    def __post_init__(self) -> None:
        if self.population <= 0:
            raise ConfigurationError(
                f"population must be positive, got {self.population}"
            )
        if not 0.0 < self.fraction <= 1.0:
            raise ConfigurationError(
                f"sample fraction must lie in (0, 1], got {self.fraction}"
            )

    @property
    def size(self) -> int:
        """Concrete sample size ``n = round(N * f)``, clamped to ``[1, N]``."""
        n = int(round(self.population * self.fraction))
        return max(1, min(n, self.population))

    def draw(self, rng: np.random.Generator) -> np.ndarray:
        """Draw the sample as an array of frame indices.

        Args:
            rng: Source of randomness for the draw.

        Returns:
            ``self.size`` distinct indices into ``range(population)``, in
            draw order (not sorted).
        """
        return rng.choice(self.population, size=self.size, replace=False)


def sample_without_replacement(
    population: int, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``size`` distinct indices from ``range(population)``.

    Args:
        population: Universe size.
        size: Number of indices to draw; must satisfy ``0 <= size <= population``.
        rng: Source of randomness.

    Returns:
        The drawn indices in draw order.
    """
    if population <= 0:
        raise ConfigurationError(f"population must be positive, got {population}")
    if not 0 <= size <= population:
        raise ConfigurationError(
            f"sample size {size} must lie in [0, population={population}]"
        )
    return rng.choice(population, size=size, replace=False)


def stratified_time_sample(
    population: int, size: int, rng: np.random.Generator
) -> np.ndarray:
    """One frame per equal-length time stratum (paper §7's extension hook).

    Consecutive video frames are highly similar, so spreading a sample
    evenly across time captures more information per frame than simple
    random sampling: within-stratum homogeneity means the stratified mean
    has lower variance whenever the series is positively autocorrelated.
    The paper names exploiting this similarity as future work; the
    ``ablation-stratified`` experiment quantifies the gain.

    Note the Hoeffding–Serfling machinery assumes simple random sampling;
    the stratified design is an *estimator-quality* improvement whose
    bound validity is checked empirically, not proven.

    Args:
        population: Number of frames (the timeline length).
        size: Number of strata = sample size; must satisfy
            ``1 <= size <= population``.
        rng: Source of randomness for the within-stratum draws.

    Returns:
        One sampled frame index per stratum, in temporal order.
    """
    if population <= 0:
        raise ConfigurationError(f"population must be positive, got {population}")
    if not 1 <= size <= population:
        raise ConfigurationError(
            f"sample size {size} must lie in [1, population={population}]"
        )
    boundaries = np.linspace(0, population, size + 1)
    starts = np.floor(boundaries[:-1]).astype(np.int64)
    stops = np.maximum(np.floor(boundaries[1:]).astype(np.int64), starts + 1)
    stops = np.minimum(stops, population)
    offsets = rng.random(size)
    return (starts + np.floor(offsets * (stops - starts)).astype(np.int64)).clip(
        0, population - 1
    )


class ProgressiveSampler:
    """Nested without-replacement sampler enabling model-output reuse.

    A single random ordering of the universe is fixed up front; the sample
    at size ``n`` is simply its first ``n`` entries. Any prefix of a
    uniformly random ordering is itself a uniform without-replacement
    sample, so every prefix is a valid draw — while being nested, which is
    what lets profile generation (paper §3.3.2) evaluate sample fractions
    in ascending order and reuse all previously computed model outputs.

    When the caller knows the largest prefix it will ever request (a
    fraction sweep's top design size), ``max_size`` draws only that many
    indices — a uniformly *ordered* without-replacement draw, whose
    prefixes have exactly the same distribution as the full permutation's
    — for O(max_size) instead of O(population) setup. The two modes
    consume the generator differently, so a seeded sweep must pick one
    mode and keep it.
    """

    def __init__(
        self,
        population: int,
        rng: np.random.Generator,
        max_size: int | None = None,
    ) -> None:
        """Fix the random ordering.

        Args:
            population: Universe size; must be positive.
            rng: Source of randomness for the ordering.
            max_size: Largest prefix this sampler must serve; None (the
                default) keeps the full permutation.
        """
        if population <= 0:
            raise ConfigurationError(
                f"population must be positive, got {population}"
            )
        self._population = int(population)
        if max_size is None:
            self._permutation = rng.permutation(population)
        else:
            if not 1 <= max_size <= population:
                raise ConfigurationError(
                    f"max_size {max_size} must lie in [1, {population}]"
                )
            self._permutation = rng.choice(
                population, max_size, replace=False, shuffle=True
            )

    @property
    def population(self) -> int:
        """The universe size the ordering covers."""
        return self._population

    @property
    def max_size(self) -> int:
        """Largest prefix this sampler serves (== population by default)."""
        return int(self._permutation.size)

    def prefix(self, size: int) -> np.ndarray:
        """The nested sample of the given size.

        Args:
            size: Number of indices; must satisfy ``0 <= size <= max_size``.

        Returns:
            The first ``size`` entries of the fixed ordering. The returned
            array is a copy, safe to mutate.
        """
        if not 0 <= size <= self.max_size:
            raise ConfigurationError(
                f"prefix size {size} must lie in [0, {self.max_size}]"
            )
        return self._permutation[:size].copy()

    def prefix_for_fraction(self, fraction: float) -> np.ndarray:
        """The nested sample for a sampling fraction.

        Args:
            fraction: Sampling fraction in ``(0, 1]``.

        Returns:
            The nested sample whose size is ``SampleDesign``'s size rule.
        """
        design = SampleDesign(self.population, fraction)
        return self.prefix(design.size)
