"""Concentration-inequality interval radii.

Every function here returns the half-width ``I`` of a two-sided confidence
interval for the mean of bounded observations: with probability at least
``1 - delta`` the true mean lies in ``(sample_mean - I, sample_mean + I)``.

These radii are the raw statistical ingredients of the error-bound estimators
in :mod:`repro.estimators`; keeping them here, free of any video vocabulary,
makes them independently testable and reusable.

References (numbering follows the paper):

- Hoeffding [31] — i.i.d. bounded variables.
- Hoeffding–Serfling [8] — sampling *without replacement* from a finite
  population of size ``N``; strictly tighter than Hoeffding for ``n > 1``.
- Empirical Bernstein [7] — variance-adaptive bound; the union-over-time form
  is the one used inside the EBGS stopping algorithm [48].
- CLT — the normal-approximation radius used by online aggregation [30];
  *not* a guaranteed bound (see Figure 5 of the paper).

Every radius has two forms sharing one argument validator: the scalar
``*_radius`` functions (``math``-based, one interval at a time) and the
``*_radius_batch`` variants, which broadcast over ndarray ``n`` /
``value_range`` / ``sample_std`` and return an ndarray of radii. The batch
forms are the statistical core of the profiler's vectorized sweep kernel:
one call prices a whole (trials,) or (trials, fractions) grid of intervals.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError


def _check_common(n, delta: float, value_range) -> None:
    """Validate arguments shared by every radius function.

    Accepts scalars and ndarrays alike (``n`` and ``value_range`` may be
    arrays in the batch variants); ``delta`` is always a scalar because a
    single sweep prices every interval at one failure probability.
    """
    if np.any(np.asarray(n) <= 0):
        raise ConfigurationError(f"sample size must be positive, got n={n}")
    if not 0.0 < delta < 1.0:
        raise ConfigurationError(f"delta must lie in (0, 1), got {delta}")
    if np.any(np.asarray(value_range) < 0.0):
        raise ConfigurationError(
            f"value range must be non-negative, got {value_range}"
        )


def _check_std(sample_std) -> None:
    """Validate an empirical standard deviation (scalar or ndarray)."""
    if np.any(np.asarray(sample_std) < 0.0):
        raise ConfigurationError(
            f"sample standard deviation must be non-negative, got {sample_std}"
        )


def _check_population(n, population: int) -> None:
    """Validate a finite-population size against the sample size(s)."""
    if np.any(np.asarray(population) < np.asarray(n)):
        raise ConfigurationError(
            f"population {population} smaller than sample size {n}"
        )


def hoeffding_radius(n: int, delta: float, value_range: float) -> float:
    """Two-sided Hoeffding interval radius for i.i.d. samples.

    With probability at least ``1 - delta``,
    ``|sample_mean - mean| <= R * sqrt(log(2 / delta) / (2 n))`` where ``R``
    is the range of the observations.

    Args:
        n: Number of samples.
        delta: Failure probability of the two-sided interval.
        value_range: Range ``R`` of the bounded observations.

    Returns:
        The interval half-width ``I``.
    """
    _check_common(n, delta, value_range)
    return value_range * math.sqrt(math.log(2.0 / delta) / (2.0 * n))


def hoeffding_serfling_rho(n: int, population: int) -> float:
    """The ``rho_n`` factor of the Hoeffding–Serfling inequality.

    ``rho_n = min(1 - (n - 1) / N, (1 - n / N) (1 + 1 / n))`` exactly as in
    Algorithm 1 of the paper. It decays to zero as the sample exhausts the
    population, which is what makes the bound collapse at ``n = N``.

    Args:
        n: Number of samples drawn without replacement.
        population: Finite population size ``N``; must satisfy ``n <= N``.

    Returns:
        The dimensionless factor ``rho_n`` in ``[0, 1]``.
    """
    if n <= 0:
        raise ConfigurationError(f"sample size must be positive, got n={n}")
    _check_population(n, population)
    first = 1.0 - (n - 1) / population
    second = (1.0 - n / population) * (1.0 + 1.0 / n)
    return min(first, second)


def hoeffding_serfling_radius(
    n: int, population: int, delta: float, value_range: float
) -> float:
    """Two-sided Hoeffding–Serfling radius for without-replacement samples.

    With probability at least ``1 - delta``,
    ``|sample_mean - mean| <= R * sqrt(rho_n * log(2 / delta) / (2 n))``.
    The factor 2 inside the logarithm is the union bound over the two
    one-sided inequalities, as derived in §3.2.1 of the paper.

    Args:
        n: Number of samples drawn without replacement.
        population: Finite population size ``N``.
        delta: Failure probability of the two-sided interval.
        value_range: Range ``R`` of the observations.

    Returns:
        The interval half-width ``I``.
    """
    _check_common(n, delta, value_range)
    rho = hoeffding_serfling_rho(n, population)
    return value_range * math.sqrt(rho * math.log(2.0 / delta) / (2.0 * n))


def empirical_bernstein_radius(
    n: int, delta: float, value_range: float, sample_std: float
) -> float:
    """Two-sided empirical Bernstein radius for a single sample size.

    ``I = sigma_hat * sqrt(2 log(3 / delta) / n) + 3 R log(3 / delta) / n``
    (Audibert et al. [7]). Variance-adaptive: much tighter than Hoeffding
    when the observations have small empirical standard deviation.

    Args:
        n: Number of samples.
        delta: Failure probability.
        value_range: Range ``R`` of the observations.
        sample_std: Empirical standard deviation of the samples.

    Returns:
        The interval half-width ``I``.
    """
    _check_common(n, delta, value_range)
    _check_std(sample_std)
    log_term = math.log(3.0 / delta)
    return sample_std * math.sqrt(2.0 * log_term / n) + 3.0 * value_range * log_term / n


def empirical_bernstein_union_radius(
    t: int, delta: float, value_range: float, sample_std: float
) -> float:
    """Empirical Bernstein radius valid *simultaneously* for all times ``t``.

    The EBGS stopping algorithm [48] needs intervals that hold jointly for
    every prefix length ``t`` of the sample stream, so it spends
    ``delta_t = delta / (t (t + 1))`` at step ``t`` (these sum to ``delta``
    over ``t >= 1``). This is the construction Smokescreen's Algorithm 1
    deliberately *relaxes* — it only needs the interval at the final ``n`` —
    which is one source of its tighter bound.

    Args:
        t: Prefix length (1-based step of the sample stream).
        delta: Total failure probability, shared across all steps.
        value_range: Range ``R`` of the observations.
        sample_std: Empirical standard deviation of the first ``t`` samples.

    Returns:
        The interval half-width at step ``t``.
    """
    _check_common(t, delta, value_range)
    delta_t = delta / (t * (t + 1))
    return empirical_bernstein_radius(t, delta_t, value_range, sample_std)


def empirical_bernstein_serfling_radius(
    n: int, population: int, delta: float, value_range: float, sample_std: float
) -> float:
    """Two-sided empirical Bernstein–Serfling radius (without replacement).

    Bardenet & Maillard's [8] variance-adaptive companion to the
    Hoeffding–Serfling inequality: with probability at least ``1 - delta``,

    ``|x_bar - mu| <= sigma_hat * sqrt(2 rho_n log(5/delta) / n)
                       + kappa * R * log(5/delta) / n``

    with ``kappa = 7/3 + 3/sqrt(2)`` and the same ``rho_n`` shrinkage as
    Hoeffding–Serfling. Tighter than H-S when the empirical standard
    deviation is well below the range; looser at very small ``n`` where
    the ``R/n`` correction term dominates. The `ablation-radius`
    experiment compares both inside Algorithm 1's output construction.

    Args:
        n: Number of samples drawn without replacement.
        population: Finite population size ``N``.
        delta: Failure probability of the two-sided interval.
        value_range: Range ``R`` of the observations.
        sample_std: Empirical standard deviation of the samples.

    Returns:
        The interval half-width ``I``.
    """
    _check_common(n, delta, value_range)
    _check_std(sample_std)
    rho = hoeffding_serfling_rho(n, population)
    log_term = math.log(5.0 / delta)
    kappa = 7.0 / 3.0 + 3.0 / math.sqrt(2.0)
    return sample_std * math.sqrt(2.0 * rho * log_term / n) + (
        kappa * value_range * log_term / n
    )


def clt_radius(n: int, delta: float, sample_std: float) -> float:
    """Normal-approximation radius used by online aggregation.

    ``I = z_{delta/2} * sigma_hat / sqrt(n)``. This is *not* a guaranteed
    bound: at small ``n`` or skewed data the coverage can fall below
    ``1 - delta`` (the paper's Figure 5 quantifies exactly this failure).

    Args:
        n: Number of samples.
        delta: Nominal two-sided failure probability.
        sample_std: Empirical standard deviation of the samples.

    Returns:
        The nominal interval half-width ``I``.
    """
    _check_common(n, delta, value_range=0.0)
    _check_std(sample_std)
    # Local import keeps scipy out of the module import path for callers that
    # only need the closed-form inequalities.
    from repro.stats.hypergeometric import z_score

    return z_score(delta) * sample_std / math.sqrt(n)


# ---------------------------------------------------------------------------
# Batch (array-broadcasting) variants.
#
# Each function accepts ndarray `n` / `value_range` / `sample_std` (any
# mutually broadcastable shapes; scalars work too) and returns the ndarray
# of radii that the scalar form would produce elementwise. `delta` and
# `population` stay scalar: one sweep prices every interval at a single
# failure probability over a single universe.
# ---------------------------------------------------------------------------


def hoeffding_radius_batch(n, delta: float, value_range) -> np.ndarray:
    """Broadcasted :func:`hoeffding_radius` over ndarray ``n``/``value_range``.

    Args:
        n: Sample sizes (scalar or ndarray).
        delta: Failure probability of the two-sided intervals.
        value_range: Observation ranges ``R`` (scalar or ndarray).

    Returns:
        The elementwise interval half-widths.
    """
    _check_common(n, delta, value_range)
    n = np.asarray(n, dtype=float)
    return np.asarray(value_range) * np.sqrt(math.log(2.0 / delta) / (2.0 * n))


def hoeffding_serfling_rho_batch(n, population: int) -> np.ndarray:
    """Broadcasted :func:`hoeffding_serfling_rho` over ndarray ``n``.

    Args:
        n: Sample sizes (scalar or ndarray); each must satisfy ``n <= N``.
        population: Finite population size ``N``.

    Returns:
        The elementwise ``rho_n`` factors in ``[0, 1]``.
    """
    if np.any(np.asarray(n) <= 0):
        raise ConfigurationError(f"sample size must be positive, got n={n}")
    _check_population(n, population)
    n = np.asarray(n, dtype=float)
    first = 1.0 - (n - 1.0) / population
    second = (1.0 - n / population) * (1.0 + 1.0 / n)
    return np.minimum(first, second)


def hoeffding_serfling_radius_batch(
    n, population: int, delta: float, value_range
) -> np.ndarray:
    """Broadcasted :func:`hoeffding_serfling_radius`.

    Args:
        n: Sample sizes drawn without replacement (scalar or ndarray).
        population: Finite population size ``N``.
        delta: Failure probability of the two-sided intervals.
        value_range: Observation ranges ``R`` (scalar or ndarray).

    Returns:
        The elementwise interval half-widths.
    """
    _check_common(n, delta, value_range)
    rho = hoeffding_serfling_rho_batch(n, population)
    n = np.asarray(n, dtype=float)
    return np.asarray(value_range) * np.sqrt(
        rho * math.log(2.0 / delta) / (2.0 * n)
    )


def empirical_bernstein_radius_batch(
    n, delta, value_range, sample_std
) -> np.ndarray:
    """Broadcasted :func:`empirical_bernstein_radius`.

    ``delta`` may itself be an ndarray here (unlike the other batch forms)
    because the union variant spends a different ``delta_t`` per prefix
    length; scalar callers are unaffected.

    Args:
        n: Sample sizes (scalar or ndarray).
        delta: Failure probabilities (scalar or ndarray in ``(0, 1)``).
        value_range: Observation ranges ``R`` (scalar or ndarray).
        sample_std: Empirical standard deviations (scalar or ndarray).

    Returns:
        The elementwise interval half-widths.
    """
    if np.any(np.asarray(n) <= 0):
        raise ConfigurationError(f"sample size must be positive, got n={n}")
    delta_arr = np.asarray(delta, dtype=float)
    if np.any(delta_arr <= 0.0) or np.any(delta_arr >= 1.0):
        raise ConfigurationError(f"delta must lie in (0, 1), got {delta}")
    if np.any(np.asarray(value_range) < 0.0):
        raise ConfigurationError(
            f"value range must be non-negative, got {value_range}"
        )
    _check_std(sample_std)
    n = np.asarray(n, dtype=float)
    log_term = np.log(3.0 / delta_arr)
    return np.asarray(sample_std) * np.sqrt(2.0 * log_term / n) + (
        3.0 * np.asarray(value_range) * log_term / n
    )


def empirical_bernstein_union_radius_batch(
    t, delta: float, value_range, sample_std
) -> np.ndarray:
    """Broadcasted :func:`empirical_bernstein_union_radius` over prefixes.

    Args:
        t: Prefix lengths (scalar or ndarray, 1-based).
        delta: Total failure probability shared across all steps.
        value_range: Observation ranges ``R`` (scalar or ndarray).
        sample_std: Per-prefix empirical standard deviations.

    Returns:
        The elementwise interval half-widths at each step.
    """
    _check_common(t, delta, value_range)
    t = np.asarray(t, dtype=float)
    delta_t = delta / (t * (t + 1.0))
    return empirical_bernstein_radius_batch(t, delta_t, value_range, sample_std)


def empirical_bernstein_serfling_radius_batch(
    n, population: int, delta: float, value_range, sample_std
) -> np.ndarray:
    """Broadcasted :func:`empirical_bernstein_serfling_radius`.

    Args:
        n: Sample sizes drawn without replacement (scalar or ndarray).
        population: Finite population size ``N``.
        delta: Failure probability of the two-sided intervals.
        value_range: Observation ranges ``R`` (scalar or ndarray).
        sample_std: Empirical standard deviations (scalar or ndarray).

    Returns:
        The elementwise interval half-widths.
    """
    _check_common(n, delta, value_range)
    _check_std(sample_std)
    rho = hoeffding_serfling_rho_batch(n, population)
    n = np.asarray(n, dtype=float)
    log_term = math.log(5.0 / delta)
    kappa = 7.0 / 3.0 + 3.0 / math.sqrt(2.0)
    return np.asarray(sample_std) * np.sqrt(2.0 * rho * log_term / n) + (
        kappa * np.asarray(value_range) * log_term / n
    )


def clt_radius_batch(n, delta: float, sample_std) -> np.ndarray:
    """Broadcasted :func:`clt_radius` (nominal, not guaranteed).

    Args:
        n: Sample sizes (scalar or ndarray).
        delta: Nominal two-sided failure probability.
        sample_std: Empirical standard deviations (scalar or ndarray).

    Returns:
        The elementwise nominal interval half-widths.
    """
    _check_common(n, delta, value_range=0.0)
    _check_std(sample_std)
    from repro.stats.hypergeometric import z_score

    n = np.asarray(n, dtype=float)
    return z_score(delta) * np.asarray(sample_std) / np.sqrt(n)
