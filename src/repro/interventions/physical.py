"""Physical-error interventions: real-world failure modes.

"Towards Causal Physical Error Discovery in Video Analytics Systems"
(PAPERS.md) catalogs the physical failures that silently violate profiled
regimes: occlusion, camera misalignment, weather and exposure shifts. Like
the adversarial family (:mod:`repro.interventions.adversarial`) these are
not operator-chosen degradations — the profile was measured on a healthy
camera, so their onset invalidates the Smokescreen bound. Each intervention
pairs with a detector-response model in :mod:`repro.detection.scenario`
that perturbs the specific detection stage the failure affects, rather than
scaling quality uniformly.

All three are non-random (systematic detection loss, plus phantom gain for
weather), the regime :mod:`repro.estimators.sentinel` monitors for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detection.scenario import (
    MisalignmentResponse,
    OcclusionResponse,
    ScenarioDetector,
    ScenarioResponse,
    WeatherExposureResponse,
)
from repro.detection.simulated import SimulatedDetector
from repro.errors import ConfigurationError
from repro.interventions.base import Intervention


@dataclass(frozen=True)
class Occlusion(Intervention):
    """A static obstruction covering part of the field of view.

    Attributes:
        coverage: Fraction of the field of view obstructed, ``[0, 1]``.
    """

    coverage: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.coverage <= 1.0:
            raise ConfigurationError(
                f"occlusion coverage must lie in [0, 1], got {self.coverage}"
            )

    @property
    def is_random(self) -> bool:
        return False

    @property
    def label(self) -> str:
        return f"occlusion {self.coverage:g}"

    def response(self) -> ScenarioResponse:
        """The matching detector-response model."""
        return OcclusionResponse(self.coverage)

    def attach(self, detector: SimulatedDetector) -> ScenarioDetector:
        """Wrap a clean detector with this failure's response model."""
        return ScenarioDetector(detector, self.response())


@dataclass(frozen=True)
class CameraMisalignment(Intervention):
    """The camera drifted, cropping one edge of the scene.

    Attributes:
        shift: Fraction of the field of view lost, ``[0, 1]``.
        edge_band: Width of the partially-cropped boundary band.
    """

    shift: float
    edge_band: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.shift <= 1.0:
            raise ConfigurationError(
                f"misalignment shift must lie in [0, 1], got {self.shift}"
            )
        if not 0.0 <= self.edge_band <= 1.0:
            raise ConfigurationError(
                f"edge band must lie in [0, 1], got {self.edge_band}"
            )

    @property
    def is_random(self) -> bool:
        return False

    @property
    def label(self) -> str:
        return f"misalignment {self.shift:g}"

    def response(self) -> ScenarioResponse:
        """The matching detector-response model."""
        return MisalignmentResponse(self.shift, self.edge_band)

    def attach(self, detector: SimulatedDetector) -> ScenarioDetector:
        """Wrap a clean detector with this failure's response model."""
        return ScenarioDetector(detector, self.response())


@dataclass(frozen=True)
class WeatherExposure(Intervention):
    """Rain, fog, or an exposure shift degrading the whole scene.

    Attributes:
        severity: Degradation strength in ``[0, 1]``.
        phantom_rate: Per-frame phantom probability at full severity.
    """

    severity: float
    phantom_rate: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.severity <= 1.0:
            raise ConfigurationError(
                f"weather severity must lie in [0, 1], got {self.severity}"
            )
        if not 0.0 <= self.phantom_rate <= 1.0:
            raise ConfigurationError(
                f"phantom rate must lie in [0, 1], got {self.phantom_rate}"
            )

    @property
    def is_random(self) -> bool:
        return False

    @property
    def label(self) -> str:
        return f"weather {self.severity:g}"

    def response(self) -> ScenarioResponse:
        """The matching detector-response model."""
        return WeatherExposureResponse(self.severity, self.phantom_rate)

    def attach(self, detector: SimulatedDetector) -> ScenarioDetector:
        """Wrap a clean detector with this failure's response model."""
        return ScenarioDetector(detector, self.response())
