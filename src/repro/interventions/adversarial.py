"""Adversarial interventions: hostile degradations nobody chose.

"Attacking Automatic Video Analysis Algorithms" (PAPERS.md) shows that a
handful of adversarially placed perturbations can flip detector output.
Unlike the paper's own interventions, these are *attacks*: they are applied
by an adversary, not the system operator, so the profiled bounds were never
measured under them. The matching detector-response models live in
:mod:`repro.detection.scenario`; :meth:`attach` wires an attack onto a
clean detector so the chaos sweep can simulate a compromised camera.

Both attacks are non-random — they systematically remove detections — which
is exactly the regime the bound-violation sentinel
(:mod:`repro.estimators.sentinel`) exists to catch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detection.scenario import (
    CompressionAttackResponse,
    ScenarioDetector,
    ScenarioResponse,
    TargetedCorruptionResponse,
)
from repro.detection.simulated import SimulatedDetector
from repro.errors import ConfigurationError
from repro.interventions.base import Intervention


@dataclass(frozen=True)
class TargetedFrameCorruption(Intervention):
    """Corruption concentrated on the highest-value frames.

    An attacker with a bounded perturbation budget zeroes the frames
    carrying the largest detected counts — the worst case for count
    aggregates, since the loss is maximally concentrated.

    Attributes:
        budget: Fraction of frames the attacker can corrupt, ``[0, 1]``.
    """

    budget: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.budget <= 1.0:
            raise ConfigurationError(
                f"corruption budget must lie in [0, 1], got {self.budget}"
            )

    @property
    def is_random(self) -> bool:
        return False

    @property
    def label(self) -> str:
        return f"targeted corruption {self.budget:g}"

    def response(self) -> ScenarioResponse:
        """The matching detector-response model."""
        return TargetedCorruptionResponse(self.budget)

    def attach(self, detector: SimulatedDetector) -> ScenarioDetector:
        """Wrap a clean detector with this attack's response model."""
        return ScenarioDetector(detector, self.response())


@dataclass(frozen=True)
class AdversarialCompression(Intervention):
    """Re-encoding tuned to erase borderline-confidence detections.

    Attributes:
        margin: Confidence margin above the detector threshold the attack
            can push under it, in ``[0, 1]``.
    """

    margin: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.margin <= 1.0:
            raise ConfigurationError(
                f"compression-attack margin must lie in [0, 1], got {self.margin}"
            )

    @property
    def is_random(self) -> bool:
        return False

    @property
    def label(self) -> str:
        return f"adversarial compression {self.margin:g}"

    def response(self) -> ScenarioResponse:
        """The matching detector-response model."""
        return CompressionAttackResponse(self.margin)

    def attach(self, detector: SimulatedDetector) -> ScenarioDetector:
        """Wrap a clean detector with this attack's response model."""
        return ScenarioDetector(detector, self.response())
