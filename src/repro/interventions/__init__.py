"""Destructive interventions (paper §2.1).

Interventions intentionally degrade video to meet system, privacy, and legal
goals, at some cost to analytical accuracy. The paper's taxonomy:

- **Random** interventions leave the distribution of model outputs unchanged
  — :class:`~repro.interventions.sampling.FrameSampling` (reduced frame
  sampling) is the canonical example.
- **Non-random** interventions can shift the output distribution —
  :class:`~repro.interventions.resolution.ResolutionReduction` and
  :class:`~repro.interventions.removal.ImageRemoval`, plus the extension
  operators :class:`~repro.interventions.quality.NoiseAddition` and
  :class:`~repro.interventions.quality.Compression` the paper mentions as
  further degradation methods.

Beyond the operator-chosen families, two *unchosen* families model hostile
and real-world degradations: :mod:`~repro.interventions.adversarial`
(targeted frame corruption, adversarial compression) and
:mod:`~repro.interventions.physical` (occlusion, camera misalignment,
weather/exposure shift). Their ``attach`` methods wrap a clean detector
with the matching response model from :mod:`repro.detection.scenario`; the
bound-violation sentinel (:mod:`repro.estimators.sentinel`) exists to
notice when one of them silently invalidates a profiled bound.

A full degradation setting is an
:class:`~repro.interventions.plan.InterventionPlan` — the paper's
``(f, p, c)`` triple (plus optional extension operators) — which knows how
to derive the eligible frame universe and draw a degraded sample from a
dataset.
"""

from repro.interventions.adversarial import (
    AdversarialCompression,
    TargetedFrameCorruption,
)
from repro.interventions.base import Intervention
from repro.interventions.physical import (
    CameraMisalignment,
    Occlusion,
    WeatherExposure,
)
from repro.interventions.plan import DegradedSample, InterventionPlan
from repro.interventions.quality import Compression, NoiseAddition
from repro.interventions.removal import ImageRemoval
from repro.interventions.resolution import ResolutionReduction
from repro.interventions.sampling import FrameSampling

__all__ = [
    "AdversarialCompression",
    "CameraMisalignment",
    "Compression",
    "DegradedSample",
    "FrameSampling",
    "ImageRemoval",
    "Intervention",
    "InterventionPlan",
    "NoiseAddition",
    "Occlusion",
    "ResolutionReduction",
    "TargetedFrameCorruption",
    "WeatherExposure",
]
