"""Destructive interventions (paper §2.1).

Interventions intentionally degrade video to meet system, privacy, and legal
goals, at some cost to analytical accuracy. The paper's taxonomy:

- **Random** interventions leave the distribution of model outputs unchanged
  — :class:`~repro.interventions.sampling.FrameSampling` (reduced frame
  sampling) is the canonical example.
- **Non-random** interventions can shift the output distribution —
  :class:`~repro.interventions.resolution.ResolutionReduction` and
  :class:`~repro.interventions.removal.ImageRemoval`, plus the extension
  operators :class:`~repro.interventions.quality.NoiseAddition` and
  :class:`~repro.interventions.quality.Compression` the paper mentions as
  further degradation methods.

A full degradation setting is an
:class:`~repro.interventions.plan.InterventionPlan` — the paper's
``(f, p, c)`` triple (plus optional extension operators) — which knows how
to derive the eligible frame universe and draw a degraded sample from a
dataset.
"""

from repro.interventions.base import Intervention
from repro.interventions.plan import DegradedSample, InterventionPlan
from repro.interventions.quality import Compression, NoiseAddition
from repro.interventions.removal import ImageRemoval
from repro.interventions.resolution import ResolutionReduction
from repro.interventions.sampling import FrameSampling

__all__ = [
    "Compression",
    "DegradedSample",
    "FrameSampling",
    "ImageRemoval",
    "Intervention",
    "InterventionPlan",
    "NoiseAddition",
    "ResolutionReduction",
]
