"""Extension interventions: noise addition and lossy compression.

The paper lists noise addition [65] and video compression [27] as further
degradation methods beyond its three examples. Both blur fine detail, which
in the simulated-detector model is equivalent to shrinking every object's
apparent size by a *quality factor* in ``(0, 1]``. They are non-random:
outputs shift systematically toward missed detections.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.interventions.base import Intervention


@dataclass(frozen=True)
class NoiseAddition(Intervention):
    """Additive image noise that masks detail (privacy against face
    recognition, paper reference [65]).

    Attributes:
        strength: Noise strength in ``[0, 1)``; the detector-visible quality
            factor is ``1 - strength``.
    """

    strength: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.strength < 1.0:
            raise ConfigurationError(
                f"noise strength must lie in [0, 1), got {self.strength}"
            )

    @property
    def is_random(self) -> bool:
        return False

    @property
    def label(self) -> str:
        return f"noise {self.strength:g}"

    @property
    def quality_factor(self) -> float:
        """Multiplier applied to apparent object sizes."""
        return 1.0 - self.strength


@dataclass(frozen=True)
class Compression(Intervention):
    """Lossy compression at a quality setting (paper reference [27]).

    Attributes:
        quality: Encoder quality in ``(0, 1]``; 1 is visually lossless. The
            detector-visible quality factor interpolates between 0.5 (at
            quality 0) and 1.0, reflecting that even harsh compression keeps
            coarse structure.
    """

    quality: float

    def __post_init__(self) -> None:
        if not 0.0 < self.quality <= 1.0:
            raise ConfigurationError(
                f"compression quality must lie in (0, 1], got {self.quality}"
            )

    @property
    def is_random(self) -> bool:
        return False

    @property
    def label(self) -> str:
        return f"compression q={self.quality:g}"

    @property
    def quality_factor(self) -> float:
        """Multiplier applied to apparent object sizes."""
        return 0.5 + 0.5 * self.quality
