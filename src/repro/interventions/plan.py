"""Composite degradation settings: the paper's ``(f, p, c)`` triple.

An :class:`InterventionPlan` bundles one optional intervention of each kind
(sampling fraction, processing resolution, restricted classes, plus optional
quality extensions) and knows how to derive a
:class:`DegradedSample` from a dataset — the frame indices a degraded query
may touch, the resolution/quality they are processed at, and the size of the
eligible universe the without-replacement bounds need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.detection.zoo import DetectorSuite
from repro.errors import InterventionError
from repro.interventions.quality import Compression, NoiseAddition
from repro.interventions.removal import ImageRemoval
from repro.interventions.resolution import ResolutionReduction
from repro.interventions.sampling import FrameSampling
from repro.stats.sampling import SampleDesign
from repro.video.dataset import VideoDataset
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution

#: Distinguishes "caller did not mention a suite" (legacy, validated late
#: in :meth:`InterventionPlan.eligible_indices`) from an explicit
#: ``suite=None`` (validated eagerly at construction).
_UNSET = object()


@dataclass(frozen=True)
class DegradedSample:
    """The frames a degraded query execution is allowed to process.

    Attributes:
        frame_indices: Sampled frame indices (draw order).
        universe_size: Size of the eligible frame universe the sample was
            drawn from (after image removal); the ``N`` of the
            without-replacement bounds.
        population_size: Total frames in the corpus; SUM/COUNT answers scale
            to this (the paper assumes the video length is known up front).
        resolution: Resolution the frames are processed at.
        quality: Image-quality multiplier from extension interventions.
    """

    frame_indices: np.ndarray
    universe_size: int
    population_size: int
    resolution: Resolution
    quality: float

    @property
    def size(self) -> int:
        """Number of sampled frames ``n``."""
        return int(self.frame_indices.size)


@dataclass(frozen=True)
class InterventionPlan:
    """A full degradation setting ``(f, p, c)`` plus optional extensions.

    ``None`` / empty members mean "knob at its loosest value": full
    sampling, native resolution, no removal.

    Attributes:
        sampling: Reduced-frame-sampling intervention, or None.
        resolution: Reduced-resolution intervention, or None.
        removal: Image-removal intervention, or None.
        extras: Extension interventions (noise, compression).
    """

    sampling: FrameSampling | None = None
    resolution: ResolutionReduction | None = None
    removal: ImageRemoval | None = None
    extras: tuple[NoiseAddition | Compression, ...] = field(default=())

    @classmethod
    def from_knobs(
        cls,
        f: float | None = None,
        p: int | Resolution | None = None,
        c: tuple[ObjectClass, ...] | list[ObjectClass] = (),
        suite: DetectorSuite | None | object = _UNSET,
    ) -> "InterventionPlan":
        """Build a plan from raw knob values, the paper's notation.

        Args:
            f: Sampling fraction, or None for full sampling.
            p: Resolution side (or a :class:`Resolution`), or None for
                native resolution.
            c: Restricted classes; empty for no removal.
            suite: The restricted-class detector suite that will execute
                any removal intervention. Pass it (even when it is None)
                to fail *at construction* when ``c`` requires a suite
                that is missing, instead of deep inside
                :meth:`eligible_indices` at draw time. Omitting the
                argument keeps the legacy late check for callers that
                resolve the suite later.

        Returns:
            The composed plan.

        Raises:
            InterventionError: Restricted classes were requested with an
                explicit ``suite=None``.
        """
        removal = ImageRemoval(tuple(c)) if c else None
        if removal is not None and suite is None:
            raise InterventionError(
                f"removal of {removal.label!r} requires a DetectorSuite "
                "for restricted-class flags, but none is configured — "
                "drop the removed classes or supply a suite"
            )
        sampling = FrameSampling(f) if f is not None else None
        if p is None:
            resolution = None
        elif isinstance(p, Resolution):
            resolution = ResolutionReduction(p)
        else:
            resolution = ResolutionReduction(Resolution(p))
        return cls(sampling=sampling, resolution=resolution, removal=removal)

    @property
    def fraction(self) -> float:
        """Effective sampling fraction ``f`` (1.0 when not sampling)."""
        return self.sampling.fraction if self.sampling else 1.0

    @property
    def is_random(self) -> bool:
        """True when the plan contains only random interventions.

        Only then are the basic §3.2 bounds valid without profile repair.
        Note a resolution knob set to the corpus's native resolution is not
        actually degrading; use :meth:`is_random_for` when the dataset is
        at hand to classify precisely.
        """
        non_random = (
            self.resolution is not None
            or self.removal is not None
            or bool(self.extras)
        )
        return not non_random

    def is_random_for(self, dataset: VideoDataset) -> bool:
        """Like :attr:`is_random`, treating a native-resolution knob as loose.

        A candidate grid includes the native resolution as its loosest
        resolution value; processing at native resolution changes nothing,
        so such plans are still random.

        Args:
            dataset: The corpus the plan will be applied to.

        Returns:
            True when the plan's only effective interventions are random.
        """
        if self.removal is not None or self.extras:
            return False
        if self.resolution is None:
            return True
        return self.resolution.resolution.side >= dataset.native_resolution.side

    @property
    def quality(self) -> float:
        """Combined quality factor of the extension interventions."""
        quality = 1.0
        for extra in self.extras:
            quality *= extra.quality_factor
        return quality

    def label(self) -> str:
        """Readable description, e.g. ``"f=0.1, resolution 256x256"``."""
        parts = [
            intervention.label
            for intervention in (self.sampling, self.resolution, self.removal)
            if intervention is not None
        ]
        parts.extend(extra.label for extra in self.extras)
        return ", ".join(parts) if parts else "no degradation"

    def effective_resolution(self, dataset: VideoDataset) -> Resolution:
        """The processing resolution under this plan for a given corpus."""
        if self.resolution is None:
            return dataset.native_resolution
        chosen = self.resolution.resolution
        if chosen.side > dataset.native_resolution.side:
            raise InterventionError(
                f"plan resolution {chosen} exceeds native "
                f"{dataset.native_resolution} of {dataset.name!r}"
            )
        return chosen

    def eligible_indices(
        self, dataset: VideoDataset, suite: DetectorSuite | None
    ) -> np.ndarray:
        """Indices of frames surviving image removal.

        Args:
            dataset: The corpus.
            suite: Restricted-class detectors; required when the plan has a
                removal intervention.

        Returns:
            Sorted frame indices the degraded execution may sample from.
        """
        if self.removal is None:
            return np.arange(dataset.frame_count)
        if suite is None:
            raise InterventionError(
                "image removal requires a DetectorSuite for restricted-class flags"
            )
        mask = self.removal.eligible_mask(dataset, suite)
        indices = np.nonzero(mask)[0]
        if indices.size == 0:
            raise InterventionError(
                f"removal of {self.removal.label!r} leaves no eligible frames "
                f"in {dataset.name!r}"
            )
        return indices

    def draw(
        self,
        dataset: VideoDataset,
        rng: np.random.Generator,
        suite: DetectorSuite | None = None,
    ) -> DegradedSample:
        """Draw the degraded sample for one trial.

        Frames are removed first (restricted classes), then sampled without
        replacement at the plan's fraction, and processed at the plan's
        resolution/quality.

        Args:
            dataset: The corpus.
            rng: Trial randomness for the frame sample.
            suite: Restricted-class detectors (needed only with removal).

        Returns:
            The degraded sample.
        """
        eligible = self.eligible_indices(dataset, suite)
        design = SampleDesign(eligible.size, self.fraction)
        chosen = eligible[rng.choice(eligible.size, size=design.size, replace=False)]
        return DegradedSample(
            frame_indices=chosen,
            universe_size=int(eligible.size),
            population_size=dataset.frame_count,
            resolution=self.effective_resolution(dataset),
            quality=self.quality,
        )
