"""The intervention interface.

Every destructive intervention declares whether it is *random* (leaves the
distribution of model outputs unchanged) or *non-random* (may shift it) —
the distinction that decides which estimation machinery applies
(paper Table 1).
"""

from __future__ import annotations

import abc


class Intervention(abc.ABC):
    """One destructive degradation operator."""

    @property
    @abc.abstractmethod
    def is_random(self) -> bool:
        """True when the intervention leaves the model-output distribution
        unchanged (paper §2.1): the basic error bounds of §3.2.1–3.2.4 are
        then valid without profile repair."""

    @property
    @abc.abstractmethod
    def label(self) -> str:
        """Short human-readable description, e.g. ``"sampling f=0.10"``."""

    def __str__(self) -> str:
        return self.label
