"""Reduced frame resolution (paper intervention example 2).

Downscaling frames hides objects that need high resolution to recognise
(faces, licence plates) and lightens storage/transmission. It is a
*non-random* intervention: detector recall depends on apparent object size,
so outputs on low-resolution frames are systematically shifted — the reason
the basic bounds need profile repair under this knob (paper §3.2.5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.interventions.base import Intervention
from repro.video.geometry import Resolution


@dataclass(frozen=True)
class ResolutionReduction(Intervention):
    """Process frames at a reduced square resolution.

    Attributes:
        resolution: Target processing resolution; must not exceed the
            dataset's native resolution (validated when applied).
    """

    resolution: Resolution

    @property
    def is_random(self) -> bool:
        """Resolution reduction systematically shifts model outputs."""
        return False

    @property
    def label(self) -> str:
        return f"resolution {self.resolution}"
