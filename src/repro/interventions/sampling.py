"""Reduced frame sampling (paper intervention example 1).

Randomly keeping only a fraction ``f`` of the query-specified frames
conceals time-related private information (daily life tracks) and reduces
file size for low-bandwidth or low-energy deployments. It is the paper's
canonical *random* intervention: the retained frames are an unbiased
without-replacement sample, so the distribution of model outputs is
unchanged and the §3.2 bounds apply directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.interventions.base import Intervention


@dataclass(frozen=True)
class FrameSampling(Intervention):
    """Keep a uniformly random fraction of frames, without replacement.

    Attributes:
        fraction: Sampling fraction ``f`` in ``(0, 1]``; 1 keeps everything.
    """

    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ConfigurationError(
                f"sample fraction must lie in (0, 1], got {self.fraction}"
            )

    @property
    def is_random(self) -> bool:
        """Frame sampling is the canonical random intervention."""
        return True

    @property
    def label(self) -> str:
        return f"sampling f={self.fraction:g}"
