"""Image removal of frames containing restricted classes (example 3).

Frames in which a restricted class ("person", "face", or any combination)
is detected are deleted outright for legal compliance and privacy. The
detection is done by the deployment's
:class:`~repro.detection.zoo.DetectorSuite` at native resolution, and the
per-frame containment flags are treated as stored prior information, exactly
as in the paper's §5.1.

This is a *non-random* intervention: if the restricted class is correlated
with the query's subject (people appear where cars do), the surviving frame
universe is biased and so is any estimate computed from it — the central
motivation for profile repair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.zoo import DetectorSuite
from repro.errors import ConfigurationError
from repro.interventions.base import Intervention
from repro.video.dataset import VideoDataset
from repro.video.frame import ObjectClass


@dataclass(frozen=True)
class ImageRemoval(Intervention):
    """Delete frames containing any of the restricted classes.

    Attributes:
        classes: The restricted classes; frames where the suite detects at
            least one instance of *any* of them are removed.
    """

    classes: tuple[ObjectClass, ...]

    def __post_init__(self) -> None:
        if not self.classes:
            raise ConfigurationError(
                "image removal requires at least one restricted class; "
                "omit the intervention instead of passing an empty tuple"
            )
        if len(set(self.classes)) != len(self.classes):
            raise ConfigurationError(f"duplicate restricted classes: {self.classes}")

    @property
    def is_random(self) -> bool:
        """Removal biases the frame universe whenever the restricted class
        correlates with the query subject."""
        return False

    @property
    def label(self) -> str:
        names = "+".join(cls.name.lower() for cls in self.classes)
        return f"remove {names}"

    def eligible_mask(self, dataset: VideoDataset, suite: DetectorSuite) -> np.ndarray:
        """Frames that survive the removal.

        Args:
            dataset: The corpus.
            suite: Restricted-class detectors (per-frame flags are computed
                at native resolution and cached by the detectors).

        Returns:
            Boolean array; True where the frame contains none of the
            restricted classes.
        """
        mask = np.ones(dataset.frame_count, dtype=bool)
        for object_class in self.classes:
            mask &= ~suite.presence(dataset, object_class)
        return mask
