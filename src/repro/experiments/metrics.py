"""Accuracy metrics of the evaluation (§5.1).

The relative error of the approximate result against the true result for
AVG/SUM/COUNT, and the relative error of the *true ranks* for MAX/MIN; the
query result without destructive interventions is the true result.
"""

from __future__ import annotations

import math

import numpy as np

from repro.estimators.base import Estimate
from repro.query.aggregates import aggregate_value
from repro.query.processor import QueryProcessor
from repro.query.query import AggregateQuery
from repro.stats.quantiles import relative_rank_error


def true_error(
    processor: QueryProcessor, query: AggregateQuery, approx_value: float
) -> float:
    """The paper's accuracy metric for an approximate answer.

    Args:
        processor: Processor with oracle access to the non-degraded video.
        query: The query.
        approx_value: The approximate answer to score.

    Returns:
        Relative value error (mean family) or relative rank error (MAX/MIN).
    """
    reference = processor.true_values(query)
    if not query.aggregate.is_extreme:
        truth = aggregate_value(reference, query.aggregate)
        if truth == 0.0:
            return math.inf if approx_value != 0.0 else 0.0
        return abs(approx_value - truth) / abs(truth)
    truth = aggregate_value(reference, query.aggregate, query.effective_quantile)
    return relative_rank_error(reference, approx_value, truth)


def violation_rate(bounds: np.ndarray, errors: np.ndarray) -> float:
    """Fraction of trials where the bound fell below the true error.

    This is Figure 5's y-axis for CLT, and the validity check for every
    other method (must stay below delta).

    Args:
        bounds: Per-trial error bounds.
        errors: Per-trial true errors.

    Returns:
        The violation fraction in [0, 1].
    """
    bounds = np.asarray(bounds, dtype=float)
    errors = np.asarray(errors, dtype=float)
    if bounds.size == 0:
        raise ValueError("no trials to score")
    return float(np.mean(bounds < errors))


def tightness_improvement(baseline_bound: float, our_bound: float) -> float:
    """How much tighter one bound is than another, as the paper reports it.

    "Our error bound can be up to 154.70% tighter": the baseline's excess
    over ours, relative to ours — ``(baseline - ours) / ours``.

    Args:
        baseline_bound: The competing method's bound.
        our_bound: Smokescreen's bound.

    Returns:
        The relative improvement (1.547 means 154.7% tighter); infinity
        when our bound is zero and the baseline's is not.
    """
    if our_bound == 0.0:
        return math.inf if baseline_bound > 0.0 else 0.0
    return (baseline_bound - our_bound) / our_bound


def mean_finite(values: list[float]) -> float:
    """Mean of the finite entries (baselines can produce infinities)."""
    finite = [value for value in values if math.isfinite(value)]
    if not finite:
        return math.inf
    return float(np.mean(finite))


def summarise_trials(estimates: list[Estimate], errors: list[float]) -> dict[str, float]:
    """Per-method trial summary: mean bound, mean true error, violations.

    Args:
        estimates: The trial estimates of one method at one setting.
        errors: Matching true errors.

    Returns:
        ``{"bound": ..., "true_error": ..., "violation_rate": ...}``.
    """
    bounds = [estimate.error_bound for estimate in estimates]
    return {
        "bound": mean_finite(bounds),
        "true_error": float(np.mean(errors)),
        "violation_rate": violation_rate(np.array(bounds), np.array(errors)),
    }
