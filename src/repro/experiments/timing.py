"""§5.3.1: profile generation time.

The paper's accounting: for the YOLOv4 AVG query on UA-DETRAC with ten
resolution candidates and a maximum sample fraction of 4% (the determined
correction fraction), YOLOv4 is invoked 6,084 times (4% of 15,210 frames at
each of the ten resolutions) for a total of about three minutes, while the
estimation stage costs only tens of milliseconds per degradation setting —
model time dominates.

We count invocations exactly with the profiler's ledger (including the
reuse strategy), price them with the analytic cost model, and measure the
estimation stage's real wall time.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.candidates import CandidateGrid, fraction_candidates
from repro.core.profiler import DegradationProfiler
from repro.experiments.reporting import ExperimentResult
from repro.experiments.workloads import UA_DETRAC, Workload, shared_suite
from repro.query.aggregates import Aggregate
from repro.query.processor import QueryProcessor
from repro.system import telemetry
from repro.system.costs import CostModel, InvocationLedger
from repro.system.observe import ledger as run_ledger
from repro.system.executor import ExecutorConfig, ParallelExecutor
from repro.video.geometry import resolution_grid


def run_timing(
    frame_count: int | None = None,
    max_fraction: float = 0.04,
    resolution_count: int = 10,
    seed: int = 0,
    workers: int | str = 1,
    ledger: InvocationLedger | None = None,
    trials: int = 1,
    vectorized: bool = True,
) -> ExperimentResult:
    """Regenerate the §5.3.1 timing accounting.

    Args:
        frame_count: Optional reduced corpus size.
        max_fraction: Highest sample fraction of the sweep (the paper uses
            the determined correction fraction, 4%).
        resolution_count: Number of resolution candidates (paper: 10).
        seed: Randomness seed.
        workers: Worker processes for the profile sweep (``"auto"`` defers
            to the host and workload size).
        ledger: Optional caller-owned ledger; lets benchmarks inspect the
            merged invocation counts machine-readably (a warm persistent
            detector cache yields a total of zero).
        trials: Sampling trials per profiled setting (the paper's
            accounting uses 1; benchmarks raise it to weight the
            estimation stage).
        vectorized: Price all trials through the batch estimator kernels
            (the default); False keeps the per-trial loops.

    Returns:
        Per-resolution invocation counts plus the totals and time split.
    """
    workload = Workload(UA_DETRAC, Aggregate.AVG, frame_count)
    query = workload.query()
    processor = QueryProcessor(shared_suite())
    ledger = ledger if ledger is not None else InvocationLedger()
    profiler = DegradationProfiler(
        processor, trials=trials, ledger=ledger, vectorized=vectorized
    )

    fractions = fraction_candidates(step=0.01, maximum=max_fraction)
    resolutions = tuple(
        resolution_grid(query.dataset.native_resolution, resolution_count)
    )
    grid = CandidateGrid(
        fractions=fractions, resolutions=resolutions, removals=((),)
    )

    start = time.perf_counter()
    with telemetry.span(
        "experiment.timing",
        frames=query.dataset.frame_count,
        resolutions=len(resolutions),
        trials=trials,
    ):
        cube = profiler.generate_hypercube_seeded(
            query,
            grid,
            root=seed,
            executor=ParallelExecutor(ExecutorConfig(workers=workers)),
        )
    estimation_wall_seconds = time.perf_counter() - start

    settings = int(np.isfinite(cube.bounds).sum())
    cost_model = CostModel(
        seconds_per_frame_at_native=0.030,
        native_side=query.dataset.native_resolution.side,
    )
    by_resolution = ledger.by_resolution()

    knobs = [float(side) for side in sorted(by_resolution)]
    series = {
        "invocations": [float(by_resolution[int(side)]) for side in knobs],
        "model_seconds": [
            by_resolution[int(side)] * cost_model.seconds_per_frame(int(side))
            for side in knobs
        ],
    }
    total_model_seconds = cost_model.model_seconds(ledger)
    estimation_seconds = settings * cost_model.estimation_seconds_per_setting

    run_ledger.annotate(
        model_invocations=ledger.total,
        dataset=query.dataset.name,
        settings_priced=settings,
        simulated_model_seconds=round(total_model_seconds, 3),
        estimation_wall_seconds=round(estimation_wall_seconds, 6),
    )

    return ExperimentResult(
        title="§5.3.1: profile generation time accounting (YOLOv4-like, UA-DETRAC)",
        knob_label="resolution",
        knobs=knobs,
        series=series,
        notes=(
            f"total model invocations: {ledger.total} "
            f"(paper: 6084 at 4% of 15210 frames across 10 resolutions)",
            f"simulated model time: {total_model_seconds:.1f}s "
            f"(paper: ~3 minutes)",
            f"priced estimation stage: {estimation_seconds:.2f}s over "
            f"{settings} settings (tens of ms each)",
            f"measured estimation wall time (this run, simulated detectors): "
            f"{estimation_wall_seconds:.3f}s",
        ),
    )
