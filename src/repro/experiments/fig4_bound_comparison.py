"""Figure 4: true error and error bound per method vs sample fraction.

The paper's central comparison (§5.2.1): for each aggregate type and
dataset, the true relative error of the estimated result (dashed) and the
error bound (solid) of Smokescreen and the baselines, as the reduced-frame-
sampling fraction varies. Expected shape:

- every method's true error and bound fall toward zero as f grows;
- Smokescreen's bound is below EBGS / Hoeffding / Hoeffding-Serfling
  everywhere (up to ~155% tighter);
- CLT's bound is even lower but not trustworthy (see Figure 5);
- for MAX, Smokescreen beats Stein at small fractions.
"""

from __future__ import annotations

from repro.experiments.reporting import ExperimentResult
from repro.experiments.trials import fraction_grid, run_method_trials_seeded
from repro.experiments.workloads import (
    FIGURE4_END_FRACTIONS,
    Workload,
    shared_suite,
)
from repro.interventions.plan import InterventionPlan
from repro.query.aggregates import Aggregate
from repro.query.processor import QueryProcessor
from repro.system.executor import ExecutorConfig, ParallelExecutor
from repro.system.observe import ledger as run_ledger

MEAN_METHODS = ("smokescreen", "ebgs", "hoeffding", "hoeffding-serfling", "clt")
QUANTILE_METHODS = ("smokescreen", "stein")


def run_fig4(
    dataset_name: str,
    aggregate: Aggregate,
    trials: int = 100,
    frame_count: int | None = None,
    fractions: tuple[float, ...] | None = None,
    seed: int = 0,
    grid_points: int = 8,
    workers: int | str = 1,
    vectorized: bool = True,
) -> ExperimentResult:
    """Regenerate one Figure 4 panel (one dataset x one aggregate).

    Trials use per-``(fraction, trial)`` seed streams, so the panel is a
    pure function of ``seed`` — identical for any worker count.

    Args:
        dataset_name: ``"night-street"`` or ``"ua-detrac"``.
        aggregate: AVG, SUM, COUNT or MAX.
        trials: Independent sampling trials per fraction (paper: 100).
        frame_count: Optional reduced corpus size.
        fractions: Explicit fraction grid; defaults to a geometric grid
            ending at the paper's per-panel cut-off.
        seed: Trial randomness seed.
        grid_points: Grid size when ``fractions`` is defaulted.
        workers: Worker processes for the trial loops (``"auto"`` defers
            to the host and workload size).
        vectorized: Price trials with the batch estimator kernels (the
            default); False keeps the per-trial loops.

    Returns:
        Series ``<method>_bound`` and ``<method>_err`` per fraction.
    """
    workload = Workload(dataset_name, aggregate, frame_count)
    query = workload.query()
    processor = QueryProcessor(shared_suite())
    executor = ParallelExecutor(ExecutorConfig(workers=workers))

    if fractions is None:
        end = FIGURE4_END_FRACTIONS[(dataset_name, aggregate)]
        fractions = fraction_grid(end, grid_points)
    methods = MEAN_METHODS if aggregate.is_mean_family else QUANTILE_METHODS

    series: dict[str, list[float]] = {}
    for method in methods:
        series[f"{method}_bound"] = []
        series[f"{method}_err"] = []
    for setting_index, fraction in enumerate(fractions):
        plan = InterventionPlan.from_knobs(f=fraction)
        summaries = run_method_trials_seeded(
            processor, query, plan, methods, trials, seed,
            setting_index=setting_index, executor=executor,
            vectorized=vectorized,
        )
        for method, summary in summaries.items():
            series[f"{method}_bound"].append(summary.mean_bound)
            series[f"{method}_err"].append(summary.mean_true_error)

    run_ledger.annotate(dataset=dataset_name)
    run_ledger.record_event(
        "fig4.panel",
        dataset=dataset_name,
        aggregate=aggregate.name,
        fractions=len(fractions),
        smokescreen_tightest_bound=round(
            min(series["smokescreen_bound"]), 6
        ),
    )

    return ExperimentResult(
        title=(
            f"Figure 4 panel: {workload.name} — true error and bounds vs "
            f"sample fraction ({trials} trials)"
        ),
        knob_label="fraction",
        knobs=list(fractions),
        series=series,
        notes=(
            "solid analogue: *_bound columns; dashed analogue: *_err columns",
            "no correction set (matching the paper's Figure 4 setting)",
        ),
    )
