"""Figure 7: the abnormal error spike at 384x384.

Applying YOLOv4 to night-street video and varying only the frame
resolution, the paper finds the relative error at 384x384 is *larger* than
at lower resolutions — a counter-intuitive network artifact. A profile
exposes it so an administrator never unknowingly picks the bad setting.
"""

from __future__ import annotations

import numpy as np

from repro.core.correction import CorrectionSet
from repro.detection.zoo import YOLO_ANOMALY_SIDE, yolo_v4_like
from repro.experiments.reporting import ExperimentResult
from repro.experiments.trials import run_repair_trials
from repro.experiments.workloads import NIGHT_STREET, load_dataset, shared_suite
from repro.interventions.plan import InterventionPlan
from repro.query.aggregates import Aggregate
from repro.query.processor import QueryProcessor
from repro.query.query import AggregateQuery
from repro.stats.sampling import ProgressiveSampler


def run_fig7(
    trials: int = 100,
    frame_count: int | None = None,
    seed: int = 0,
    correction_fraction: float = 0.06,
) -> ExperimentResult:
    """Regenerate Figure 7: AVG error vs resolution with the 384 anomaly.

    Args:
        trials: Sampling trials per resolution (paper: 100).
        frame_count: Optional reduced corpus size.
        seed: Trial randomness seed.
        correction_fraction: Correction-set size (the night-street AVG
            default from §5.2.2).

    Returns:
        Bounds (w/ and w/o correction) and the true error per resolution,
        including the anomalous 384.
    """
    dataset = load_dataset(NIGHT_STREET, frame_count)
    model = yolo_v4_like()
    query = AggregateQuery(dataset, model, Aggregate.AVG)
    processor = QueryProcessor(shared_suite())
    rng = np.random.default_rng(seed)

    # Build the correction set against *this* query (YOLO on night-street),
    # not the workload default (Mask R-CNN).
    correction_query_values = processor.true_values(query)
    size = max(1, round(dataset.frame_count * correction_fraction))
    sampler = ProgressiveSampler(dataset.frame_count, rng)
    indices = sampler.prefix(size)
    correction = CorrectionSet(
        frame_indices=indices,
        values=correction_query_values[indices],
        error_bound=float("nan"),
        trace=((size, float("nan")),),
    )

    sides = [128, 192, 256, 320, YOLO_ANOMALY_SIDE, 448, 512, 576, 640]
    sides = [side for side in sides if side <= dataset.native_resolution.side]

    series: dict[str, list[float]] = {
        "bound_no_correction": [],
        "bound_with_correction": [],
        "true_error": [],
    }
    for side in sides:
        plan = InterventionPlan.from_knobs(f=0.5, p=side)
        summary = run_repair_trials(
            processor, query, plan, correction.values, trials,
            np.random.default_rng(seed + 1),
        )
        series["bound_no_correction"].append(summary.uncorrected_bound)
        series["bound_with_correction"].append(summary.corrected_bound)
        series["true_error"].append(summary.true_error)

    return ExperimentResult(
        title=(
            "Figure 7: YOLOv4-like AVG on night-street vs resolution — "
            f"anomaly at {YOLO_ANOMALY_SIDE} ({trials} trials)"
        ),
        knob_label="resolution",
        knobs=[float(side) for side in sides],
        series=series,
        notes=(
            f"expected: true error at {YOLO_ANOMALY_SIDE} exceeds both "
            "neighbouring resolutions",
            "the corrected bound tracks the anomaly so profiles expose it",
        ),
    )
