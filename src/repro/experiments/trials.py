"""Shared trial machinery for the figure experiments.

Every §5 experiment repeats its workload over independent sampling trials
(100 in the paper) and averages. The helper here draws one degraded sample
per trial and feeds the *same* sample to every method, which is both faster
(model outputs are cached) and a fairer comparison (methods differ only in
their estimation, not their luck).

The ``*_seeded`` variants give every trial its own
:func:`~repro.system.executor.child_rng` stream keyed on
``(setting_index, trial)``, which makes the summaries a pure function of
the root seed — independent of trial order and therefore safe to fan out
over a :class:`~repro.system.executor.ParallelExecutor` in contiguous
trial chunks (workers return per-trial arrays; the reduction always runs
over the full concatenated array, so chunk boundaries are invisible).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.estimators.base import Estimate
from repro.estimators.dispatch import estimate_batch, estimate_query
from repro.experiments.metrics import true_error
from repro.interventions.plan import InterventionPlan
from repro.query.processor import QueryProcessor
from repro.query.query import AggregateQuery
from repro.stats.prefix_moments import PrefixMoments
from repro.system.executor import (
    ParallelExecutor,
    RootSeed,
    child_rng,
    normalize_root,
    trial_chunks,
)


@dataclass(frozen=True)
class TrialSummary:
    """Per-method summary of one degradation setting over many trials.

    Attributes:
        mean_bound: Mean (finite) error bound across trials.
        mean_true_error: Mean true error of the method's estimates.
        violation_rate: Fraction of trials with bound below true error.
    """

    mean_bound: float
    mean_true_error: float
    violation_rate: float


def run_method_trials(
    processor: QueryProcessor,
    query: AggregateQuery,
    plan: InterventionPlan,
    methods: tuple[str, ...],
    trials: int,
    rng: np.random.Generator,
) -> dict[str, TrialSummary]:
    """Run one degradation setting for several methods over shared trials.

    Args:
        processor: The query processor.
        query: The query.
        plan: The degradation setting.
        methods: Estimator names to score (all must fit the aggregate).
        trials: Number of independent sampling trials.
        rng: Trial randomness.

    Returns:
        Per-method trial summaries.
    """
    per_method = _method_trial_arrays(
        processor, query, plan, methods, [rng] * trials
    )
    return _summarize_method_trials(methods, per_method)


def _method_trial_arrays(
    processor: QueryProcessor,
    query: AggregateQuery,
    plan: InterventionPlan,
    methods: tuple[str, ...],
    rngs: list[np.random.Generator],
    vectorized: bool = False,
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Per-trial (bounds, errors) arrays per method, one trial per rng.

    With ``vectorized`` the trial executions stack into one prefix-moment
    matrix and each method is priced once across all trials by
    :func:`repro.estimators.dispatch.estimate_batch` (estimation consumes
    no randomness, so executing every trial up front draws the same
    samples as the interleaved loop). Trials whose executions differ in
    shape — a plan with trial-varying eligible sets — fall back to the
    loop.
    """
    executions = [processor.execute(query, plan, rng) for rng in rngs]
    if vectorized and executions:
        sizes = {execution.values.size for execution in executions}
        universes = {execution.universe_size for execution in executions}
        populations = {execution.population_size for execution in executions}
        if len(sizes) == len(universes) == len(populations) == 1 and 0 not in sizes:
            moments = PrefixMoments(
                np.stack([execution.values for execution in executions])
            )
            per_method: dict[str, tuple[np.ndarray, np.ndarray]] = {}
            for method in methods:
                batch = estimate_batch(
                    query,
                    moments,
                    next(iter(sizes)),
                    next(iter(universes)),
                    next(iter(populations)),
                    method,
                )
                per_method[method] = (
                    batch.error_bounds,
                    np.array(
                        [
                            true_error(processor, query, float(value))
                            for value in batch.values
                        ]
                    ),
                )
            return per_method
    bounds: dict[str, list[float]] = {method: [] for method in methods}
    errors: dict[str, list[float]] = {method: [] for method in methods}
    for execution in executions:
        for method in methods:
            estimate: Estimate = estimate_query(query, execution, method)
            bounds[method].append(estimate.error_bound)
            errors[method].append(true_error(processor, query, estimate.value))
    return {
        method: (np.array(bounds[method]), np.array(errors[method]))
        for method in methods
    }


def _summarize_method_trials(
    methods: tuple[str, ...],
    per_method: dict[str, tuple[np.ndarray, np.ndarray]],
) -> dict[str, TrialSummary]:
    """Reduce per-trial arrays to the per-method summaries."""
    summaries: dict[str, TrialSummary] = {}
    for method in methods:
        method_bounds, method_errors = per_method[method]
        finite = method_bounds[np.isfinite(method_bounds)]
        summaries[method] = TrialSummary(
            mean_bound=float(finite.mean()) if finite.size else float("inf"),
            mean_true_error=float(method_errors.mean()),
            violation_rate=float(np.mean(method_bounds < method_errors)),
        )
    return summaries


@dataclass(frozen=True)
class MethodTrialsChunk:
    """Picklable work unit: a contiguous run of seeded method trials.

    Attributes:
        processor: The query processor.
        query: The query.
        plan: The degradation setting.
        methods: Estimator names to score.
        root: Root entropy of the seed stream.
        setting_index: First spawn-key coordinate of the setting.
        trial_indices: The trial coordinates this chunk evaluates.
        vectorized: Price the chunk's trials with the batch kernels.
    """

    processor: QueryProcessor
    query: AggregateQuery
    plan: InterventionPlan
    methods: tuple[str, ...]
    root: tuple[int, ...]
    setting_index: int
    trial_indices: tuple[int, ...]
    vectorized: bool = True


def run_method_trials_chunk(
    chunk: MethodTrialsChunk,
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Execute one chunk of seeded method trials (worker entry point)."""
    rngs = [
        child_rng(chunk.root, chunk.setting_index, t) for t in chunk.trial_indices
    ]
    return _method_trial_arrays(
        chunk.processor,
        chunk.query,
        chunk.plan,
        chunk.methods,
        rngs,
        vectorized=chunk.vectorized,
    )


def run_method_trials_seeded(
    processor: QueryProcessor,
    query: AggregateQuery,
    plan: InterventionPlan,
    methods: tuple[str, ...],
    trials: int,
    root: RootSeed,
    setting_index: int = 0,
    executor: ParallelExecutor | None = None,
    vectorized: bool = True,
) -> dict[str, TrialSummary]:
    """Like :func:`run_method_trials`, with per-trial seed streams.

    Trial ``t`` draws its sample from ``child_rng(root, setting_index,
    t)``, so summaries are bit-identical for any worker count.

    Args:
        processor: The query processor.
        query: The query.
        plan: The degradation setting.
        methods: Estimator names to score (all must fit the aggregate).
        trials: Number of independent sampling trials.
        root: Root entropy of the seed stream.
        setting_index: Distinguishes settings sharing one root (e.g. the
            fractions of a Figure 4 curve).
        executor: Execution substrate; defaults to serial.
        vectorized: Price trials with the batch kernels (the default);
            False keeps the per-trial loop for differential testing.

    Returns:
        Per-method trial summaries.
    """
    executor = executor or ParallelExecutor()
    methods = tuple(methods)
    root_t = normalize_root(root)
    payloads = [
        MethodTrialsChunk(
            processor=processor,
            query=query,
            plan=plan,
            methods=methods,
            root=root_t,
            setting_index=setting_index,
            trial_indices=tuple(chunk),
            vectorized=vectorized,
        )
        for chunk in trial_chunks(trials, executor.worker_count(trials))
    ]
    results = executor.map(run_method_trials_chunk, payloads)
    merged = {
        method: (
            np.concatenate([result[method][0] for result in results]),
            np.concatenate([result[method][1] for result in results]),
        )
        for method in methods
    }
    return _summarize_method_trials(methods, merged)


@dataclass(frozen=True)
class RepairTrialSummary:
    """Averages of one degradation setting's repair comparison.

    Attributes:
        uncorrected_bound: Mean basic bound (possibly invalid under
            non-random interventions).
        corrected_bound: Mean Algorithm 3 bound.
        true_error: Mean per-trial true error of the degraded estimates.
    """

    uncorrected_bound: float
    corrected_bound: float
    true_error: float


def run_repair_trials(
    processor: QueryProcessor,
    query: AggregateQuery,
    plan: InterventionPlan,
    correction_values: np.ndarray,
    trials: int,
    rng: np.random.Generator,
) -> RepairTrialSummary:
    """Compare the basic and corrected bounds over shared trials.

    Per trial: draw the degraded sample, compute the basic Smokescreen
    estimate and the Algorithm 3 corrected bound against a *fixed*
    correction set, and score the estimate's per-trial true error. When the
    plan is effectively random, the corrected bound reported is the tighter
    of the two (the §5.2.2 policy).

    Args:
        processor: The query processor.
        query: The query.
        plan: The degradation setting.
        correction_values: The correction set's values (native resolution).
        trials: Number of independent sampling trials.
        rng: Trial randomness.

    Returns:
        The averaged summary.
    """
    uncorrected, corrected, error = _repair_trial_arrays(
        processor, query, plan, correction_values, [rng] * trials
    )
    return RepairTrialSummary(
        uncorrected_bound=float(uncorrected.mean()),
        corrected_bound=float(corrected.mean()),
        true_error=float(error.mean()),
    )


def _repair_trial_arrays(
    processor: QueryProcessor,
    query: AggregateQuery,
    plan: InterventionPlan,
    correction_values: np.ndarray,
    rngs: list[np.random.Generator],
    vectorized: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-trial (capped uncorrected, capped corrected, error) arrays.

    With ``vectorized``, mean-family and variance settings stack the trial
    samples into a prefix matrix, price every trial's basic estimate with
    one batch call, and broadcast the Equation (12) correction over the
    per-trial answers; quantile settings keep the per-trial loop (their
    estimator and Equation (13) have no batch form).
    """
    from repro.estimators.quantile import SmokescreenQuantileEstimator
    from repro.estimators.repair import ProfileRepair
    from repro.estimators.smokescreen import SmokescreenMeanEstimator
    from repro.estimators.variance import SmokescreenVarianceEstimator

    mean_estimator = SmokescreenMeanEstimator()
    quantile_estimator = SmokescreenQuantileEstimator()
    variance_estimator = SmokescreenVarianceEstimator()
    population = query.dataset.frame_count
    is_random = plan.is_random_for(query.dataset)

    if query.aggregate.is_mean_family:
        correction_estimate = mean_estimator.estimate(
            correction_values, population, query.delta,
            value_range=query.known_value_range,
        )
    elif query.aggregate.is_variance:
        correction_estimate = variance_estimator.estimate(
            correction_values, population, query.delta
        )
    else:
        correction_estimate = quantile_estimator.estimate(
            correction_values,
            population,
            query.effective_quantile,
            query.delta,
            query.aggregate,
        )

    samples = [plan.draw(query.dataset, rng, processor.suite) for rng in rngs]
    value_arrays = [
        processor.values_for_sample(query, sample) for sample in samples
    ]

    if (
        vectorized
        and samples
        and (query.aggregate.is_mean_family or query.aggregate.is_variance)
        and len({array.size for array in value_arrays}) == 1
        and len({sample.universe_size for sample in samples}) == 1
        and value_arrays[0].size > 0
    ):
        estimator = (
            variance_estimator if query.aggregate.is_variance else mean_estimator
        )
        moments = PrefixMoments(np.stack(value_arrays))
        batch = estimator.estimate_batch(
            moments,
            value_arrays[0].size,
            samples[0].universe_size,
            query.delta,
            value_range=query.known_value_range,
        )
        corrected = ProfileRepair.corrected_mean_bound_batch(
            batch.values, correction_estimate
        )
        if is_random:
            corrected = np.minimum(batch.error_bounds, corrected)
        errors = np.array(
            [
                true_error(processor, query, float(value))
                for value in batch.values
            ]
        )
        return (
            np.minimum(batch.error_bounds, BOUND_DISPLAY_CAP),
            np.minimum(corrected, BOUND_DISPLAY_CAP),
            errors,
        )

    uncorrected_list: list[float] = []
    corrected_list: list[float] = []
    error_list: list[float] = []
    for trial, sample in enumerate(samples):
        values = value_arrays[trial]
        if query.aggregate.is_mean_family or query.aggregate.is_variance:
            estimator = (
                variance_estimator
                if query.aggregate.is_variance
                else mean_estimator
            )
            basic = estimator.estimate(
                values, sample.universe_size, query.delta,
                value_range=query.known_value_range,
            )
            corrected = ProfileRepair.corrected_mean_bound(
                basic.value, correction_estimate
            )
        else:
            basic = quantile_estimator.estimate(
                values,
                sample.universe_size,
                query.effective_quantile,
                query.delta,
                query.aggregate,
            )
            corrected = ProfileRepair.corrected_quantile_bound(
                basic.value,
                correction_estimate.value,
                correction_values,
                query.effective_quantile,
                correction_estimate,
            )
        if is_random:
            corrected = min(basic.error_bound, corrected)
        uncorrected_list.append(capped(basic.error_bound))
        corrected_list.append(capped(corrected))
        error_list.append(true_error(processor, query, basic.value))
    return (
        np.array(uncorrected_list),
        np.array(corrected_list),
        np.array(error_list),
    )


@dataclass(frozen=True)
class RepairTrialsChunk:
    """Picklable work unit: a contiguous run of seeded repair trials.

    Attributes:
        processor: The query processor.
        query: The query.
        plan: The degradation setting.
        correction_values: The correction set's values.
        root: Root entropy of the seed stream.
        setting_index: First spawn-key coordinate of the setting.
        trial_indices: The trial coordinates this chunk evaluates.
        vectorized: Price the chunk's trials with the batch kernels.
    """

    processor: QueryProcessor
    query: AggregateQuery
    plan: InterventionPlan
    correction_values: np.ndarray
    root: tuple[int, ...]
    setting_index: int
    trial_indices: tuple[int, ...]
    vectorized: bool = True


def run_repair_trials_chunk(
    chunk: RepairTrialsChunk,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Execute one chunk of seeded repair trials (worker entry point)."""
    rngs = [
        child_rng(chunk.root, chunk.setting_index, t) for t in chunk.trial_indices
    ]
    return _repair_trial_arrays(
        chunk.processor,
        chunk.query,
        chunk.plan,
        chunk.correction_values,
        rngs,
        vectorized=chunk.vectorized,
    )


def run_repair_trials_seeded(
    processor: QueryProcessor,
    query: AggregateQuery,
    plan: InterventionPlan,
    correction_values: np.ndarray,
    trials: int,
    root: RootSeed,
    setting_index: int = 0,
    executor: ParallelExecutor | None = None,
    vectorized: bool = True,
) -> RepairTrialSummary:
    """Like :func:`run_repair_trials`, with per-trial seed streams.

    Args:
        processor: The query processor.
        query: The query.
        plan: The degradation setting.
        correction_values: The correction set's values (native resolution).
        trials: Number of independent sampling trials.
        root: Root entropy of the seed stream.
        setting_index: Distinguishes settings sharing one root (e.g. the
            knobs of a Figure 6 row).
        executor: Execution substrate; defaults to serial.
        vectorized: Price trials with the batch kernels (the default);
            False keeps the per-trial loop for differential testing.

    Returns:
        The averaged summary (bit-identical for any worker count).
    """
    executor = executor or ParallelExecutor()
    root_t = normalize_root(root)
    payloads = [
        RepairTrialsChunk(
            processor=processor,
            query=query,
            plan=plan,
            correction_values=correction_values,
            root=root_t,
            setting_index=setting_index,
            trial_indices=tuple(chunk),
            vectorized=vectorized,
        )
        for chunk in trial_chunks(trials, executor.worker_count(trials))
    ]
    results = executor.map(run_repair_trials_chunk, payloads)
    uncorrected = np.concatenate([r[0] for r in results])
    corrected = np.concatenate([r[1] for r in results])
    error = np.concatenate([r[2] for r in results])
    return RepairTrialSummary(
        uncorrected_bound=float(uncorrected.mean()),
        corrected_bound=float(corrected.mean()),
        true_error=float(error.mean()),
    )


#: Display cap for degenerate bounds. A corrected bound is infinite when
#: the correction estimate itself degenerates (its interval touches zero);
#: the estimator reports that honestly, and the experiment tables clamp it
#: here so averages stay readable.
BOUND_DISPLAY_CAP = 5.0


def capped(bound: float, cap: float = BOUND_DISPLAY_CAP) -> float:
    """Clamp a (possibly infinite) bound for table averaging."""
    return min(bound, cap)


def fraction_grid(end_fraction: float, points: int = 8) -> tuple[float, ...]:
    """A sweep grid ending at a figure's cut-off fraction.

    The paper plots each Figure 4 curve from a very small fraction up to
    the point where it flattens; we use a geometric grid so the small-n
    region (where the methods differ most) is well resolved.

    Args:
        end_fraction: The largest fraction (the paper's cut-off).
        points: Number of grid points.

    Returns:
        Ascending fractions ending at ``end_fraction``.
    """
    start = end_fraction / 12.0
    grid = np.geomspace(start, end_fraction, points)
    return tuple(float(f) for f in grid)
