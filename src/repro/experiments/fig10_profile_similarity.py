"""Figure 10: profiles transfer between visually similar videos (§5.3.2).

Setup: two sequences from the same synthetic camera — video A (1,720
frames, the original) and video B (975 frames, similar). The target profile
is computed on A with access to 500 sampled frames. It is compared against:

- video A limited to at most 50 frames (a strict degradation requirement) —
  expected to differ substantially; and
- video B with 500 frames — expected to be close to the target (absolute
  bound difference near zero, within ~5% on the resolution sweep).

Left panel: the reduced-frame-sampling axis at fixed resolution (x-axis is
the sample *size* because the sequences have different lengths; shown below
100 as in the paper). Right panel: the resolution axis at fixed sample
size 500.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.estimators.repair import ProfileRepair
from repro.estimators.smokescreen import SmokescreenMeanEstimator
from repro.experiments.reporting import ExperimentResult
from repro.experiments.trials import capped
from repro.query.aggregates import Aggregate
from repro.query.processor import QueryProcessor
from repro.query.query import AggregateQuery
from repro.stats.sampling import ProgressiveSampler
from repro.video.dataset import VideoDataset
from repro.video.geometry import Resolution
from repro.video.presets import detrac_sequence_pair


def _mean_bound_at_sizes(
    values: np.ndarray,
    population: int,
    sizes: tuple[int, ...],
    access_limit: int | None,
    trials: int,
    seed: int,
    delta: float = 0.05,
) -> list[float]:
    """Smokescreen bound at each sample size, averaged over trials.

    When ``access_limit`` caps the available frames, larger requested sizes
    reuse the capped sample — the "incomplete and loose" estimation the
    paper attributes to limited frame access.
    """
    estimator = SmokescreenMeanEstimator()
    bounds = []
    for size in sizes:
        effective = min(size, access_limit) if access_limit else size
        total = 0.0
        for trial in range(trials):
            sampler = ProgressiveSampler(
                population, np.random.default_rng(seed + trial)
            )
            sample = values[sampler.prefix(min(effective, population))]
            total += estimator.estimate(sample, population, delta).error_bound
        bounds.append(total / trials)
    return bounds


def _resolution_bounds(
    dataset: VideoDataset,
    model,
    sides: tuple[int, ...],
    sample_size: int,
    access_limit: int | None,
    trials: int,
    seed: int,
) -> list[float]:
    """Corrected bound per resolution at a fixed degraded-sample size."""
    processor = QueryProcessor()
    query = AggregateQuery(dataset, model, Aggregate.AVG)
    population = dataset.frame_count
    correction_size = min(access_limit or sample_size, population)
    repair = ProfileRepair()

    bounds = []
    for side in sides:
        total = 0.0
        for trial in range(trials):
            rng = np.random.default_rng(seed + trial)
            degraded_values = model.run(dataset, Resolution(side)).counts.astype(float)
            sampler = ProgressiveSampler(population, rng)
            degraded_sample = degraded_values[
                sampler.prefix(min(sample_size, population))
            ]
            correction_sampler = ProgressiveSampler(population, rng)
            correction = processor.true_values(query)[
                correction_sampler.prefix(correction_size)
            ]
            result = repair.repair_mean(
                degraded_sample, population, correction, population, query.delta
            )
            total += capped(result.error_bound)
        bounds.append(total / trials)
    return bounds


def run_fig10_sampling(
    trials: int = 30,
    sizes: tuple[int, ...] = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100),
    target_frames: int = 500,
    access_limit: int = 50,
    seed: int = 0,
    frames_a: int | None = None,
    frames_b: int | None = None,
) -> ExperimentResult:
    """Figure 10, left panel: bound differences on the sampling axis.

    Args:
        trials: Trials per sample size.
        sizes: Sample sizes (the paper shows sizes below 100).
        target_frames: Frames accessible for the target profile (500).
        access_limit: The limited-access cap on video A (50).
        seed: Randomness seed.
        frames_a: Optional reduced length of sequence A.
        frames_b: Optional reduced length of sequence B.

    Returns:
        Absolute bound differences of the limited-A and similar-B profiles
        against the target profile of A.
    """
    if access_limit >= target_frames:
        raise ConfigurationError("the access limit must be below the target")
    kwargs = {}
    if frames_a:
        kwargs["frames_a"] = frames_a
    if frames_b:
        kwargs["frames_b"] = frames_b
    video_a, video_b = detrac_sequence_pair(**kwargs)
    from repro.detection.zoo import yolo_v4_like

    model = yolo_v4_like()
    values_a = model.run(video_a).counts.astype(float)
    values_b = model.run(video_b).counts.astype(float)

    # The limited profile shares the target's sampler (same frames, only
    # the access cap differs), so its difference is exactly the cost of
    # incomplete estimation beyond the cap and zero below it.
    target = _mean_bound_at_sizes(
        values_a, video_a.frame_count, sizes, None, trials, seed
    )
    limited = _mean_bound_at_sizes(
        values_a, video_a.frame_count, sizes, access_limit, trials, seed
    )
    similar = _mean_bound_at_sizes(
        values_b, video_b.frame_count, sizes, None, trials, seed + 2000
    )

    return ExperimentResult(
        title=(
            "Figure 10 (left): |bound difference| vs sample size, "
            f"target = video A with {target_frames} frames"
        ),
        knob_label="sample_size",
        knobs=[float(size) for size in sizes],
        series={
            "limited_A_diff": [abs(l - t) for l, t in zip(limited, target)],
            "similar_B_diff": [abs(s - t) for s, t in zip(similar, target)],
        },
        notes=(
            f"limited access: at most {access_limit} frames of video A",
            "expected: similar_B_diff near zero, limited_A_diff substantial "
            "beyond the access limit",
        ),
    )


def run_fig10_resolution(
    trials: int = 20,
    sides: tuple[int, ...] = (128, 192, 256, 320, 384, 448, 512, 608),
    sample_size: int = 500,
    access_limit: int = 50,
    seed: int = 0,
    frames_a: int | None = None,
    frames_b: int | None = None,
) -> ExperimentResult:
    """Figure 10, right panel: bound differences on the resolution axis.

    Args:
        trials: Trials per resolution.
        sides: Resolution sides to sweep (fixed sample size 500).
        sample_size: The fixed degraded-sample size (paper: 500).
        access_limit: The limited-access cap on video A (50).
        seed: Randomness seed.
        frames_a: Optional reduced length of sequence A.
        frames_b: Optional reduced length of sequence B.

    Returns:
        Absolute bound differences against the target profile of A.
    """
    kwargs = {}
    if frames_a:
        kwargs["frames_a"] = frames_a
    if frames_b:
        kwargs["frames_b"] = frames_b
    video_a, video_b = detrac_sequence_pair(**kwargs)
    from repro.detection.zoo import yolo_v4_like

    model = yolo_v4_like()

    target = _resolution_bounds(
        video_a, model, sides, sample_size, None, trials, seed
    )
    limited = _resolution_bounds(
        video_a, model, sides, sample_size, access_limit, trials, seed
    )
    similar = _resolution_bounds(
        video_b, model, sides, min(sample_size, video_b.frame_count), None,
        trials, seed + 2000,
    )

    return ExperimentResult(
        title=(
            "Figure 10 (right): |bound difference| vs resolution, "
            f"fixed sample size {sample_size}"
        ),
        knob_label="resolution",
        knobs=[float(side) for side in sides],
        series={
            "limited_A_diff": [abs(l - t) for l, t in zip(limited, target)],
            "similar_B_diff": [abs(s - t) for s, t in zip(similar, target)],
        },
        notes=(
            "expected: similar_B_diff small (the paper reports within 5%) "
            "and limited_A_diff larger",
        ),
    )
