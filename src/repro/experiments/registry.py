"""Name → runner registry for every experiment in the harness.

Shared by the CLI (``repro experiment <name>``) and any driver that wants
to enumerate the reproduction: each entry adapts the common knob set
(dataset, aggregate, axis, frames, trials, seed) to the specific runner's
signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import math

from repro.errors import ConfigurationError
from repro.experiments.reporting import ExperimentResult
from repro.query.aggregates import Aggregate
from repro.system import telemetry
from repro.system.observe import ledger as run_ledger


@dataclass(frozen=True)
class ExperimentRequest:
    """The common experiment knobs (a subset applies to each runner).

    Attributes:
        dataset: Corpus name.
        aggregate: Aggregate function.
        axis: Figure 6 axis.
        frames: Optional reduced corpus size.
        trials: Trials per point.
        seed: Randomness seed.
    """

    dataset: str = "ua-detrac"
    aggregate: Aggregate = Aggregate.AVG
    axis: str = "resolution"
    frames: int | None = None
    trials: int = 20
    seed: int = 0


Runner = Callable[[ExperimentRequest], ExperimentResult]


def _runners() -> dict[str, Runner]:
    # Imported lazily so `import repro.experiments.registry` stays cheap.
    from repro.experiments.ablations import (
        run_ablation_anomaly,
        run_ablation_elbow,
        run_ablation_radius,
        run_ablation_replacement,
        run_ablation_reuse,
        run_ablation_stratified,
    )
    from repro.experiments.chaos_sweep import run_chaos
    from repro.experiments.coverage_audit import run_coverage_audit
    from repro.experiments.extension_temporal import run_extension_temporal
    from repro.experiments.extension_var import run_extension_var
    from repro.experiments.fig3_tradeoff_curves import run_fig3
    from repro.experiments.fig4_bound_comparison import run_fig4
    from repro.experiments.fig5_clt_violations import run_fig5
    from repro.experiments.fig6_profile_repair import run_fig6
    from repro.experiments.fig7_resolution_anomaly import run_fig7
    from repro.experiments.fig8_count_distribution import run_fig8
    from repro.experiments.fig9_correction_size import run_fig9
    from repro.experiments.fig10_profile_similarity import (
        run_fig10_resolution,
        run_fig10_sampling,
    )
    from repro.experiments.headline import (
        run_headline_tightness,
        run_headline_tradeoff,
    )
    from repro.experiments.timing import run_timing

    return {
        "fig3": lambda r: run_fig3(frame_count=r.frames),
        "fig4": lambda r: run_fig4(
            r.dataset, r.aggregate, trials=r.trials, frame_count=r.frames,
            seed=r.seed,
        ),
        "fig5": lambda r: run_fig5(
            trials=r.trials, frame_count=r.frames, seed=r.seed
        ),
        "fig6": lambda r: run_fig6(
            r.dataset, r.aggregate, r.axis, trials=r.trials,
            frame_count=r.frames, seed=r.seed,
        ),
        "fig7": lambda r: run_fig7(
            trials=r.trials, frame_count=r.frames, seed=r.seed
        ),
        "fig8": lambda r: run_fig8(frame_count=r.frames),
        "fig9": lambda r: run_fig9(
            aggregate=r.aggregate, trials=r.trials, frame_count=r.frames,
            seed=r.seed,
        ),
        "fig10-sampling": lambda r: run_fig10_sampling(
            trials=r.trials, seed=r.seed
        ),
        "fig10-resolution": lambda r: run_fig10_resolution(
            trials=r.trials, seed=r.seed
        ),
        "headline-tightness": lambda r: run_headline_tightness(
            trials=r.trials, frame_count=r.frames, seed=r.seed
        ),
        "headline-tradeoff": lambda r: run_headline_tradeoff(
            trials=r.trials, frame_count=r.frames, seed=r.seed
        ),
        "timing": lambda r: run_timing(frame_count=r.frames, seed=r.seed),
        "var": lambda r: run_extension_var(
            trials=r.trials, frame_count=r.frames, seed=r.seed
        ),
        "temporal": lambda r: run_extension_temporal(
            trials=r.trials, frame_count=r.frames, seed=r.seed
        ),
        "ablation-radius": lambda r: run_ablation_radius(
            trials=r.trials, frame_count=r.frames, seed=r.seed
        ),
        "ablation-replacement": lambda r: run_ablation_replacement(
            trials=r.trials, frame_count=r.frames, seed=r.seed
        ),
        "ablation-elbow": lambda r: run_ablation_elbow(
            frame_count=r.frames, seed=r.seed
        ),
        "ablation-reuse": lambda r: run_ablation_reuse(
            frame_count=r.frames, seed=r.seed
        ),
        "ablation-anomaly": lambda r: run_ablation_anomaly(frame_count=r.frames),
        "ablation-stratified": lambda r: run_ablation_stratified(
            trials=r.trials, frame_count=r.frames, seed=r.seed
        ),
        "coverage-audit": lambda r: run_coverage_audit(
            trials=r.trials, frame_count=r.frames, seed=r.seed
        ),
        "chaos": lambda r: run_chaos(
            trials=r.trials, frame_count=r.frames, seed=r.seed
        ),
    }


def experiment_names() -> tuple[str, ...]:
    """Every registered experiment name, figure order first."""
    return tuple(_runners())


def run_experiment(name: str, request: ExperimentRequest) -> ExperimentResult:
    """Run one registered experiment.

    Args:
        name: A name from :func:`experiment_names`.
        request: The common knobs.

    Returns:
        The experiment result.
    """
    runners = _runners()
    runner = runners.get(name)
    if runner is None:
        raise ConfigurationError(
            f"unknown experiment {name!r}; valid: {sorted(runners)}"
        )
    with telemetry.span(
        "experiment.run", experiment=name, dataset=request.dataset,
        trials=request.trials,
    ):
        result = runner(request)
    bound_values = [
        value
        for label, values in result.series.items()
        if "bound" in label and "violation" not in label
        for value in values
        if isinstance(value, (int, float)) and math.isfinite(value)
    ]
    run_ledger.annotate(experiment=name)
    if bound_values:
        run_ledger.annotate(
            bounds={
                "max_width": round(max(bound_values), 6),
                "mean_width": round(
                    sum(bound_values) / len(bound_values), 6
                ),
            }
        )
    run_ledger.record_event(
        "experiment.complete",
        name=name,
        knobs=len(result.knobs),
        series=len(result.series),
    )
    return result
