"""Global coverage audit: every guaranteed bound, validated at once.

Table 1 of the paper claims validity (an error bound holding with
probability at least ``1 - delta``) for its estimators under random
interventions. This audit measures the empirical violation rate of *every*
estimator on *every* aggregate and dataset over a grid of sample
fractions — one table certifying the whole estimator suite, and putting
the not-guaranteed methods (CLT) in contrast.

Scoring is per-method against its own claim (the Figure 5 convention):
value-relative error for the mean family and VAR, rank-relative error for
MAX/MIN.
"""

from __future__ import annotations

import numpy as np

from repro.estimators.classic import (
    CLTEstimator,
    HoeffdingEstimator,
    HoeffdingSerflingEstimator,
)
from repro.estimators.ebgs import EBGSEstimator
from repro.estimators.quantile import SmokescreenQuantileEstimator
from repro.estimators.smokescreen import SmokescreenMeanEstimator
from repro.estimators.stein import SteinEstimator
from repro.estimators.variance import SmokescreenVarianceEstimator
from repro.experiments.reporting import ExperimentResult
from repro.experiments.workloads import DATASET_NAMES, Workload, shared_suite
from repro.query.aggregates import Aggregate, aggregate_value
from repro.query.processor import QueryProcessor
from repro.stats.quantiles import relative_rank_error
from repro.stats.sampling import SampleDesign

#: Methods whose bounds carry a formal guarantee under random interventions.
GUARANTEED_ROWS: tuple[tuple[str, Aggregate], ...] = (
    ("smokescreen", Aggregate.AVG),
    ("smokescreen", Aggregate.SUM),
    ("smokescreen", Aggregate.COUNT),
    ("smokescreen", Aggregate.MAX),
    ("smokescreen", Aggregate.MIN),
    ("smokescreen", Aggregate.VAR),
    ("ebgs", Aggregate.AVG),
    ("hoeffding", Aggregate.AVG),
    ("hoeffding-serfling", Aggregate.AVG),
    ("stein", Aggregate.MAX),
)

#: Not-guaranteed contrast rows.
NOMINAL_ROWS: tuple[tuple[str, Aggregate], ...] = (("clt", Aggregate.AVG),)


def _estimator_for(method: str, aggregate: Aggregate):
    if aggregate.is_extreme:
        return {
            "smokescreen": SmokescreenQuantileEstimator,
            "stein": SteinEstimator,
        }[method]()
    if aggregate.is_variance:
        return {"smokescreen": SmokescreenVarianceEstimator}[method]()
    return {
        "smokescreen": SmokescreenMeanEstimator,
        "ebgs": EBGSEstimator,
        "hoeffding": HoeffdingEstimator,
        "hoeffding-serfling": HoeffdingSerflingEstimator,
        "clt": CLTEstimator,
    }[method]()


def _violations(
    values: np.ndarray,
    method: str,
    aggregate: Aggregate,
    fraction: float,
    trials: int,
    rng: np.random.Generator,
    delta: float,
) -> float:
    population = values.size
    estimator = _estimator_for(method, aggregate)
    r = aggregate.default_quantile if aggregate.is_extreme else None
    truth = aggregate_value(values, aggregate, r)
    n = SampleDesign(population, fraction).size
    misses = 0
    for _ in range(trials):
        sample = values[rng.choice(population, size=n, replace=False)]
        if aggregate.is_extreme:
            estimate = estimator.estimate(sample, population, r, delta, aggregate)
            error = relative_rank_error(values, estimate.value, truth)
        else:
            known_range = 1.0 if aggregate == Aggregate.COUNT else None
            estimate = estimator.estimate(
                sample, population, delta, value_range=known_range
            )
            if aggregate in (Aggregate.SUM, Aggregate.COUNT):
                estimate = estimate.scaled(population)
            if truth == 0.0:
                continue
            error = abs(estimate.value - truth) / abs(truth)
        if error > estimate.error_bound:
            misses += 1
    return 100.0 * misses / trials


def run_coverage_audit(
    trials: int = 100,
    frame_count: int | None = None,
    fractions: tuple[float, ...] = (0.005, 0.02, 0.1),
    seed: int = 0,
    delta: float = 0.05,
) -> ExperimentResult:
    """Audit every estimator's empirical coverage.

    Args:
        trials: Trials per (row, dataset, fraction) cell.
        frame_count: Optional reduced corpus size.
        fractions: Sample fractions audited; the worst cell is reported.
        seed: Randomness seed.
        delta: Nominal failure probability.

    Returns:
        Per (method, aggregate) row: the worst violation percentage across
        both datasets and all fractions.
    """
    rng = np.random.default_rng(seed)
    processor = QueryProcessor(shared_suite())

    knobs: list[str] = []
    worst: list[float] = []
    for method, aggregate in GUARANTEED_ROWS + NOMINAL_ROWS:
        cell_worst = 0.0
        for dataset_name in DATASET_NAMES:
            values = processor.true_values(
                Workload(dataset_name, aggregate, frame_count).query()
            )
            for fraction in fractions:
                rate = _violations(
                    values, method, aggregate, fraction, trials, rng, delta
                )
                cell_worst = max(cell_worst, rate)
        knobs.append(f"{method}/{aggregate.name}")
        worst.append(cell_worst)

    guaranteed_flags = [1.0] * len(GUARANTEED_ROWS) + [0.0] * len(NOMINAL_ROWS)
    return ExperimentResult(
        title=(
            f"Coverage audit: worst violation % over datasets x fractions "
            f"({trials} trials/cell, delta={delta})"
        ),
        knob_label="method/agg",
        knobs=knobs,
        series={
            "worst_violation_pct": worst,
            "guaranteed": guaranteed_flags,
        },
        notes=(
            "guaranteed rows must stay near or below 100*delta = "
            f"{100 * delta:.0f}%",
            "clt/AVG is the not-guaranteed contrast row (Figure 5)",
        ),
    )
