"""Ablations of Smokescreen's design choices (beyond the paper's figures).

Each ablation isolates one ingredient DESIGN.md calls out:

- **radius**: Algorithm 1's Hoeffding–Serfling radius against the plain
  Hoeffding radius and the (single-``n``) empirical Bernstein radius inside
  the identical bound-aware output construction. Quantifies §3.2.1's claim
  that H-S "is more suitable for a small sample size".
- **replacement**: Algorithm 2's finite-population (without-replacement)
  variance against the with-replacement variance used by prior work [40,
  45]. Quantifies §3.2.4's non-replacement advantage.
- **elbow**: the §3.3.1 stopping tolerance swept — correction-set size vs
  the corrected bound it buys.
- **reuse**: model invocations of a fraction sweep with the nested-sample
  reuse strategy versus naive independent draws (§3.3.2).
- **anomaly**: Figure 7's true error with the detector anomaly disabled —
  confirming the spike comes from the model artifact, not the estimator.
"""

from __future__ import annotations

import numpy as np

from repro.core.candidates import CandidateGrid
from repro.core.correction import determine_correction_set
from repro.core.profiler import DegradationProfiler
from repro.detection.zoo import YOLO_ANOMALY_SIDE, yolo_v4_like
from repro.estimators.smokescreen import bound_aware_estimate
from repro.experiments.reporting import ExperimentResult
from repro.experiments.workloads import (
    NIGHT_STREET,
    UA_DETRAC,
    Workload,
    load_dataset,
    shared_suite,
)
from repro.interventions.plan import InterventionPlan
from repro.query.aggregates import Aggregate
from repro.query.processor import QueryProcessor
from repro.stats.hypergeometric import z_score
from repro.stats.inequalities import (
    empirical_bernstein_radius,
    empirical_bernstein_serfling_radius,
    hoeffding_radius,
    hoeffding_serfling_radius,
)
from repro.stats.quantiles import DistinctValueTable
from repro.system.costs import InvocationLedger
from repro.video.geometry import Resolution


def run_ablation_radius(
    dataset_name: str = UA_DETRAC,
    trials: int = 100,
    frame_count: int | None = None,
    fractions: tuple[float, ...] = (0.002, 0.005, 0.01, 0.02, 0.05, 0.1),
    seed: int = 0,
) -> ExperimentResult:
    """Algorithm 1 with different interval radii, same output construction.

    Args:
        dataset_name: The corpus.
        trials: Trials per fraction.
        frame_count: Optional reduced corpus size.
        fractions: Sample fractions to sweep.
        seed: Randomness seed.

    Returns:
        Mean bound per radius choice per fraction.
    """
    workload = Workload(dataset_name, Aggregate.AVG, frame_count)
    query = workload.query()
    values = QueryProcessor(shared_suite()).true_values(query)
    population = values.size
    rng = np.random.default_rng(seed)

    series: dict[str, list[float]] = {
        "hoeffding_serfling": [],
        "hoeffding": [],
        "empirical_bernstein": [],
        "bernstein_serfling": [],
    }
    for fraction in fractions:
        n = max(2, round(population * fraction))
        sums = dict.fromkeys(series, 0.0)
        for _ in range(trials):
            sample = values[rng.choice(population, size=n, replace=False)]
            mean = float(sample.mean())
            value_range = float(sample.max() - sample.min())
            std = float(sample.std())
            radii = {
                "hoeffding_serfling": hoeffding_serfling_radius(
                    n, population, query.delta, value_range
                ),
                "hoeffding": hoeffding_radius(n, query.delta, value_range),
                "empirical_bernstein": empirical_bernstein_radius(
                    n, query.delta, value_range, std
                ),
                "bernstein_serfling": empirical_bernstein_serfling_radius(
                    n, population, query.delta, value_range, std
                ),
            }
            for name, radius in radii.items():
                estimate = bound_aware_estimate(mean, radius, n, population, name)
                sums[name] += estimate.error_bound
        for name in series:
            series[name].append(sums[name] / trials)

    return ExperimentResult(
        title=(
            "Ablation: interval radius inside Algorithm 1 "
            f"({workload.name}, {trials} trials)"
        ),
        knob_label="fraction",
        knobs=list(fractions),
        series=series,
        notes=(
            "expected: hoeffding_serfling tightest at small fractions; "
            "the variance-adaptive bernstein_serfling catches up as n "
            "grows; the gap to empirical_bernstein largest at small "
            "fractions",
        ),
    )


def run_ablation_replacement(
    dataset_name: str = UA_DETRAC,
    trials: int = 100,
    frame_count: int | None = None,
    fractions: tuple[float, ...] = (0.001, 0.003, 0.01, 0.03, 0.1, 0.3),
    r: float = 0.99,
    seed: int = 0,
) -> ExperimentResult:
    """Algorithm 2's finite-population variance vs with-replacement.

    The with-replacement variant replaces the hypergeometric factor
    ``(N - n) / (n (N - 1))`` by the binomial ``1 / n``.

    Args:
        dataset_name: The corpus.
        trials: Trials per fraction.
        frame_count: Optional reduced corpus size.
        fractions: Sample fractions to sweep.
        r: The extreme quantile level.
        seed: Randomness seed.

    Returns:
        Mean MAX bound per variance choice per fraction.
    """
    workload = Workload(dataset_name, Aggregate.MAX, frame_count)
    query = workload.query()
    values = QueryProcessor(shared_suite()).true_values(query)
    population = values.size
    rng = np.random.default_rng(seed)
    z = z_score(query.delta)

    series: dict[str, list[float]] = {
        "without_replacement": [],
        "with_replacement": [],
    }
    for fraction in fractions:
        n = max(2, round(population * fraction))
        sums = dict.fromkeys(series, 0.0)
        for _ in range(trials):
            sample = values[rng.choice(population, size=n, replace=False)]
            table = DistinctValueTable.from_sample(sample)
            frequency = table.frequency_at(table.quantile_position(r))
            spread = float(np.sqrt(r * (1.0 - r)))
            fpc = np.sqrt((population - n) / (n * (population - 1)))
            deviations = {
                "without_replacement": z * spread * fpc,
                "with_replacement": z * spread / np.sqrt(n),
            }
            for name, deviation in deviations.items():
                bound = ((deviation + frequency) / frequency + 1.0) * frequency / r
                sums[name] += bound
        for name in series:
            series[name].append(sums[name] / trials)

    return ExperimentResult(
        title=(
            "Ablation: sampling model inside Algorithm 2's variance "
            f"({workload.name}, {trials} trials)"
        ),
        knob_label="fraction",
        knobs=list(fractions),
        series=series,
        notes=(
            "expected: without_replacement never looser, and clearly "
            "tighter as the fraction grows (finite-population shrinkage)",
        ),
    )


def run_ablation_elbow(
    dataset_name: str = UA_DETRAC,
    frame_count: int | None = None,
    tolerances: tuple[float, ...] = (0.1, 0.05, 0.02, 0.01, 0.005),
    seed: int = 0,
) -> ExperimentResult:
    """The §3.3.1 stopping tolerance: set size vs bound quality.

    Args:
        dataset_name: The corpus.
        frame_count: Optional reduced corpus size.
        tolerances: Elbow thresholds to sweep (the paper fixes 2%).
        seed: Randomness seed.

    Returns:
        Correction fraction and own-bound per tolerance.
    """
    workload = Workload(dataset_name, Aggregate.AVG, frame_count)
    query = workload.query()
    processor = QueryProcessor(shared_suite())
    population = query.dataset.frame_count

    series: dict[str, list[float]] = {"correction_fraction": [], "own_bound": []}
    for tolerance in tolerances:
        correction = determine_correction_set(
            processor, query, np.random.default_rng(seed), tolerance=tolerance
        )
        series["correction_fraction"].append(correction.fraction(population))
        series["own_bound"].append(correction.error_bound)

    return ExperimentResult(
        title=f"Ablation: elbow tolerance of §3.3.1 ({workload.name})",
        knob_label="tolerance",
        knobs=list(tolerances),
        series=series,
        notes=(
            "smaller tolerances buy tighter own-bounds with larger sets; "
            "the paper's 2% sits at the knee",
        ),
    )


def run_ablation_reuse(
    dataset_name: str = UA_DETRAC,
    frame_count: int | None = None,
    fractions: tuple[float, ...] = (0.01, 0.02, 0.03, 0.04),
    seed: int = 0,
) -> ExperimentResult:
    """Invocation savings of the §3.3.2 nested-sample reuse strategy.

    Args:
        dataset_name: The corpus.
        frame_count: Optional reduced corpus size.
        fractions: The ascending fraction sweep.
        seed: Randomness seed.

    Returns:
        Invocation totals for the reuse sweep vs naive independent draws.
    """
    workload = Workload(dataset_name, Aggregate.AVG, frame_count)
    query = workload.query()
    processor = QueryProcessor(shared_suite())
    population = query.dataset.frame_count

    reuse_ledger = InvocationLedger()
    profiler = DegradationProfiler(processor, trials=1, ledger=reuse_ledger)
    grid = CandidateGrid(
        fractions=fractions,
        resolutions=(query.dataset.native_resolution,),
        removals=((),),
    )
    profiler.generate_hypercube(query, grid, np.random.default_rng(seed))

    naive_ledger = InvocationLedger()
    naive_profiler = DegradationProfiler(processor, trials=1, ledger=naive_ledger)
    for fraction in fractions:
        plan = InterventionPlan.from_knobs(f=fraction)
        naive_profiler.estimate_plan(query, plan, np.random.default_rng(seed))

    knobs = ["reuse", "naive"]
    series = {
        "invocations": [float(reuse_ledger.total), float(naive_ledger.total)],
        "invocations_per_frame_pct": [
            100.0 * reuse_ledger.total / population,
            100.0 * naive_ledger.total / population,
        ],
    }
    return ExperimentResult(
        title=f"Ablation: nested-sample reuse savings ({workload.name})",
        knob_label="strategy",
        knobs=knobs,
        series=series,
        notes=(
            "reuse processes max(fractions) of the corpus; naive processes "
            "sum(fractions)",
        ),
    )


def run_ablation_stratified(
    dataset_name: str = UA_DETRAC,
    trials: int = 200,
    frame_count: int | None = None,
    fractions: tuple[float, ...] = (0.002, 0.005, 0.01, 0.02, 0.05),
    seed: int = 0,
) -> ExperimentResult:
    """Exploiting frame similarity via time-stratified sampling (§7).

    Consecutive frames are similar, so sampling one frame per equal time
    stratum should estimate the mean more precisely than simple random
    sampling at the same budget. Measured: the RMSE of the plain sample
    mean under both designs, plus the empirical violation rate of the
    (SRS-derived) Smokescreen bound when applied to stratified samples —
    the bound is not proven for that design, so validity must be checked.

    Args:
        dataset_name: The corpus.
        trials: Trials per fraction.
        frame_count: Optional reduced corpus size.
        fractions: Sample fractions to sweep.
        seed: Randomness seed.

    Returns:
        Per fraction: RMSE under both designs, the RMSE ratio, and the
        bound's violation percentage under the stratified design.
    """
    from repro.estimators.smokescreen import SmokescreenMeanEstimator
    from repro.stats.sampling import stratified_time_sample

    workload = Workload(dataset_name, Aggregate.AVG, frame_count)
    query = workload.query()
    values = QueryProcessor(shared_suite()).true_values(query)
    population = values.size
    mu = float(values.mean())
    rng = np.random.default_rng(seed)
    estimator = SmokescreenMeanEstimator()

    series: dict[str, list[float]] = {
        "srs_rmse": [],
        "stratified_rmse": [],
        "rmse_ratio": [],
        "stratified_violation_pct": [],
    }
    for fraction in fractions:
        n = max(2, round(population * fraction))
        srs_errors = np.empty(trials)
        stratified_errors = np.empty(trials)
        misses = 0
        for t in range(trials):
            srs = values[rng.choice(population, size=n, replace=False)]
            srs_errors[t] = srs.mean() - mu
            stratified = values[stratified_time_sample(population, n, rng)]
            stratified_errors[t] = stratified.mean() - mu
            estimate = estimator.estimate(stratified, population, query.delta)
            if abs(estimate.value - mu) / mu > estimate.error_bound:
                misses += 1
        srs_rmse = float(np.sqrt(np.mean(srs_errors**2)))
        stratified_rmse = float(np.sqrt(np.mean(stratified_errors**2)))
        series["srs_rmse"].append(srs_rmse)
        series["stratified_rmse"].append(stratified_rmse)
        series["rmse_ratio"].append(stratified_rmse / srs_rmse)
        series["stratified_violation_pct"].append(100.0 * misses / trials)

    return ExperimentResult(
        title=(
            f"Ablation: time-stratified vs simple random sampling "
            f"({workload.name}, {trials} trials)"
        ),
        knob_label="fraction",
        knobs=list(fractions),
        series=series,
        notes=(
            "exploiting frame similarity is the paper's §7 future work",
            "rmse_ratio < 1 means stratification estimates more precisely "
            "at the same frame budget",
            "the SRS-derived bound applied to stratified samples is "
            "checked empirically (no formal guarantee)",
        ),
    )


def run_ablation_anomaly(
    frame_count: int | None = None,
    sides: tuple[int, ...] = (256, 320, YOLO_ANOMALY_SIDE, 448, 512),
) -> ExperimentResult:
    """Figure 7's spike with the detector anomaly disabled.

    Args:
        frame_count: Optional reduced corpus size.
        sides: Resolutions to compare.

    Returns:
        True AVG error per resolution with and without the anomaly term.
    """
    dataset = load_dataset(NIGHT_STREET, frame_count)
    with_anomaly = yolo_v4_like()
    without_anomaly = yolo_v4_like(with_anomaly=False)

    series: dict[str, list[float]] = {"with_anomaly": [], "without_anomaly": []}
    for model, key in ((with_anomaly, "with_anomaly"), (without_anomaly, "without_anomaly")):
        truth = model.run(dataset).counts.mean()
        for side in sides:
            degraded = model.run(dataset, Resolution(side)).counts.mean()
            series[key].append(abs(degraded - truth) / truth)

    return ExperimentResult(
        title="Ablation: the 384x384 spike disappears without the model anomaly",
        knob_label="resolution",
        knobs=[float(side) for side in sides],
        series=series,
        notes=(
            "with_anomaly should spike at "
            f"{YOLO_ANOMALY_SIDE}; without_anomaly should be monotone",
        ),
    )
