"""The paper's headline numbers (§5.2.1).

Two claims: the error bound is "up to 154.70% tighter" than baselines, and
the tight bound "can enable tradeoffs that are 88% more accurate". This
module measures both on the synthetic workloads:

- *Tightness*: the maximum (and mean) relative improvement of Smokescreen's
  bound over each guaranteed baseline across the Figure 4 sweep.
- *Tradeoff accuracy*: for an error target, the administrator picks the
  smallest sampling fraction whose bound meets the target. The regret of
  that choice against the oracle (true-error-driven) choice is compared
  between Smokescreen and the EBGS-driven choice; the improvement is how
  much of EBGS's regret Smokescreen eliminates.
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.fig4_bound_comparison import (
    MEAN_METHODS,
    QUANTILE_METHODS,
    run_fig4,
)
from repro.experiments.metrics import tightness_improvement
from repro.experiments.reporting import ExperimentResult
from repro.experiments.workloads import paper_workloads
from repro.query.aggregates import Aggregate


def run_headline_tightness(
    trials: int = 50,
    frame_count: int | None = None,
    seed: int = 0,
    grid_points: int = 6,
) -> ExperimentResult:
    """Maximum bound-tightness improvement over each guaranteed baseline.

    CLT is excluded: it is not a guaranteed bound (Figure 5), so being
    looser than it is not a deficiency.

    Args:
        trials: Trials per sweep point.
        frame_count: Optional reduced corpus size.
        seed: Randomness seed.
        grid_points: Fraction-grid size per panel.

    Returns:
        Max and mean improvement per baseline, aggregated over all eight
        workloads and every sweep fraction.
    """
    baselines = [m for m in MEAN_METHODS if m not in ("smokescreen", "clt")]
    baselines += [m for m in QUANTILE_METHODS if m != "smokescreen"]
    improvements: dict[str, list[float]] = {name: [] for name in baselines}

    for workload in paper_workloads(frame_count):
        panel = run_fig4(
            workload.dataset_name,
            workload.aggregate,
            trials=trials,
            frame_count=frame_count,
            seed=seed,
            grid_points=grid_points,
        )
        ours = panel.series["smokescreen_bound"]
        for name in baselines:
            key = f"{name}_bound"
            if key not in panel.series:
                continue
            for our_bound, base_bound in zip(ours, panel.series[key]):
                if math.isfinite(base_bound) and our_bound > 0:
                    improvements[name].append(
                        tightness_improvement(base_bound, our_bound)
                    )

    series = {
        "max_improvement_pct": [
            100.0 * max(improvements[name]) if improvements[name] else math.nan
            for name in baselines
        ],
        "mean_improvement_pct": [
            100.0 * float(np.mean(improvements[name]))
            if improvements[name]
            else math.nan
            for name in baselines
        ],
    }
    return ExperimentResult(
        title=(
            "Headline: bound tightness improvement of Smokescreen over "
            f"guaranteed baselines ({trials} trials/point)"
        ),
        knob_label="baseline",
        knobs=list(baselines),
        series=series,
        notes=(
            "the paper reports up to 154.70% tighter than baselines",
            "positive = Smokescreen tighter; aggregated over all 8 workloads",
        ),
    )


def _choice_fraction(
    fractions: tuple[float, ...], curve: list[float], target: float
) -> float | None:
    """Smallest fraction whose curve value meets the target."""
    for fraction, value in zip(fractions, curve):
        if value <= target:
            return fraction
    return None


def run_headline_tradeoff(
    dataset_name: str = "ua-detrac",
    aggregate: Aggregate = Aggregate.AVG,
    trials: int = 50,
    frame_count: int | None = None,
    targets: tuple[float, ...] = (0.2, 0.3, 0.4, 0.5),
    seed: int = 0,
) -> ExperimentResult:
    """Tradeoff-accuracy improvement of Smokescreen over the EBGS choice.

    Args:
        dataset_name: The corpus.
        aggregate: A mean-family aggregate.
        trials: Trials per sweep point.
        frame_count: Optional reduced corpus size.
        targets: Error targets the administrator might set.
        seed: Randomness seed.

    Returns:
        Per target: the fraction chosen from each method's bound curve, the
        oracle fraction, and the regret-reduction percentage.
    """
    fractions = tuple(float(f) for f in np.geomspace(0.005, 0.6, 14))
    panel = run_fig4(
        dataset_name,
        aggregate,
        trials=trials,
        frame_count=frame_count,
        fractions=fractions,
        seed=seed,
    )
    truth_curve = panel.series["smokescreen_err"]

    series: dict[str, list[float]] = {
        "oracle_fraction": [],
        "smokescreen_fraction": [],
        "ebgs_fraction": [],
        "regret_reduction_pct": [],
    }
    for target in targets:
        oracle = _choice_fraction(fractions, truth_curve, target)
        ours = _choice_fraction(fractions, panel.series["smokescreen_bound"], target)
        ebgs = _choice_fraction(fractions, panel.series["ebgs_bound"], target)
        oracle_f = oracle if oracle is not None else math.nan
        ours_f = ours if ours is not None else 1.0
        ebgs_f = ebgs if ebgs is not None else 1.0
        series["oracle_fraction"].append(oracle_f)
        series["smokescreen_fraction"].append(ours_f)
        series["ebgs_fraction"].append(ebgs_f)
        if oracle is None:
            series["regret_reduction_pct"].append(math.nan)
        else:
            our_regret = max(ours_f - oracle_f, 0.0)
            ebgs_regret = max(ebgs_f - oracle_f, 0.0)
            if ebgs_regret == 0.0:
                series["regret_reduction_pct"].append(0.0)
            else:
                series["regret_reduction_pct"].append(
                    100.0 * (ebgs_regret - our_regret) / ebgs_regret
                )

    return ExperimentResult(
        title=(
            f"Headline: tradeoff accuracy vs EBGS choice "
            f"({dataset_name}/{aggregate.name}, {trials} trials)"
        ),
        knob_label="error_target",
        knobs=list(targets),
        series=series,
        notes=(
            "the paper reports tradeoffs 88% more accurate than the "
            "previously-known approach",
            "regret = chosen fraction minus the oracle (true-error) fraction",
        ),
    )
