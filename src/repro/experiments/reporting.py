"""Result containers, table formatting, and ASCII charts.

The harness runs in terminals without a plotting stack, so alongside the
printable tables every :class:`ExperimentResult` can render its series as
an ASCII chart — enough to eyeball the curve shapes the paper plots
(monotone decay, the 384 spike, crossovers) straight from ``repro
experiment ... --chart`` or a bench log.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

#: Glyphs used to distinguish chart series, recycled when exceeded.
_SERIES_GLYPHS = "ox*+#@%&"


@dataclass(frozen=True)
class ExperimentResult:
    """One experiment's output: named series over a shared knob axis.

    Attributes:
        title: The experiment's title (figure number + description).
        knob_label: Name of the x-axis knob (e.g. ``"fraction"``).
        knobs: The knob values, one per row.
        series: Column name -> one value per knob (the plotted lines).
        notes: Free-form remarks (cut-offs, parameters, caveats).
    """

    title: str
    knob_label: str
    knobs: Sequence[object]
    series: Mapping[str, Sequence[float]]
    notes: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        for name, values in self.series.items():
            if len(values) != len(self.knobs):
                raise ValueError(
                    f"series {name!r} has {len(values)} values for "
                    f"{len(self.knobs)} knobs"
                )

    def rows(self) -> list[str]:
        """The result as printable table rows (header + one row per knob)."""
        names = list(self.series)
        header = f"{self.knob_label:>14} | " + " | ".join(
            f"{name:>18}" for name in names
        )
        lines = [self.title, "-" * len(header), header, "-" * len(header)]
        for index, knob in enumerate(self.knobs):
            knob_text = f"{knob:>14.6g}" if isinstance(knob, float) else f"{knob!s:>14}"
            cells = []
            for name in names:
                value = self.series[name][index]
                cells.append(f"{value:>18.6g}" if value == value else f"{'nan':>18}")
            lines.append(knob_text + " | " + " | ".join(cells))
        for note in self.notes:
            lines.append(f"note: {note}")
        return lines

    def ascii_chart(self, height: int = 12, width: int = 68) -> list[str]:
        """The series as an ASCII chart, one glyph per series.

        Knobs map to columns in order (even spacing — the chart shows
        shape, not scale); values map to rows linearly between the finite
        minimum and maximum across all series. Non-finite values are
        skipped.

        Args:
            height: Plot rows (excluding the legend and axis lines).
            width: Plot columns.

        Returns:
            The chart lines, legend last.
        """
        if height < 2 or width < 2:
            raise ValueError("chart needs at least a 2x2 canvas")
        finite = [
            value
            for values in self.series.values()
            for value in values
            if isinstance(value, (int, float)) and math.isfinite(value)
        ]
        if not finite:
            return [self.title, "(no finite values to chart)"]
        low, high = min(finite), max(finite)
        span = (high - low) or 1.0

        canvas = [[" "] * width for _ in range(height)]
        knob_count = len(self.knobs)
        for series_index, (name, values) in enumerate(self.series.items()):
            glyph = _SERIES_GLYPHS[series_index % len(_SERIES_GLYPHS)]
            for knob_index, value in enumerate(values):
                if not (isinstance(value, (int, float)) and math.isfinite(value)):
                    continue
                column = (
                    round(knob_index * (width - 1) / (knob_count - 1))
                    if knob_count > 1
                    else 0
                )
                row = height - 1 - round((value - low) / span * (height - 1))
                canvas[row][column] = glyph
        lines = [self.title]
        for row_index, row in enumerate(canvas):
            if row_index == 0:
                label = f"{high:>10.3g} |"
            elif row_index == height - 1:
                label = f"{low:>10.3g} |"
            else:
                label = " " * 10 + " |"
            lines.append(label + "".join(row))
        lines.append(" " * 10 + " +" + "-" * width)
        first = self.knobs[0]
        last = self.knobs[-1]
        lines.append(
            " " * 12 + f"{first!s:<{max(1, width // 2)}}{last!s:>{width // 2}}"
        )
        legend = "  ".join(
            f"{_SERIES_GLYPHS[i % len(_SERIES_GLYPHS)]}={name}"
            for i, name in enumerate(self.series)
        )
        lines.append(f"legend: {legend}   x-axis: {self.knob_label}")
        return lines

    def print(self, chart: bool = False) -> None:
        """Print the table (and optionally the chart) to stdout.

        Args:
            chart: Also render the ASCII chart below the table.
        """
        for line in self.rows():
            print(line)
        if chart:
            print()
            for line in self.ascii_chart():
                print(line)
