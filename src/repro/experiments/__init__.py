"""Experiment harness: the paper's evaluation (§5), figure by figure.

Each ``figN_*`` module exposes a ``run_*`` function that regenerates the
corresponding figure's data (the same series the paper plots) and returns a
:class:`~repro.experiments.reporting.ExperimentResult` whose ``rows()`` are
printable tables. The benchmarks in ``benchmarks/`` call these and print
the rows; ``EXPERIMENTS.md`` records paper-vs-measured shape per figure.

The experiments run on the synthetic corpora at the paper's full frame
counts by default; every runner takes ``frame_count``/``trials`` parameters
so tests can exercise them at reduced scale.
"""

from repro.experiments.reporting import ExperimentResult
from repro.experiments.workloads import (
    Workload,
    load_dataset,
    model_for,
    paper_workloads,
)

__all__ = [
    "ExperimentResult",
    "Workload",
    "load_dataset",
    "model_for",
    "paper_workloads",
]
