"""Figure 8: predicted car-count distributions explain the 384 anomaly.

The paper plots the number of frames predicted to contain each car count
at resolutions 608 (ground truth), 384, and 320 on night-street with
YOLOv4: the 320 distribution resembles the truth while the 384 one
deviates substantially — the network's prediction error, not sampling,
causes Figure 7's spike.
"""

from __future__ import annotations

import numpy as np

from repro.detection.zoo import YOLO_ANOMALY_SIDE, yolo_v4_like
from repro.experiments.reporting import ExperimentResult
from repro.experiments.workloads import NIGHT_STREET, load_dataset
from repro.video.geometry import Resolution


def run_fig8(
    frame_count: int | None = None,
    sides: tuple[int, ...] = (608, YOLO_ANOMALY_SIDE, 320),
    max_count: int = 8,
) -> ExperimentResult:
    """Regenerate Figure 8's count histograms.

    Args:
        frame_count: Optional reduced corpus size.
        sides: Resolutions to histogram (paper: 608 truth, 384, 320).
        max_count: Histogram upper bin; larger counts are clipped into it.

    Returns:
        One series per resolution: frames predicted to contain each count.
    """
    dataset = load_dataset(NIGHT_STREET, frame_count)
    model = yolo_v4_like()

    series: dict[str, list[float]] = {}
    for side in sides:
        counts = model.run(dataset, Resolution(side)).counts
        clipped = np.minimum(counts, max_count)
        histogram = np.bincount(clipped, minlength=max_count + 1)
        series[f"res_{side}"] = [float(value) for value in histogram]

    return ExperimentResult(
        title=(
            "Figure 8: predicted car-count distribution by resolution "
            "(YOLOv4-like, night-street)"
        ),
        knob_label="car_count",
        knobs=[float(count) for count in range(max_count + 1)],
        series=series,
        notes=(
            f"res_{sides[0]} is the ground-truth distribution",
            f"expected: res_320 tracks the truth, res_{YOLO_ANOMALY_SIDE} "
            "deviates substantially",
        ),
    )


def distribution_distance(result: ExperimentResult, side_a: int, side_b: int) -> float:
    """Total-variation distance between two of the result's histograms.

    Used by tests and the bench to assert the Figure 8 claim numerically:
    TV(384, truth) should far exceed TV(320, truth).

    Args:
        result: A :func:`run_fig8` result.
        side_a: First resolution side.
        side_b: Second resolution side.

    Returns:
        The total-variation distance in [0, 1].
    """
    a = np.array(result.series[f"res_{side_a}"], dtype=float)
    b = np.array(result.series[f"res_{side_b}"], dtype=float)
    a = a / a.sum()
    b = b / b.sum()
    return float(0.5 * np.abs(a - b).sum())
