"""Chaos sweep: outage rate → bound width under resilient execution.

The headline robustness claim: with faults injected at increasing rates,
the resilient :class:`~repro.system.fleet.FleetQueryProcessor` keeps
returning valid (wider) surviving-fleet bounds instead of crashing or
silently under-covering. This experiment sweeps the outage rate (scaling
the other fault rates along with it), runs seeded trials at each point,
and tabulates the mean combined bound width, cameras lost, fleet frame
coverage, retry volume, and the empirical coverage of the exact
surviving-fleet answer — which must stay at or above ``1 - delta``
regardless of the fault rate.
"""

from __future__ import annotations

import numpy as np

from repro.detection.zoo import mask_rcnn_like, yolo_v4_like
from repro.errors import TransmissionError
from repro.experiments.reporting import ExperimentResult
from repro.experiments.workloads import load_dataset, shared_suite
from repro.query.processor import QueryProcessor
from repro.system.camera import Camera
from repro.system.faults import FaultModel
from repro.system.fleet import FleetQueryProcessor
from repro.system.observe import ledger as run_ledger

DEFAULT_OUTAGE_RATES = (0.0, 0.1, 0.2, 0.3, 0.5)


def _build_cameras(
    camera_count: int, frame_count: int | None, fraction: float
) -> list[Camera]:
    suite = shared_suite()
    frames = frame_count or 2000
    cameras = []
    for index in range(camera_count):
        name = "ua-detrac" if index % 2 == 0 else "night-street"
        camera = Camera(f"cam{index}", load_dataset(name, frames), suite)
        camera.configure(fraction=fraction)
        cameras.append(camera)
    return cameras


def _model_for(camera: Camera):
    if camera.dataset.name.startswith("ua-detrac"):
        return yolo_v4_like()
    return mask_rcnn_like()


def _surviving_truth(
    cameras: list[Camera], surviving: tuple[str, ...]
) -> float:
    """The exact AVG over the frames of the surviving cameras."""
    weight_total = 0
    weighted = 0.0
    for camera in cameras:
        if camera.name not in surviving:
            continue
        counts = _model_for(camera).run(camera.dataset).counts
        weighted += counts.mean() * camera.dataset.frame_count
        weight_total += camera.dataset.frame_count
    return weighted / weight_total


def run_chaos(
    trials: int = 10,
    frame_count: int | None = None,
    seed: int = 0,
    outage_rates: tuple[float, ...] = DEFAULT_OUTAGE_RATES,
    camera_count: int = 5,
    fraction: float = 0.2,
    delta: float = 0.05,
) -> ExperimentResult:
    """Sweep outage rates and tabulate graceful-degradation metrics.

    At each outage rate ``q`` the fleet also suffers transient failures at
    ``q / 2``, frame drops at ``q / 4``, and stragglers at ``q / 4`` — a
    proportional chaos profile. Each trial constructs a fresh processor
    (fresh breakers and clock) so trials are independent and every fault
    sequence is reproducible from ``(seed, trial index)``.

    Args:
        trials: Seeded trials per outage rate.
        frame_count: Per-camera corpus size (None → 2000).
        seed: Root seed.
        outage_rates: The swept per-query camera outage probabilities.
        camera_count: Fleet size.
        fraction: Per-camera sampling fraction.
        delta: Total failure probability per query.

    Returns:
        The outage-rate → bound-width table.
    """
    cameras = _build_cameras(camera_count, frame_count, fraction)
    processor = QueryProcessor(shared_suite())

    bound_widths: list[float] = []
    lost_means: list[float] = []
    coverage_means: list[float] = []
    retry_means: list[float] = []
    violation_rates: list[float] = []
    unavailable_counts: list[float] = []
    for rate_index, rate in enumerate(outage_rates):
        faults = FaultModel(
            outage_probability=rate,
            transient_failure_probability=rate / 2.0,
            frame_drop_probability=rate / 4.0,
            straggler_probability=rate / 4.0,
        )
        widths: list[float] = []
        lost: list[int] = []
        coverages: list[float] = []
        retries: list[int] = []
        violations = 0
        unavailable = 0
        for trial in range(trials):
            fleet = FleetQueryProcessor(
                cameras,
                processor,
                faults=faults,
                fault_seed=seed + 1000 * rate_index,
            )
            try:
                report = fleet.execute(
                    _model_for, delta=delta, seed=seed + trial
                )
            except TransmissionError:
                unavailable += 1
                continue
            widths.append(report.combined.error_bound)
            lost.append(len(report.lost))
            coverages.append(report.coverage)
            retries.append(report.total_retries)
            truth = _surviving_truth(cameras, report.surviving)
            error = abs(report.combined.value - truth) / truth
            if error > report.combined.error_bound:
                violations += 1
        answered = len(widths)
        bound_widths.append(float(np.mean(widths)) if answered else float("nan"))
        lost_means.append(float(np.mean(lost)) if answered else float("nan"))
        coverage_means.append(
            float(np.mean(coverages)) if answered else float("nan")
        )
        retry_means.append(float(np.mean(retries)) if answered else float("nan"))
        violation_rates.append(
            violations / answered if answered else float("nan")
        )
        unavailable_counts.append(float(unavailable))

    finite_widths = [w for w in bound_widths if np.isfinite(w)]
    run_ledger.annotate(
        bounds={
            "max_width": (
                round(max(finite_widths), 6) if finite_widths else None
            ),
            "mean_width": (
                round(float(np.mean(finite_widths)), 6)
                if finite_widths
                else None
            ),
        },
        chaos_rates=list(outage_rates),
        chaos_unavailable=int(sum(unavailable_counts)),
    )

    return ExperimentResult(
        title=(
            "Chaos sweep: outage rate vs bound width under resilient "
            "fleet execution"
        ),
        knob_label="outage rate",
        knobs=list(outage_rates),
        series={
            "mean bound width": bound_widths,
            "mean cameras lost": lost_means,
            "mean frame coverage": coverage_means,
            "mean retries": retry_means,
            "bound violation rate": violation_rates,
            "unavailable fleets": unavailable_counts,
        },
        notes=(
            f"{camera_count} cameras, f={fraction}, delta={delta}, "
            f"{trials} trials per rate; transient/drop/straggler rates "
            "scale with the outage rate (q/2, q/4, q/4)",
            "bound validity is against the exact surviving-fleet answer; "
            "lost strata are excised and reported via coverage",
        ),
    )
