"""Chaos sweeps: network faults and hostile scenarios vs the bounds.

Two robustness claims live here.

:func:`run_chaos` (network chaos): with faults injected at increasing
rates, the resilient :class:`~repro.system.fleet.FleetQueryProcessor`
keeps returning valid (wider) surviving-fleet bounds instead of crashing
or silently under-covering. The sweep tabulates the mean combined bound
width, cameras lost, fleet frame coverage, retry volume, and the empirical
coverage of the exact surviving-fleet answer — which must stay at or above
``1 - delta`` regardless of the fault rate.

:func:`run_scenario_chaos` (scenario chaos): one camera in the fleet is
hit by an adversarial or physical scenario from the :data:`SCENARIOS` zoo
while the rest stay healthy, and the sweep answers the ROADMAP's three
questions per severity — do the profiled bounds still hold (violation
rate), does the sentinel detect the break and does automatic repair cover
the realized error (recall / repair catch rate), and can the fleet
localize the culprit camera (localization accuracy) — while clean cameras
must stay unflagged (false-positive rate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.detection.zoo import mask_rcnn_like, yolo_v4_like
from repro.errors import ConfigurationError, TransmissionError
from repro.estimators.base import Estimate
from repro.estimators.smokescreen import SmokescreenMeanEstimator
from repro.experiments.reporting import ExperimentResult
from repro.experiments.workloads import load_dataset, shared_suite
from repro.interventions.adversarial import (
    AdversarialCompression,
    TargetedFrameCorruption,
)
from repro.interventions.base import Intervention
from repro.interventions.physical import (
    CameraMisalignment,
    Occlusion,
    WeatherExposure,
)
from repro.query.processor import QueryProcessor
from repro.system.camera import Camera
from repro.system.faults import FaultModel
from repro.system.executor import ExecutorConfig, ParallelExecutor
from repro.system.fleet import FleetQueryProcessor, FleetSentinel
from repro.system.observe import ledger as run_ledger

DEFAULT_OUTAGE_RATES = (0.0, 0.1, 0.2, 0.3, 0.5)


@dataclass(frozen=True)
class ScenarioSpec:
    """One entry of the scenario zoo.

    Attributes:
        name: CLI-facing scenario name.
        kind: ``"adversarial"`` or ``"physical"``.
        severities: Default severity sweep, mildest first.
        build: Maps a severity to the intervention instance.
    """

    name: str
    kind: str
    severities: tuple[float, ...]
    build: Callable[[float], Intervention]


#: The scenario zoo: every entry pairs an unchosen-degradation
#: intervention with its detector-response model (via ``attach``).
SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            name="targeted-corruption",
            kind="adversarial",
            severities=(0.05, 0.15, 0.3),
            build=TargetedFrameCorruption,
        ),
        ScenarioSpec(
            name="compression-attack",
            kind="adversarial",
            severities=(0.05, 0.15, 0.3),
            build=AdversarialCompression,
        ),
        ScenarioSpec(
            name="occlusion",
            kind="physical",
            severities=(0.3, 0.5, 0.7),
            build=Occlusion,
        ),
        ScenarioSpec(
            name="misalignment",
            kind="physical",
            severities=(0.3, 0.5, 0.7),
            build=CameraMisalignment,
        ),
        ScenarioSpec(
            name="weather",
            kind="physical",
            # Weather must be near-whiteout before its drift clears the
            # streaming allowance: milder exposure loss shrinks counts
            # gradually rather than zeroing frames like occlusion does.
            severities=(0.5, 0.75, 0.95),
            build=WeatherExposure,
        ),
    )
}


def _build_cameras(
    camera_count: int, frame_count: int | None, fraction: float
) -> list[Camera]:
    suite = shared_suite()
    frames = frame_count or 2000
    cameras = []
    for index in range(camera_count):
        name = "ua-detrac" if index % 2 == 0 else "night-street"
        camera = Camera(f"cam{index}", load_dataset(name, frames), suite)
        camera.configure(fraction=fraction)
        cameras.append(camera)
    return cameras


def _model_for(camera: Camera):
    if camera.dataset.name.startswith("ua-detrac"):
        return yolo_v4_like()
    return mask_rcnn_like()


def _surviving_truth(
    cameras: list[Camera], surviving: tuple[str, ...]
) -> float:
    """The exact AVG over the frames of the surviving cameras."""
    weight_total = 0
    weighted = 0.0
    for camera in cameras:
        if camera.name not in surviving:
            continue
        counts = _model_for(camera).run(camera.dataset).counts
        weighted += counts.mean() * camera.dataset.frame_count
        weight_total += camera.dataset.frame_count
    return weighted / weight_total


def run_chaos(
    trials: int = 10,
    frame_count: int | None = None,
    seed: int = 0,
    outage_rates: tuple[float, ...] = DEFAULT_OUTAGE_RATES,
    camera_count: int = 5,
    fraction: float = 0.2,
    delta: float = 0.05,
    workers: int | str = 1,
) -> ExperimentResult:
    """Sweep outage rates and tabulate graceful-degradation metrics.

    At each outage rate ``q`` the fleet also suffers transient failures at
    ``q / 2``, frame drops at ``q / 4``, and stragglers at ``q / 4`` — a
    proportional chaos profile. Each trial constructs a fresh processor
    (fresh breakers and clock) so trials are independent and every fault
    sequence is reproducible from ``(seed, trial index)``.

    Args:
        trials: Seeded trials per outage rate.
        frame_count: Per-camera corpus size (None → 2000).
        seed: Root seed.
        outage_rates: The swept per-query camera outage probabilities.
        camera_count: Fleet size.
        fraction: Per-camera sampling fraction.
        delta: Total failure probability per query.
        workers: Worker processes for the per-camera values stage, or
            ``"auto"``; 1 keeps every query in-process. Results are
            identical for any value.

    Returns:
        The outage-rate → bound-width table.
    """
    cameras = _build_cameras(camera_count, frame_count, fraction)
    processor = QueryProcessor(shared_suite())
    executor = (
        ParallelExecutor(ExecutorConfig(workers=workers))
        if workers != 1
        else None
    )

    bound_widths: list[float] = []
    lost_means: list[float] = []
    coverage_means: list[float] = []
    retry_means: list[float] = []
    violation_rates: list[float] = []
    unavailable_counts: list[float] = []
    for rate_index, rate in enumerate(outage_rates):
        faults = FaultModel(
            outage_probability=rate,
            transient_failure_probability=rate / 2.0,
            frame_drop_probability=rate / 4.0,
            straggler_probability=rate / 4.0,
        )
        widths: list[float] = []
        lost: list[int] = []
        coverages: list[float] = []
        retries: list[int] = []
        violations = 0
        unavailable = 0
        for trial in range(trials):
            fleet = FleetQueryProcessor(
                cameras,
                processor,
                faults=faults,
                fault_seed=seed + 1000 * rate_index,
                executor=executor,
            )
            try:
                report = fleet.execute(
                    _model_for, delta=delta, seed=seed + trial
                )
            except TransmissionError:
                unavailable += 1
                continue
            widths.append(report.combined.error_bound)
            lost.append(len(report.lost))
            coverages.append(report.coverage)
            retries.append(report.total_retries)
            truth = _surviving_truth(cameras, report.surviving)
            error = abs(report.combined.value - truth) / truth
            if error > report.combined.error_bound:
                violations += 1
        answered = len(widths)
        bound_widths.append(float(np.mean(widths)) if answered else float("nan"))
        lost_means.append(float(np.mean(lost)) if answered else float("nan"))
        coverage_means.append(
            float(np.mean(coverages)) if answered else float("nan")
        )
        retry_means.append(float(np.mean(retries)) if answered else float("nan"))
        violation_rates.append(
            violations / answered if answered else float("nan")
        )
        unavailable_counts.append(float(unavailable))

    finite_widths = [w for w in bound_widths if np.isfinite(w)]
    run_ledger.annotate(
        bounds={
            "max_width": (
                round(max(finite_widths), 6) if finite_widths else None
            ),
            "mean_width": (
                round(float(np.mean(finite_widths)), 6)
                if finite_widths
                else None
            ),
        },
        chaos_rates=list(outage_rates),
        chaos_unavailable=int(sum(unavailable_counts)),
    )

    return ExperimentResult(
        title=(
            "Chaos sweep: outage rate vs bound width under resilient "
            "fleet execution"
        ),
        knob_label="outage rate",
        knobs=list(outage_rates),
        series={
            "mean bound width": bound_widths,
            "mean cameras lost": lost_means,
            "mean frame coverage": coverage_means,
            "mean retries": retry_means,
            "bound violation rate": violation_rates,
            "unavailable fleets": unavailable_counts,
        },
        notes=(
            f"{camera_count} cameras, f={fraction}, delta={delta}, "
            f"{trials} trials per rate; transient/drop/straggler rates "
            "scale with the outage rate (q/2, q/4, q/4)",
            "bound validity is against the exact surviving-fleet answer; "
            "lost strata are excised and reported via coverage",
        ),
    )


def _clean_truths(cameras: list[Camera]) -> dict[str, float]:
    """Exact per-camera AVG on clean video (the profiling-time answers)."""
    return {
        camera.name: float(_model_for(camera).run(camera.dataset).counts.mean())
        for camera in cameras
    }


def _arm_sentinel(
    cameras: list[Camera],
    processor: QueryProcessor,
    truths: dict[str, float],
    delta: float,
    seed: int,
) -> tuple[FleetSentinel, dict[str, float]]:
    """Build the profiling-time sentinel state for a fleet.

    References are the exact clean answers (profiling on simulated video
    is exhaustive, so the reference bound is zero); the profiled bound per
    camera is what one clean seeded query actually reported at the
    per-survivor budget; corrections are random-intervention samples of
    the clean per-frame values, enabling automatic Algorithm 3 repair.
    """
    clean_report = FleetQueryProcessor(cameras, processor).execute(
        _model_for, delta=delta, seed=seed
    )
    profiled = {
        name: float(report.estimate.error_bound)
        for name, report in clean_report.per_camera.items()
    }
    references = {
        camera.name: Estimate(
            value=truths[camera.name],
            error_bound=0.0,
            method="exact",
            n=camera.dataset.frame_count,
            universe_size=camera.dataset.frame_count,
        )
        for camera in cameras
    }
    rng = np.random.default_rng(seed)
    corrections = {}
    for camera in cameras:
        counts = _model_for(camera).run(camera.dataset).counts.astype(float)
        correction_set = rng.choice(
            counts, size=min(400, counts.size), replace=False
        )
        corrections[camera.name] = SmokescreenMeanEstimator().estimate(
            correction_set, counts.size, delta
        )
    sentinel = FleetSentinel(
        references, profiled, corrections=corrections, patience=2
    )
    return sentinel, profiled


def run_scenario_chaos(
    scenario: str,
    trials: int = 8,
    frame_count: int | None = None,
    seed: int = 0,
    severities: tuple[float, ...] | None = None,
    camera_count: int = 4,
    fraction: float = 0.5,
    delta: float = 0.05,
    victim_index: int = 0,
    workers: int | str = 1,
) -> ExperimentResult:
    """Hit one camera with a zoo scenario and audit the fleet's defenses.

    Per severity, seeded trials run a fleet query in which the victim
    camera's detector is wrapped by the scenario's response model while
    every other camera stays healthy. The armed :class:`FleetSentinel`
    audits each camera's delivered stream, and the sweep tabulates:

    - **bound violation rate** — how often the victim's realized error
      actually exceeded its profiled bound (ground truth, not detection);
    - **sentinel recall** — violations the sentinel confirmed, over
      violations that occurred;
    - **sentinel false-positive rate** — clean-camera audits flagged, over
      clean-camera audits performed (must be 0 on healthy cameras);
    - **repair catch rate** — flagged-victim trials where the automatic
      Algorithm 3 bound covered the victim's realized error;
    - **localization accuracy** — trials where the flagged set was exactly
      the victim.

    Args:
        scenario: A :data:`SCENARIOS` name.
        trials: Seeded trials per severity.
        frame_count: Per-camera corpus size (None → 2000).
        seed: Root seed.
        severities: Severity sweep override (defaults to the spec's).
        camera_count: Fleet size.
        fraction: Per-camera sampling fraction. The default 0.5 keeps the
            streaming bound tight enough (~0.1 relative at 2000 frames)
            that mid-severity drifts are detectable at all.
        delta: Total failure probability per query.
        victim_index: Which camera the scenario hits.
        workers: Worker processes for the per-camera values stage, or
            ``"auto"``; 1 keeps every query in-process. Results are
            identical for any value.

    Returns:
        The severity → defense-metrics table.
    """
    spec = SCENARIOS.get(scenario)
    if spec is None:
        raise ConfigurationError(
            f"unknown scenario {scenario!r}; valid: {sorted(SCENARIOS)}"
        )
    swept = tuple(severities) if severities is not None else spec.severities
    if not swept:
        raise ConfigurationError("scenario sweep needs at least one severity")

    cameras = _build_cameras(camera_count, frame_count, fraction)
    processor = QueryProcessor(shared_suite())
    victim = cameras[victim_index % len(cameras)].name
    truths = _clean_truths(cameras)
    sentinel, profiled = _arm_sentinel(cameras, processor, truths, delta, seed)
    executor = (
        ParallelExecutor(ExecutorConfig(workers=workers))
        if workers != 1
        else None
    )

    violation_rates: list[float] = []
    recalls: list[float] = []
    fp_rates: list[float] = []
    repair_rates: list[float] = []
    localization: list[float] = []
    for severity in swept:
        # One hostile detector per camera, shared across trials so the
        # full-corpus outputs are evaluated once per severity.
        models = {}
        for camera in cameras:
            model = _model_for(camera)
            if camera.name == victim:
                model = spec.build(severity).attach(model)
            models[camera.name] = model

        violated = 0
        detected = 0
        false_flags = 0
        clean_audits = 0
        repaired = 0
        localized = 0
        for trial in range(trials):
            fleet = FleetQueryProcessor(
                cameras, processor, sentinel=sentinel, executor=executor
            )
            report = fleet.execute(
                lambda camera: models[camera.name],
                delta=delta,
                seed=seed + trial,
            )
            audit = report.sentinel
            victim_estimate = report.per_camera[victim].estimate
            realized = (
                abs(victim_estimate.value - truths[victim])
                / abs(truths[victim])
            )
            is_violation = realized > profiled[victim]
            victim_flagged = victim in audit.flagged
            if is_violation:
                violated += 1
                if victim_flagged:
                    detected += 1
            false_flags += sum(
                1 for name in audit.flagged if name != victim
            )
            clean_audits += sum(
                1 for name in audit.verdicts if name != victim
            )
            if victim_flagged:
                repair = audit.verdicts[victim].repair
                if repair is not None and realized <= repair.error_bound:
                    repaired += 1
            if audit.flagged == (victim,):
                localized += 1

        violation_rates.append(violated / trials)
        recalls.append(detected / violated if violated else float("nan"))
        fp_rates.append(false_flags / clean_audits if clean_audits else 0.0)
        repair_rates.append(repaired / detected if detected else float("nan"))
        localization.append(localized / trials)

    # Headline numbers for the run ledger and the perf gate: recall /
    # repair at the top severity (where violations are certain), FPR
    # pooled over every severity (clean cameras must never flag).
    total_clean = len(swept) * trials * (len(cameras) - 1)
    pooled_fpr = (
        float(np.nansum([f * trials * (len(cameras) - 1) for f in fp_rates]))
        / total_clean
        if total_clean
        else 0.0
    )
    top_recall = recalls[-1]
    top_repair = repair_rates[-1]
    top_localization = localization[-1]
    if np.isnan(top_recall):
        verdict = "no-violation"
    elif top_recall == 1.0 and pooled_fpr == 0.0:
        verdict = "detected"
    elif top_recall > 0.0:
        verdict = "partial"
    else:
        verdict = "missed"

    run_ledger.annotate(
        bounds={
            "profiled_victim": round(profiled[victim], 6),
            "violation_rate_top": round(violation_rates[-1], 6),
        },
        scenario=spec.name,
        scenario_kind=spec.kind,
        scenario_victim=victim,
        sentinel={
            "recall": None if np.isnan(top_recall) else round(top_recall, 6),
            "fpr": round(pooled_fpr, 6),
            "repair_catch": (
                None if np.isnan(top_repair) else round(top_repair, 6)
            ),
            "localization": round(top_localization, 6),
            "verdict": verdict,
        },
    )
    run_ledger.record_event(
        "chaos.scenario",
        scenario=spec.name,
        kind=spec.kind,
        victim=victim,
        severities=list(swept),
        recall=None if np.isnan(top_recall) else round(top_recall, 6),
        fpr=round(pooled_fpr, 6),
        localization=round(top_localization, 6),
        verdict=verdict,
    )

    return ExperimentResult(
        title=(
            f"Scenario chaos: {spec.name} ({spec.kind}) on camera "
            f"{victim!r} vs the bound sentinel"
        ),
        knob_label="severity",
        knobs=list(swept),
        series={
            "bound violation rate": violation_rates,
            "sentinel recall": recalls,
            "sentinel false-positive rate": fp_rates,
            "repair catch rate": repair_rates,
            "localization accuracy": localization,
        },
        notes=(
            f"{camera_count} cameras, victim={victim}, f={fraction}, "
            f"delta={delta}, {trials} trials per severity",
            "references are exact clean answers; profiled bounds come "
            "from one clean seeded query; corrections are clean random "
            "samples (n<=400) enabling automatic Algorithm 3 repair",
            f"sentinel verdict: {verdict} (top-severity recall, pooled "
            "FPR over clean cameras)",
        ),
    )
