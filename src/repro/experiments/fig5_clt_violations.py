"""Figure 5: how often the CLT bound falls below the true error.

The paper shows the percentage of 100 trials in which CLT's nominal 95%
guarantee fails on UA-DETRAC — well above the 5% a valid bound would allow
at small sample fractions, because the sample standard deviation badly
underestimates the spread of skewed data at tiny ``n``.

Each method is scored against its own 95% claim: for CLT, that the true
mean lies inside ``x_bar ± z * sigma_hat / sqrt(n)``; for Smokescreen, that
the true relative error is at most ``err_b``. (Scoring CLT through the
ratio-bound construction would mask failures: whenever the radius swallows
the sample mean the relative bound is infinite and can never be violated,
yet the interval itself missed the truth.)
"""

from __future__ import annotations

import numpy as np

from repro.estimators.smokescreen import SmokescreenMeanEstimator
from repro.experiments.reporting import ExperimentResult
from repro.experiments.workloads import UA_DETRAC, Workload, shared_suite
from repro.query.aggregates import Aggregate
from repro.query.processor import QueryProcessor
from repro.stats.hypergeometric import z_score
from repro.stats.sampling import SampleDesign


def run_fig5(
    dataset_name: str = UA_DETRAC,
    aggregate: Aggregate = Aggregate.AVG,
    trials: int = 100,
    frame_count: int | None = None,
    fractions: tuple[float, ...] | None = None,
    seed: int = 0,
    delta: float = 0.05,
) -> ExperimentResult:
    """Regenerate Figure 5's violation percentages.

    Args:
        dataset_name: Corpus (paper: UA-DETRAC).
        aggregate: Aggregate (paper: a mean-family query).
        trials: Trials per fraction (paper: 100).
        frame_count: Optional reduced corpus size.
        fractions: The small-fraction grid; defaults to the region where
            CLT misbehaves.
        seed: Trial randomness seed.
        delta: Nominal failure probability of both methods.

    Returns:
        Violation percentages per fraction for CLT and Smokescreen.
    """
    workload = Workload(dataset_name, aggregate, frame_count)
    query = workload.query()
    values = QueryProcessor(shared_suite()).true_values(query)
    population = values.size
    mu = float(values.mean())
    rng = np.random.default_rng(seed)
    z = z_score(delta)
    estimator = SmokescreenMeanEstimator()

    if fractions is None:
        fractions = (0.0005, 0.001, 0.002, 0.004, 0.008, 0.016, 0.032)

    series: dict[str, list[float]] = {
        "clt_violation_pct": [],
        "smokescreen_violation_pct": [],
    }
    for fraction in fractions:
        n = SampleDesign(population, fraction).size
        clt_misses = 0
        our_misses = 0
        for _ in range(trials):
            sample = values[rng.choice(population, size=n, replace=False)]
            sample_mean = float(sample.mean())
            if n >= 2:
                radius = z * float(sample.std(ddof=1)) / np.sqrt(n)
            else:
                radius = 0.0
            if abs(sample_mean - mu) > radius:
                clt_misses += 1
            estimate = estimator.estimate(sample, population, delta)
            if abs(estimate.value - mu) / mu > estimate.error_bound:
                our_misses += 1
        series["clt_violation_pct"].append(100.0 * clt_misses / trials)
        series["smokescreen_violation_pct"].append(100.0 * our_misses / trials)

    return ExperimentResult(
        title=(
            f"Figure 5: % of {trials} trials where the 95% claim fails "
            f"({workload.name})"
        ),
        knob_label="fraction",
        knobs=list(fractions),
        series=series,
        notes=(
            "a valid 95% bound must stay at or below 5%",
            "CLT exceeds it at small fractions; Smokescreen does not",
            "each method is scored against its own guarantee (CLT: interval "
            "coverage; Smokescreen: relative error bound)",
        ),
    )
