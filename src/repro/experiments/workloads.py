"""The paper's workloads (§5.1).

A workload is a video dataset, a trained detector, an aggregate function,
and a set of destructive interventions. The paper pairs Mask R-CNN with
night-street and YOLOv4 with UA-DETRAC, detection threshold 0.7, and runs
AVG / SUM / COUNT / MAX (0.99-quantile) over car counts.

Datasets and detectors are cached at module level: corpora are immutable
and detector output caches are per-(dataset, resolution), so sharing them
across experiments mirrors the paper's stored prior information and keeps
benchmark runtimes dominated by the algorithms, not regeneration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detection.base import Detector
from repro.detection.zoo import (
    DetectorSuite,
    default_suite,
    mask_rcnn_like,
    yolo_v4_like,
)
from repro.errors import ConfigurationError
from repro.query.aggregates import Aggregate
from repro.query.query import AggregateQuery
from repro.video import night_street, ua_detrac
from repro.video.dataset import VideoDataset

NIGHT_STREET = "night-street"
UA_DETRAC = "ua-detrac"
DATASET_NAMES = (NIGHT_STREET, UA_DETRAC)

_dataset_cache: dict[tuple[str, int | None], VideoDataset] = {}
_model_cache: dict[str, Detector] = {}
_suite_cache: list[DetectorSuite] = []


def load_dataset(name: str, frame_count: int | None = None) -> VideoDataset:
    """The named corpus, generated once and cached.

    Args:
        name: ``"night-street"`` or ``"ua-detrac"``.
        frame_count: Optional reduced frame count (tests); None uses the
            paper's full size.

    Returns:
        The cached corpus.
    """
    key = (name, frame_count)
    cached = _dataset_cache.get(key)
    if cached is not None:
        return cached
    if name == NIGHT_STREET:
        dataset = night_street(**({"frame_count": frame_count} if frame_count else {}))
    elif name == UA_DETRAC:
        dataset = ua_detrac(**({"frame_count": frame_count} if frame_count else {}))
    else:
        raise ConfigurationError(
            f"unknown dataset {name!r}; valid: {DATASET_NAMES}"
        )
    _dataset_cache[key] = dataset
    return dataset


def model_for(dataset_name: str) -> Detector:
    """The paper's detector pairing: Mask R-CNN for night-street, YOLOv4
    for UA-DETRAC (both at threshold 0.7), cached for output reuse.

    Args:
        dataset_name: The corpus name.

    Returns:
        The cached detector.
    """
    cached = _model_cache.get(dataset_name)
    if cached is not None:
        return cached
    if dataset_name == NIGHT_STREET:
        model: Detector = mask_rcnn_like()
    elif dataset_name == UA_DETRAC:
        model = yolo_v4_like()
    else:
        raise ConfigurationError(
            f"unknown dataset {dataset_name!r}; valid: {DATASET_NAMES}"
        )
    _model_cache[dataset_name] = model
    return model


def shared_suite() -> DetectorSuite:
    """The restricted-class suite, shared so presence flags are cached."""
    if not _suite_cache:
        _suite_cache.append(default_suite())
    return _suite_cache[0]


@dataclass(frozen=True)
class Workload:
    """One evaluation workload: dataset x detector x aggregate.

    Attributes:
        dataset_name: The corpus name.
        aggregate: The aggregate function.
        frame_count: Optional reduced corpus size.
    """

    dataset_name: str
    aggregate: Aggregate
    frame_count: int | None = None

    @property
    def name(self) -> str:
        """Readable workload name, e.g. ``"ua-detrac/AVG"``."""
        return f"{self.dataset_name}/{self.aggregate.name}"

    def query(self) -> AggregateQuery:
        """Materialise the workload's query (cached corpus + detector)."""
        return AggregateQuery(
            dataset=load_dataset(self.dataset_name, self.frame_count),
            model=model_for(self.dataset_name),
            aggregate=self.aggregate,
        )


#: The fractions at which Figure 4's sweeps end per workload — the paper
#: cuts each curve where it has flattened (§5.2.1).
FIGURE4_END_FRACTIONS: dict[tuple[str, Aggregate], float] = {
    (NIGHT_STREET, Aggregate.AVG): 0.10,
    (NIGHT_STREET, Aggregate.SUM): 0.10,
    (NIGHT_STREET, Aggregate.COUNT): 0.05,
    (NIGHT_STREET, Aggregate.MAX): 0.0015,
    (UA_DETRAC, Aggregate.AVG): 0.06,
    (UA_DETRAC, Aggregate.SUM): 0.06,
    (UA_DETRAC, Aggregate.COUNT): 0.02,
    (UA_DETRAC, Aggregate.MAX): 0.003,
}


def paper_workloads(frame_count: int | None = None) -> list[Workload]:
    """The eight §5.2.1 workloads: 4 aggregates x 2 datasets.

    Args:
        frame_count: Optional reduced corpus size for all workloads.

    Returns:
        The workload list, dataset-major.
    """
    aggregates = (Aggregate.AVG, Aggregate.SUM, Aggregate.COUNT, Aggregate.MAX)
    return [
        Workload(dataset_name=name, aggregate=aggregate, frame_count=frame_count)
        for name in DATASET_NAMES
        for aggregate in aggregates
    ]
