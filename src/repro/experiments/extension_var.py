"""Extension experiment: the VAR aggregate (paper future work, §7).

The paper names VAR as a future aggregate type. Our extension bounds it
through moment intervals (see :mod:`repro.estimators.variance`); this
experiment characterises what a distribution-free VAR bound can and cannot
do on skewed detector outputs:

- the Smokescreen-VAR bound is *valid* at every fraction (0 violations),
- but the second moment's quadratically-growing range makes it informative
  only at large fractions,
- while the delta-method CLT baseline is tight everywhere yet violates its
  nominal confidence level at small fractions — the same tight-vs-trusted
  split as the paper's Figure 4/5 for the mean family.
"""

from __future__ import annotations

import numpy as np

from repro.estimators.variance import (
    CLTVarianceEstimator,
    SmokescreenVarianceEstimator,
)
from repro.experiments.reporting import ExperimentResult
from repro.experiments.workloads import UA_DETRAC, Workload, shared_suite
from repro.query.aggregates import Aggregate
from repro.query.processor import QueryProcessor
from repro.stats.sampling import SampleDesign


def run_extension_var(
    dataset_name: str = UA_DETRAC,
    trials: int = 100,
    frame_count: int | None = None,
    fractions: tuple[float, ...] = (0.002, 0.005, 0.02, 0.1, 0.4, 0.7, 0.9),
    seed: int = 0,
) -> ExperimentResult:
    """Bound vs. true error for the VAR extension.

    Args:
        dataset_name: The corpus.
        trials: Trials per fraction.
        frame_count: Optional reduced corpus size.
        fractions: Sample fractions to sweep (VAR needs larger ones).
        seed: Randomness seed.

    Returns:
        Per fraction: Smokescreen-VAR bound/error/violations and the CLT
        baseline's bound/violations.
    """
    workload = Workload(dataset_name, Aggregate.VAR, frame_count)
    query = workload.query()
    values = QueryProcessor(shared_suite()).true_values(query)
    population = values.size
    truth = float(values.var())
    rng = np.random.default_rng(seed)

    ours = SmokescreenVarianceEstimator()
    clt = CLTVarianceEstimator()

    series: dict[str, list[float]] = {
        "smokescreen_bound": [],
        "smokescreen_err": [],
        "smokescreen_violation_pct": [],
        "clt_bound": [],
        "clt_violation_pct": [],
    }
    for fraction in fractions:
        n = SampleDesign(population, fraction).size
        our_bounds: list[float] = []
        our_errors: list[float] = []
        our_misses = 0
        clt_bounds: list[float] = []
        clt_misses = 0
        for _ in range(trials):
            sample = values[rng.choice(population, size=n, replace=False)]
            our_estimate = ours.estimate(sample, population, query.delta)
            error = abs(our_estimate.value - truth) / truth
            our_bounds.append(our_estimate.error_bound)
            our_errors.append(error)
            if error > our_estimate.error_bound:
                our_misses += 1
            clt_estimate = clt.estimate(sample, population, query.delta)
            clt_error = abs(clt_estimate.value - truth) / truth
            if np.isfinite(clt_estimate.error_bound):
                clt_bounds.append(clt_estimate.error_bound)
            if clt_error > clt_estimate.error_bound:
                clt_misses += 1
        series["smokescreen_bound"].append(float(np.mean(our_bounds)))
        series["smokescreen_err"].append(float(np.mean(our_errors)))
        series["smokescreen_violation_pct"].append(100.0 * our_misses / trials)
        series["clt_bound"].append(
            float(np.mean(clt_bounds)) if clt_bounds else float("inf")
        )
        series["clt_violation_pct"].append(100.0 * clt_misses / trials)

    return ExperimentResult(
        title=(
            f"Extension: VAR aggregate bounds ({workload.name}, "
            f"{trials} trials; true VAR = {truth:.2f})"
        ),
        knob_label="fraction",
        knobs=list(fractions),
        series=series,
        notes=(
            "VAR is the paper's named future-work aggregate (§7)",
            "Smokescreen-VAR: always valid; informative only at large "
            "fractions (the second moment's range grows quadratically)",
            "CLT-VAR: tight everywhere but unguaranteed (violations occur; "
            "some are masked when the ratio bound degenerates to infinity)",
        ),
    )
