"""Figure 3: real degradation-accuracy tradeoff curves are video-dependent.

The paper plots the true relative error of the AVG car-count query against
frame resolution on night-street and UA-DETRAC, both with YOLOv4, and
observes the two curves differ substantially — the motivation for video-
and query-specific profiles.
"""

from __future__ import annotations

from repro.detection.zoo import yolo_v4_like
from repro.experiments.reporting import ExperimentResult
from repro.experiments.workloads import DATASET_NAMES, load_dataset
from repro.video.geometry import Resolution, resolution_grid


def run_fig3(
    frame_count: int | None = None,
    resolution_count: int = 10,
) -> ExperimentResult:
    """Regenerate Figure 3's two true tradeoff curves.

    The curves are *true* errors (full oracle access): mean model output at
    each resolution against the native-resolution mean, over all frames.

    Args:
        frame_count: Optional reduced corpus size.
        resolution_count: Number of resolution grid points.

    Returns:
        One series per dataset over the shared resolution grid.
    """
    model = yolo_v4_like()
    # Use the smaller native side so the grid is shared by both corpora.
    smallest_native = min(
        load_dataset(name, frame_count).native_resolution.side
        for name in DATASET_NAMES
    )
    grid = resolution_grid(Resolution(smallest_native), resolution_count)

    series: dict[str, list[float]] = {}
    for name in DATASET_NAMES:
        dataset = load_dataset(name, frame_count)
        truth = model.run(dataset).counts.mean()
        errors = []
        for resolution in grid:
            degraded = model.run(dataset, resolution).counts.mean()
            errors.append(abs(degraded - truth) / truth)
        series[name] = errors

    return ExperimentResult(
        title="Figure 3: true AVG tradeoff curves vs resolution (YOLOv4-like)",
        knob_label="resolution",
        knobs=[float(resolution.side) for resolution in grid],
        series=series,
        notes=(
            "both curves are true relative errors with full oracle access",
            "the curves differ by dataset: the motivation for per-video profiles",
        ),
    )
