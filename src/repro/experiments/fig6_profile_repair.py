"""Figure 6: error bounds with and without the correction set.

Three rows per dataset and aggregate (AVG, MAX): the varying knob is
sampling fraction, frame resolution, or restricted class, with the other
two fixed. The expected shapes (§5.2.2):

- sampling row: both bounds valid; the corrected bound can be tighter when
  the correction set carries more information than the degraded sample;
- resolution and removal rows: the *uncorrected* bound falls below the true
  error at strong interventions (low resolution / "person" removal) —
  circled red in the paper — while the corrected bound always covers it.

Correction-set sizes follow §5.2.2: 6% (night-street AVG), 2% (night-street
MAX), 4% (UA-DETRAC AVG), 2% (UA-DETRAC MAX). The sample fraction is fixed
at 0.5 while varying non-random knobs, except 0.1 for UA-DETRAC person
removal (fewer than half the frames survive it).
"""

from __future__ import annotations

import numpy as np

from repro.core.correction import CorrectionSet
from repro.errors import ConfigurationError
from repro.experiments.reporting import ExperimentResult
from repro.experiments.trials import run_repair_trials_seeded
from repro.system.executor import ExecutorConfig, ParallelExecutor
from repro.experiments.workloads import (
    NIGHT_STREET,
    UA_DETRAC,
    Workload,
    shared_suite,
)
from repro.interventions.plan import InterventionPlan
from repro.query.aggregates import Aggregate
from repro.query.processor import QueryProcessor
from repro.stats.sampling import ProgressiveSampler
from repro.system.observe import ledger as run_ledger
from repro.video.frame import ObjectClass
from repro.video.geometry import resolution_grid

#: §5.2.2's correction-set fractions per (dataset, aggregate).
CORRECTION_FRACTIONS: dict[tuple[str, Aggregate], float] = {
    (NIGHT_STREET, Aggregate.AVG): 0.06,
    (NIGHT_STREET, Aggregate.MAX): 0.02,
    (UA_DETRAC, Aggregate.AVG): 0.04,
    (UA_DETRAC, Aggregate.MAX): 0.02,
}

AXES = ("sampling", "resolution", "removal")


def build_correction(
    processor: QueryProcessor,
    workload: Workload,
    fraction: float,
    rng: np.random.Generator,
) -> CorrectionSet:
    """A correction set of a prescribed fraction (bypassing the heuristic).

    Args:
        processor: The query processor.
        workload: The workload the set serves.
        fraction: The set's size as a corpus fraction.
        rng: Randomness for the underlying sample.

    Returns:
        The correction set (trace contains only the final size).
    """
    query = workload.query()
    population = query.dataset.frame_count
    size = max(1, round(population * fraction))
    sampler = ProgressiveSampler(population, rng)
    indices = sampler.prefix(size)
    values = processor.true_values(query)[indices]
    return CorrectionSet(
        frame_indices=indices,
        values=values,
        error_bound=float("nan"),
        trace=((size, float("nan")),),
    )


def _plan_for(axis: str, knob, fixed_fraction: float) -> InterventionPlan:
    if axis == "sampling":
        return InterventionPlan.from_knobs(f=float(knob))
    if axis == "resolution":
        return InterventionPlan.from_knobs(f=fixed_fraction, p=int(knob))
    if axis == "removal":
        return InterventionPlan.from_knobs(f=fixed_fraction, c=knob)
    raise ConfigurationError(f"unknown Figure 6 axis {axis!r}; valid: {AXES}")


def _knob_grid(axis: str, workload: Workload, frame_count: int | None):
    if axis == "sampling":
        return (0.01, 0.02, 0.05, 0.1, 0.2, 0.4)
    if axis == "resolution":
        dataset = workload.query().dataset
        grid = resolution_grid(dataset.native_resolution, 8)
        return tuple(resolution.side for resolution in grid)
    return ((), (ObjectClass.FACE,), (ObjectClass.PERSON,),
            (ObjectClass.PERSON, ObjectClass.FACE))


def _knob_label(axis: str, knob) -> object:
    if axis == "removal":
        return "+".join(cls.name.lower() for cls in knob) if knob else "none"
    return float(knob)


def run_fig6(
    dataset_name: str,
    aggregate: Aggregate,
    axis: str,
    trials: int = 100,
    frame_count: int | None = None,
    seed: int = 0,
    workers: int | str = 1,
    vectorized: bool = True,
) -> ExperimentResult:
    """Regenerate one Figure 6 row.

    Trials use per-``(knob, trial)`` seed streams, so the row is a pure
    function of ``seed`` — identical for any worker count.

    Args:
        dataset_name: The corpus.
        aggregate: AVG or MAX (the paper only tests these two; SUM/COUNT
            share AVG's algorithm).
        axis: ``"sampling"``, ``"resolution"`` or ``"removal"``.
        trials: Sampling trials per knob (paper: 100).
        frame_count: Optional reduced corpus size.
        seed: Trial randomness seed.
        workers: Worker processes for the trial loops (``"auto"`` defers
            to the host and workload size).
        vectorized: Price trials with the batch estimator kernels (the
            default); False keeps the per-trial loops.

    Returns:
        Series: bound without correction, bound with correction, true error.
    """
    if aggregate not in (Aggregate.AVG, Aggregate.MAX):
        raise ConfigurationError("Figure 6 evaluates AVG and MAX only")
    workload = Workload(dataset_name, aggregate, frame_count)
    query = workload.query()
    processor = QueryProcessor(shared_suite())
    rng = np.random.default_rng(seed)

    correction = build_correction(
        processor, workload, CORRECTION_FRACTIONS[(dataset_name, aggregate)], rng
    )

    # §5.2.2's exception: UA-DETRAC person removal leaves under half the
    # frames, so the fixed fraction drops to 0.1 on the removal axis.
    fixed_fraction = 0.1 if (axis == "removal" and dataset_name == UA_DETRAC) else 0.5

    knobs = _knob_grid(axis, workload, frame_count)
    series: dict[str, list[float]] = {
        "bound_no_correction": [],
        "bound_with_correction": [],
        "true_error": [],
    }
    executor = ParallelExecutor(ExecutorConfig(workers=workers))
    for knob in knobs:
        plan = _plan_for(axis, knob, fixed_fraction)
        # setting_index 0 for every knob: trial t draws the same stream at
        # each knob, keeping the row's knobs comparable (the legacy loop
        # re-created the same generator per knob for the same reason).
        summary = run_repair_trials_seeded(
            processor, query, plan, correction.values, trials, seed + 1,
            setting_index=0, executor=executor, vectorized=vectorized,
        )
        series["bound_no_correction"].append(summary.uncorrected_bound)
        series["bound_with_correction"].append(summary.corrected_bound)
        series["true_error"].append(summary.true_error)

    run_ledger.annotate(dataset=dataset_name)
    run_ledger.record_event(
        "fig6.row",
        dataset=dataset_name,
        aggregate=aggregate.name,
        axis=axis,
        correction_fraction=CORRECTION_FRACTIONS[(dataset_name, aggregate)],
        corrected_bound_max=round(max(series["bound_with_correction"]), 6),
    )

    return ExperimentResult(
        title=(
            f"Figure 6 row: {workload.name}, {axis} axis — bounds w/ and "
            f"w/o correction set ({trials} trials)"
        ),
        knob_label=axis,
        knobs=[_knob_label(axis, knob) for knob in knobs],
        series=series,
        notes=(
            f"correction set: "
            f"{CORRECTION_FRACTIONS[(dataset_name, aggregate)]:.0%} of frames",
            f"fixed sample fraction {fixed_fraction} on non-sampling axes",
            "validity check: bound_with_correction >= true_error everywhere",
        ),
    )
