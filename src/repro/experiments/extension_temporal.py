"""Extension experiment: sequence models break the random classification.

The paper's §7 warns that for frame-*sequence* models, reduced frame
sampling is not a random intervention — the model's inputs change with the
sampling pattern, so neither the basic bounds nor profile repair directly
apply. This experiment makes the failure measurable and evaluates a
pragmatic mitigation:

- **Workload**: a motion-event UDF (did the car count change between
  processed frames, :class:`~repro.detection.temporal.MotionEventDetector`)
  whose true answer is the share of motion frames over consecutive frames.
  Its output is bounded in [0, 1], so the naive bound gets *tight* while
  the sampling-gap bias stays — the sharpest failure.
- **Naive treatment**: pretend sampling is random and apply Algorithm 1 to
  the sampled flow values. Expected: sparse samples inflate the flow
  (distant frames decorrelate), the estimate is biased upward, and the
  "bound" is violated far more often than delta.
- **Window repair (heuristic)**: use several *contiguous* correction
  windows — consecutive frames preserve the sequence structure, so window
  flow values are unbiased, and spreading the budget over multiple windows
  at random positions tames the cluster variance a single window would
  have — and transfer their bound via Equation 12. This is an empirical
  mitigation without the paper's formal guarantee (windows are cluster
  samples, not an SRS), exactly the future-work gap §7 names; the
  experiment reports how well it does in practice.
"""

from __future__ import annotations

import numpy as np

from repro.detection.temporal import MotionEventDetector
from repro.estimators.repair import ProfileRepair
from repro.estimators.smokescreen import SmokescreenMeanEstimator
from repro.experiments.reporting import ExperimentResult
from repro.experiments.trials import capped
from repro.experiments.workloads import UA_DETRAC, load_dataset, model_for


def run_extension_temporal(
    dataset_name: str = UA_DETRAC,
    trials: int = 100,
    frame_count: int | None = None,
    fractions: tuple[float, ...] = (0.02, 0.05, 0.1, 0.2, 0.4),
    window_fraction: float = 0.05,
    window_count: int = 8,
    seed: int = 0,
    delta: float = 0.05,
) -> ExperimentResult:
    """Quantify the §7 failure mode and the window-repair mitigation.

    Args:
        dataset_name: The corpus.
        trials: Trials per fraction.
        frame_count: Optional reduced corpus size.
        fractions: Sampling fractions to sweep.
        window_fraction: Total correction budget as a corpus fraction,
            split across the windows.
        window_count: Number of contiguous correction windows.
        seed: Randomness seed.
        delta: Nominal bound failure probability.

    Returns:
        Per fraction: naive bound/violations, window-repaired
        bound/violations, and the true error of the naive estimate.
    """
    dataset = load_dataset(dataset_name, frame_count)
    flow_model = MotionEventDetector(model_for(dataset_name))
    population = dataset.frame_count

    truth = float(flow_model.run(dataset).counts.mean())
    estimator = SmokescreenMeanEstimator()
    rng = np.random.default_rng(seed)
    window_length = max(2, round(population * window_fraction / window_count))

    series: dict[str, list[float]] = {
        "naive_bound": [],
        "naive_violation_pct": [],
        "true_error": [],
        "window_bound": [],
        "window_violation_pct": [],
    }
    for fraction in fractions:
        n = max(2, round(population * fraction))
        naive_bounds: list[float] = []
        errors: list[float] = []
        naive_misses = 0
        window_bounds: list[float] = []
        window_misses = 0
        for _ in range(trials):
            indices = rng.choice(population, size=n, replace=False)
            values = flow_model.run_on_sample(dataset, indices).astype(float)
            naive = estimator.estimate(values, population, delta)
            error = abs(naive.value - truth) / truth
            naive_bounds.append(capped(naive.error_bound))
            errors.append(error)
            if error > naive.error_bound:
                naive_misses += 1

            # Contiguous correction windows: sequence structure preserved
            # within each; random positions average out local drift.
            window_values_parts = []
            for _w in range(window_count):
                start = int(rng.integers(0, population - window_length))
                window_indices = np.arange(start, start + window_length)
                window_values_parts.append(
                    flow_model.run_on_sample(dataset, window_indices).astype(float)
                )
            window_values = np.concatenate(window_values_parts)
            correction = estimator.estimate(window_values, population, delta)
            repaired = ProfileRepair.corrected_mean_bound(naive.value, correction)
            window_bounds.append(capped(repaired))
            if error > repaired:
                window_misses += 1
        series["naive_bound"].append(float(np.mean(naive_bounds)))
        series["naive_violation_pct"].append(100.0 * naive_misses / trials)
        series["true_error"].append(float(np.mean(errors)))
        series["window_bound"].append(float(np.mean(window_bounds)))
        series["window_violation_pct"].append(100.0 * window_misses / trials)

    return ExperimentResult(
        title=(
            f"Extension: sequence model (motion events) under frame sampling "
            f"({dataset_name}, {trials} trials; true motion share = {truth:.3f})"
        ),
        knob_label="fraction",
        knobs=list(fractions),
        series=series,
        notes=(
            "the §7 caveat: sampling is NOT random for sequence models",
            "naive treatment: Algorithm 1 applied as if random — expect "
            "violations far above 5%",
            f"window repair: Eq. 12 with {window_count} contiguous windows "
            f"totalling {window_fraction:.0%} of frames (heuristic; no "
            "formal guarantee)",
        ),
    )
