"""Figure 9: correction-set size versus bound quality, and the elbow.

For two representative intervention sets on UA-DETRAC —
(f=0.1, 256x256, remove person) and (f=0.05, 320x320, remove face) — the
paper plots the corrected error bound against the correction-set fraction,
together with the fraction the §3.3.1 heuristic picks from the set's *own*
bound. Expected: bounds fall steeply then flatten, and the heuristic's
dotted line sits past the steep region of both curves — one size serves
every intervention set, so checking each set is unnecessary (§5.2.3).
"""

from __future__ import annotations

import numpy as np

from repro.core.correction import CorrectionSet, determine_correction_set
from repro.core.profiler import DegradationProfiler
from repro.errors import ConfigurationError
from repro.experiments.reporting import ExperimentResult
from repro.experiments.trials import BOUND_DISPLAY_CAP, capped
from repro.experiments.workloads import UA_DETRAC, Workload, shared_suite
from repro.interventions.plan import InterventionPlan
from repro.query.aggregates import Aggregate
from repro.query.processor import QueryProcessor
from repro.stats.sampling import ProgressiveSampler
from repro.video.frame import ObjectClass

#: The two randomly selected representative intervention sets of §5.2.3.
INTERVENTION_SETS: tuple[InterventionPlan, ...] = (
    InterventionPlan.from_knobs(f=0.1, p=256, c=(ObjectClass.PERSON,)),
    InterventionPlan.from_knobs(f=0.05, p=320, c=(ObjectClass.FACE,)),
)


def run_fig9(
    dataset_name: str = UA_DETRAC,
    aggregate: Aggregate = Aggregate.AVG,
    trials: int = 50,
    frame_count: int | None = None,
    fractions: tuple[float, ...] | None = None,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate one Figure 9 panel (one aggregate).

    Args:
        dataset_name: The corpus (paper: UA-DETRAC).
        aggregate: AVG or MAX.
        trials: Sampling trials per point.
        frame_count: Optional reduced corpus size.
        fractions: Correction-set fractions to sweep; defaults to 1%..10%.
        seed: Randomness seed.

    Returns:
        Corrected bounds per intervention set over correction fractions,
        plus the set's own bound and the heuristic's determined fraction.
    """
    if aggregate not in (Aggregate.AVG, Aggregate.MAX):
        raise ConfigurationError("Figure 9 evaluates AVG and MAX only")
    workload = Workload(dataset_name, aggregate, frame_count)
    query = workload.query()
    processor = QueryProcessor(shared_suite())
    population = query.dataset.frame_count

    if fractions is None:
        fractions = tuple(round(0.01 * step, 4) for step in range(1, 11))

    # Nested samplers so a larger correction set extends a smaller one,
    # exactly like the heuristic's growth procedure; several independent
    # samplers are averaged so a single late-arriving extreme value does
    # not kink the curve.
    sampler_count = max(1, trials // 5)
    samplers = [
        ProgressiveSampler(population, np.random.default_rng(seed + i))
        for i in range(sampler_count)
    ]
    full_values = processor.true_values(query)
    profiler = DegradationProfiler(processor, trials=max(1, trials // sampler_count))

    series: dict[str, list[float]] = {"own_bound": []}
    for index in range(len(INTERVENTION_SETS)):
        series[f"set{index + 1}_corrected_bound"] = []

    from repro.estimators.quantile import SmokescreenQuantileEstimator
    from repro.estimators.smokescreen import SmokescreenMeanEstimator

    mean_estimator = SmokescreenMeanEstimator()
    quantile_estimator = SmokescreenQuantileEstimator()

    for fraction in fractions:
        size = max(1, round(population * fraction))
        own_sum = 0.0
        corrected_sums = [0.0] * len(INTERVENTION_SETS)
        for sampler in samplers:
            indices = sampler.prefix(size)
            values = full_values[indices]
            correction = CorrectionSet(
                frame_indices=indices,
                values=values,
                error_bound=float("nan"),
                trace=((size, float("nan")),),
            )
            if aggregate.is_mean_family:
                own = mean_estimator.estimate(values, population, query.delta)
            else:
                own = quantile_estimator.estimate(
                    values, population, query.effective_quantile, query.delta,
                    aggregate,
                )
            own_sum += capped(own.error_bound)
            for index, plan in enumerate(INTERVENTION_SETS):
                point = profiler.estimate_plan(
                    query, plan, np.random.default_rng(seed + 1), correction
                )
                corrected_sums[index] += capped(point.error_bound)
        series["own_bound"].append(own_sum / sampler_count)
        for index in range(len(INTERVENTION_SETS)):
            series[f"set{index + 1}_corrected_bound"].append(
                corrected_sums[index] / sampler_count
            )

    determined = determine_correction_set(
        processor, query, np.random.default_rng(seed)
    )
    determined_fraction = determined.fraction(population)

    return ExperimentResult(
        title=(
            f"Figure 9 panel: {workload.name} — corrected bound vs "
            f"correction-set fraction ({trials} trials)"
        ),
        knob_label="corr_fraction",
        knobs=list(fractions),
        series=series,
        notes=(
            "set1: f=0.1, 256x256, remove person; "
            "set2: f=0.05, 320x320, remove face",
            f"heuristic-determined correction fraction: "
            f"{determined_fraction:.2%} (the paper's dotted line)",
            f"degenerate (infinite) bounds clamped at {BOUND_DISPLAY_CAP}",
        ),
    )
