"""One-command reproduction report.

Runs every registered experiment and writes a single markdown artifact
with all the tables — the "did the reproduction hold end to end" document
a reviewer can regenerate with one command::

    repro report --output REPRODUCTION.md            # full scale
    repro report --output quick.md --frames 4000 --trials 10   # smoke

Experiments that fail are recorded in the report rather than aborting it,
so one broken sweep never hides the rest of the evidence.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from pathlib import Path

from repro.experiments.registry import (
    ExperimentRequest,
    experiment_names,
    run_experiment,
)


@dataclass(frozen=True)
class ReportEntry:
    """One experiment's outcome inside the report.

    Attributes:
        name: The registered experiment name.
        succeeded: Whether the runner completed.
        seconds: Wall time of the run.
        lines: The result's table rows, or the failure's traceback tail.
    """

    name: str
    succeeded: bool
    seconds: float
    lines: tuple[str, ...]


def generate_report(
    output_path: str | Path,
    request: ExperimentRequest | None = None,
    names: tuple[str, ...] | None = None,
) -> list[ReportEntry]:
    """Run experiments and write the markdown report.

    Args:
        output_path: Destination markdown file.
        request: Common experiment knobs (scale/trials/seed); defaults to
            the registry defaults (full corpora, 20 trials).
        names: Experiments to include; defaults to every registered one.

    Returns:
        The per-experiment entries (also serialised into the file).
    """
    request = request or ExperimentRequest()
    chosen = names or experiment_names()

    entries: list[ReportEntry] = []
    for name in chosen:
        start = time.perf_counter()
        try:
            result = run_experiment(name, request)
            entries.append(
                ReportEntry(
                    name=name,
                    succeeded=True,
                    seconds=time.perf_counter() - start,
                    lines=tuple(result.rows()),
                )
            )
        except Exception:  # noqa: BLE001 - a report must survive failures
            entries.append(
                ReportEntry(
                    name=name,
                    succeeded=False,
                    seconds=time.perf_counter() - start,
                    lines=tuple(traceback.format_exc().splitlines()[-6:]),
                )
            )

    _write_markdown(Path(output_path), request, entries)
    return entries


def _write_markdown(
    path: Path, request: ExperimentRequest, entries: list[ReportEntry]
) -> None:
    succeeded = sum(1 for entry in entries if entry.succeeded)
    total_seconds = sum(entry.seconds for entry in entries)
    lines: list[str] = [
        "# Smokescreen reproduction report",
        "",
        f"- experiments run: {len(entries)} ({succeeded} succeeded)",
        f"- total wall time: {total_seconds:.1f}s",
        f"- scale: frames={request.frames or 'paper-full'}, "
        f"trials={request.trials}, seed={request.seed}",
        "",
        "See `EXPERIMENTS.md` for the paper-vs-measured interpretation of "
        "each table.",
        "",
    ]
    for entry in entries:
        status = "ok" if entry.succeeded else "FAILED"
        lines.append(f"## {entry.name} [{status}, {entry.seconds:.2f}s]")
        lines.append("")
        lines.append("```")
        lines.extend(entry.lines)
        lines.append("```")
        lines.append("")
    path.write_text("\n".join(lines))
