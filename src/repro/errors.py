"""Exception hierarchy for the Smokescreen reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while still
being able to distinguish configuration mistakes from runtime estimation
failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An invalid parameter was supplied to a public constructor or function.

    Raised eagerly, at construction time, so that misconfiguration surfaces
    where it was written rather than deep inside an experiment sweep.
    """


class EstimationError(ReproError):
    """An estimator could not produce a valid estimate.

    Typical causes: an empty sample (``n == 0``), a sample larger than the
    population, or a correction set that is too small to repair a bound.
    """


class InterventionError(ReproError):
    """A destructive intervention could not be applied to a dataset.

    For example, requesting a frame resolution above the model's native
    resolution, or removing a restricted class that leaves no eligible frames.
    """


class DatasetError(ReproError):
    """A synthetic dataset was queried in an inconsistent way.

    For example, asking for model outputs on frame indices outside the
    dataset, or building a dataset preset with a non-positive frame count.
    """


class ProfileError(ReproError):
    """A degradation profile was constructed or queried incorrectly.

    For example, reading a hypercube slice along an unknown axis, or asking
    for a tradeoff from an empty profile.
    """


class TransmissionError(ReproError):
    """A camera failed to deliver its degraded sample to the processor.

    Raised by the fault-injection channel for a failed transmit attempt and
    escalated by the resilient fleet executor once a camera's retry budget
    is exhausted (or its circuit breaker refuses further attempts). The
    fleet executor catches it per camera and degrades gracefully; it only
    propagates when *no* camera delivered anything.
    """


class CameraOutageError(TransmissionError):
    """A camera is entirely unreachable for the duration of a query.

    Unlike a transient :class:`TransmissionError`, an outage persists across
    retries within one query, so the fleet executor fails the camera fast
    instead of burning its retry budget.
    """


class FaultInjectionError(ConfigurationError):
    """A fault injector was configured with invalid parameters.

    For example, a fault probability outside ``[0, 1]`` or a negative
    latency. A :class:`ConfigurationError` subclass: misconfiguration
    surfaces at construction time, where it was written.
    """
