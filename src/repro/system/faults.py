"""Deterministic, seed-driven fault injection for camera transmission.

The paper's deployment (§1) is a fleet of networked cameras shipping
degraded video to one central processor — precisely the setting where
cameras drop out, links flap, frames arrive corrupted, and stragglers
stall a query. This module injects those failures *deterministically*:
every fault a :class:`FaultyChannel` produces is a pure function of a
:class:`FaultModel` and a seed, so a chaos run can be replayed
bit-for-bit and a bound violation can be bisected to the exact fault
sequence that produced it.

Fault taxonomy (each independently tunable):

- **Camera outage** — the camera is unreachable for the whole query;
  every attempt raises :class:`~repro.errors.CameraOutageError`.
- **Transient transmission failure** — one transmit attempt fails with
  :class:`~repro.errors.TransmissionError`; a retry may succeed.
- **Per-frame drop / corruption** — individual frames of a delivered
  sample are lost in flight or fail their checksum. Corrupted frames are
  *discarded, never silently ingested* (distorted frames poison
  downstream answers); since faults are drawn independently of frame
  content, the surviving frames remain a uniform without-replacement
  sample and the Hoeffding–Serfling bound stays valid at the smaller
  ``n`` — wider, not wrong.
- **Straggler latency** — the transfer completes but late; latency is
  simulated time recorded in the delivery (and the fleet health ledger),
  never wall-clock.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.errors import (
    CameraOutageError,
    FaultInjectionError,
    TransmissionError,
)
from repro.interventions.plan import DegradedSample
from repro.system.camera import Camera
from repro.system.resilience import RetryPolicy


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultInjectionError(f"{name} must lie in [0, 1], got {value}")


@dataclass(frozen=True)
class FaultModel:
    """The fault rates a channel injects (all zero = perfect network).

    Attributes:
        outage_probability: Per-query probability the camera is entirely
            unreachable (every attempt fails until the next query).
        transient_failure_probability: Per-attempt probability one
            transmit attempt fails; independent across attempts, so
            retries can succeed.
        frame_drop_probability: Per-frame probability a transmitted frame
            is lost in flight.
        frame_corruption_probability: Per-frame probability a delivered
            frame fails its integrity check and is discarded.
        straggler_probability: Per-delivery probability the transfer
            straggles, adding :attr:`straggler_latency`.
        straggler_latency: Simulated seconds a straggling delivery adds.
        nominal_latency: Simulated seconds of a healthy delivery.
    """

    outage_probability: float = 0.0
    transient_failure_probability: float = 0.0
    frame_drop_probability: float = 0.0
    frame_corruption_probability: float = 0.0
    straggler_probability: float = 0.0
    straggler_latency: float = 5.0
    nominal_latency: float = 0.05

    def __post_init__(self) -> None:
        _check_probability("outage probability", self.outage_probability)
        _check_probability(
            "transient failure probability", self.transient_failure_probability
        )
        _check_probability("frame drop probability", self.frame_drop_probability)
        _check_probability(
            "frame corruption probability", self.frame_corruption_probability
        )
        _check_probability("straggler probability", self.straggler_probability)
        if self.straggler_latency < 0.0:
            raise FaultInjectionError(
                f"straggler latency must be non-negative, got {self.straggler_latency}"
            )
        if self.nominal_latency < 0.0:
            raise FaultInjectionError(
                f"nominal latency must be non-negative, got {self.nominal_latency}"
            )

    @property
    def is_null(self) -> bool:
        """True when no fault can ever fire (the perfect-network model)."""
        return (
            self.outage_probability == 0.0
            and self.transient_failure_probability == 0.0
            and self.frame_drop_probability == 0.0
            and self.frame_corruption_probability == 0.0
            and self.straggler_probability == 0.0
        )


@dataclass(frozen=True)
class ChannelDelivery:
    """One successful (possibly lossy) transmission through a channel.

    Attributes:
        sample: The degraded sample as received — dropped and corrupted
            frames already removed, ``universe_size`` untouched.
        requested: Frames the camera put on the wire.
        delivered: Frames that survived drop and corruption.
        dropped: Frames lost in flight.
        corrupted: Frames discarded by the integrity check.
        latency: Simulated seconds the transfer took.
        straggler: Whether the transfer straggled.
    """

    sample: DegradedSample
    requested: int
    delivered: int
    dropped: int
    corrupted: int
    latency: float
    straggler: bool

    @property
    def lossy(self) -> bool:
        """True when any frame was dropped or corrupted."""
        return self.dropped > 0 or self.corrupted > 0


def _camera_key(name: str) -> int:
    """A stable 64-bit key for a camera name (platform-independent)."""
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class FaultInjector:
    """Builds per-camera faulty channels with reproducible randomness.

    The fault stream of a channel is keyed by ``(injector seed, camera
    name, query seed)``: re-running a query with the same seeds replays
    the exact same outages, drops, and stragglers, while different query
    seeds explore independent fault realisations.
    """

    def __init__(self, model: FaultModel, seed: int = 0) -> None:
        """Create an injector.

        Args:
            model: The fault rates to inject.
            seed: Root seed of every fault stream this injector hands out.
        """
        if not isinstance(model, FaultModel):
            raise FaultInjectionError(
                f"model must be a FaultModel, got {type(model).__name__}"
            )
        self._model = model
        self._seed = int(seed)

    @property
    def model(self) -> FaultModel:
        """The injected fault rates."""
        return self._model

    @property
    def seed(self) -> int:
        """The injector's root seed."""
        return self._seed

    def fault_rng(self, camera_name: str, query_seed: int) -> np.random.Generator:
        """The deterministic fault stream for one camera and one query."""
        sequence = np.random.SeedSequence(
            entropy=(self._seed, _camera_key(camera_name), int(query_seed))
        )
        return np.random.default_rng(sequence)

    def channel(self, camera: Camera, query_seed: int) -> "FaultyChannel":
        """A fresh faulty channel for one camera's part of one query."""
        return FaultyChannel(
            camera, self._model, self.fault_rng(camera.name, query_seed)
        )


class FaultyChannel:
    """Wraps :meth:`Camera.transmit` behind an unreliable network path.

    One channel serves one camera for one query: the outage draw happens
    once at construction (an outage persists across retries), while
    transient failures, frame drops, corruption, and straggling are drawn
    per attempt from the channel's own fault stream — never from the
    sampling RNG, so faults do not perturb which frames are sampled.
    """

    def __init__(
        self,
        camera: Camera,
        model: FaultModel,
        fault_rng: np.random.Generator,
    ) -> None:
        """Create the channel (draws the query-scoped outage).

        Args:
            camera: The camera behind the channel.
            model: The fault rates.
            fault_rng: The channel's private fault stream.
        """
        self._camera = camera
        self._model = model
        self._rng = fault_rng
        self._out = bool(self._rng.random() < model.outage_probability)

    @property
    def camera(self) -> Camera:
        """The camera behind this channel."""
        return self._camera

    @property
    def name(self) -> str:
        """The camera's name."""
        return self._camera.name

    @property
    def is_out(self) -> bool:
        """True when the camera suffered a query-scoped outage."""
        return self._out

    def transmit(self, rng: np.random.Generator) -> ChannelDelivery:
        """One transmit attempt through the faulty path.

        Args:
            rng: Sampling randomness handed to the camera (kept separate
                from the fault stream).

        Returns:
            The delivery, with dropped/corrupted frames removed.

        Raises:
            CameraOutageError: The camera is out for this whole query.
            TransmissionError: This attempt failed transiently, or every
                frame of the attempt was lost or corrupted.
        """
        if self._out:
            raise CameraOutageError(f"camera {self.name!r} is unreachable")
        if self._rng.random() < self._model.transient_failure_probability:
            raise TransmissionError(
                f"transient transmission failure from camera {self.name!r}"
            )
        sample = self._camera.transmit(rng)
        requested = sample.size

        draws = self._rng.random((2, requested))
        dropped_mask = draws[0] < self._model.frame_drop_probability
        corrupted_mask = (
            draws[1] < self._model.frame_corruption_probability
        ) & ~dropped_mask
        survivors = ~(dropped_mask | corrupted_mask)
        dropped = int(dropped_mask.sum())
        corrupted = int(corrupted_mask.sum())

        straggler = bool(self._rng.random() < self._model.straggler_probability)
        latency = self._model.nominal_latency + (
            self._model.straggler_latency if straggler else 0.0
        )

        if not survivors.any():
            raise TransmissionError(
                f"camera {self.name!r}: all {requested} frames lost in flight "
                f"({dropped} dropped, {corrupted} corrupted)"
            )

        received = DegradedSample(
            frame_indices=sample.frame_indices[survivors],
            universe_size=sample.universe_size,
            population_size=sample.population_size,
            resolution=sample.resolution,
            quality=sample.quality,
        )
        return ChannelDelivery(
            sample=received,
            requested=requested,
            delivered=int(survivors.sum()),
            dropped=dropped,
            corrupted=corrupted,
            latency=latency,
            straggler=straggler,
        )


@dataclass(frozen=True)
class RetryOutcome:
    """A successful transmit-with-retry, with its accounting.

    Attributes:
        delivery: The delivery of the succeeding attempt.
        attempts: Attempts made, including the success.
        retries: Backoff-then-retry cycles taken (``attempts - 1``).
        backoff: Total simulated seconds spent backing off.
    """

    delivery: ChannelDelivery
    attempts: int
    retries: int
    backoff: float


def transmit_with_retry(
    channel,
    sample_rng: np.random.Generator,
    policy: RetryPolicy,
    retry_rng: np.random.Generator,
) -> RetryOutcome:
    """Drive one channel through a retry-with-backoff policy.

    Transient :class:`~repro.errors.TransmissionError` attempts are
    retried with exponential backoff and seeded jitter until the policy's
    attempt budget runs out; a :class:`~repro.errors.CameraOutageError`
    propagates immediately (the outage persists for the whole query, so
    retrying cannot help).

    Args:
        channel: A :class:`FaultyChannel`-shaped object (``name`` and
            ``transmit``).
        sample_rng: Sampling randomness handed to each attempt.
        policy: The retry/backoff policy.
        retry_rng: Seeded randomness for the backoff jitter.

    Returns:
        The successful delivery with its retry accounting.

    Raises:
        CameraOutageError: The camera is out for the whole query.
        TransmissionError: Every attempt failed; the escalated error
            carries ``attempts``, ``retries``, and ``backoff`` attributes
            so callers can account for the simulated time spent.
    """
    backoff = 0.0
    last: TransmissionError | None = None
    for attempt in range(policy.max_attempts):
        try:
            delivery = channel.transmit(sample_rng)
        except CameraOutageError:
            raise
        except TransmissionError as error:
            last = error
            if attempt + 1 < policy.max_attempts:
                backoff += policy.backoff_delay(attempt, retry_rng)
            continue
        return RetryOutcome(
            delivery=delivery,
            attempts=attempt + 1,
            retries=attempt,
            backoff=backoff,
        )
    escalated = TransmissionError(
        f"camera {channel.name!r}: {policy.max_attempts} transmit attempts "
        f"exhausted (last: {last})"
    )
    escalated.attempts = policy.max_attempts
    escalated.retries = policy.max_attempts - 1
    escalated.backoff = backoff
    raise escalated
