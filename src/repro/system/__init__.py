"""System context: cameras, transmission, privacy accounting, costs.

The paper's deployment model (§1) has configurable networked cameras that
collect, degrade, and transmit frames to a central query processor, with an
administrator balancing policy goals. This subpackage models that context
so examples and benchmarks can express those goals quantitatively:

- :mod:`repro.system.costs` — model-invocation accounting and the analytic
  profile-generation time model of §5.3.1.
- :mod:`repro.system.executor` — the parallel execution substrate with
  deterministic per-(setting, trial) seed streams.
- :mod:`repro.system.network` — bytes/energy of transmitting degraded
  frames (bandwidth and power goals).
- :mod:`repro.system.privacy` — privacy-exposure metrics of a degradation
  setting (person/face frames revealed).
- :mod:`repro.system.camera` — a camera with degradation knobs.
- :mod:`repro.system.faults` — deterministic, seed-driven fault injection
  (outages, transient failures, frame drop/corruption, stragglers) behind
  a faulty transmission channel.
- :mod:`repro.system.resilience` — retry-with-backoff, per-camera circuit
  breakers, and the fleet health ledger.
- :mod:`repro.system.fleet` — fleets, including the resilient
  :class:`FleetQueryProcessor` that degrades gracefully under faults.
- :mod:`repro.system.administrator` — the administrator persona tying
  preferences to profile-driven choices.
- :mod:`repro.system.telemetry` — process-local metrics, spans, and
  structured logging (off by default; the CLI's ``--telemetry`` enables).
"""

from repro.system import telemetry
from repro.system.camera import Camera
from repro.system.costs import CostModel, InvocationLedger
from repro.system.faults import (
    ChannelDelivery,
    FaultInjector,
    FaultModel,
    FaultyChannel,
    transmit_with_retry,
)
from repro.system.fleet import (
    CameraFleet,
    CameraReport,
    CameraStatus,
    FleetEstimate,
    FleetQueryProcessor,
    FleetReport,
    FleetSentinel,
    FleetSentinelAudit,
)
from repro.system.executor import (
    ExecutorConfig,
    ParallelExecutor,
    child_rng,
    child_seed,
    normalize_root,
    trial_chunks,
)
from repro.system.network import TransmissionModel
from repro.system.privacy import PrivacyReport, privacy_report
from repro.system.resilience import (
    BreakerState,
    CameraHealth,
    CircuitBreaker,
    HealthLedger,
    RetryPolicy,
)
from repro.system.telemetry import (
    MetricsRegistry,
    MetricsSnapshot,
    NullRegistry,
    merge_snapshots,
    setup_logging,
)

__all__ = [
    "Administrator",
    "BreakerState",
    "Camera",
    "CameraFleet",
    "CameraHealth",
    "CameraReport",
    "CameraStatus",
    "ChannelDelivery",
    "CircuitBreaker",
    "FaultInjector",
    "FaultModel",
    "FaultyChannel",
    "FleetEstimate",
    "FleetQueryProcessor",
    "FleetReport",
    "FleetSentinel",
    "FleetSentinelAudit",
    "CostModel",
    "ExecutorConfig",
    "HealthLedger",
    "InvocationLedger",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullRegistry",
    "ParallelExecutor",
    "PrivacyReport",
    "RetryPolicy",
    "TransmissionModel",
    "child_rng",
    "child_seed",
    "merge_snapshots",
    "normalize_root",
    "privacy_report",
    "setup_logging",
    "telemetry",
    "transmit_with_retry",
    "trial_chunks",
]


def __getattr__(name: str):
    # Administrator depends on repro.core, which itself uses this package's
    # cost ledger; importing it lazily breaks the cycle (PEP 562).
    if name == "Administrator":
        from repro.system.administrator import Administrator

        return Administrator
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
