"""Parallel execution substrate with deterministic seed streams.

Profile generation and the paper's 100-trial experiment loops are
embarrassingly parallel: every ``(setting, trial)`` work unit is
independent. This module fans those units out over a
:class:`~concurrent.futures.ProcessPoolExecutor` while keeping results
**bit-identical regardless of worker count** — including ``workers=1`` and
the serial fallback — which preserves the determinism contract the fleet
and fault-injection layers already assert.

The trick is seeding: instead of threading one
:class:`numpy.random.Generator` through a sequential loop (whose state
depends on execution order), every work unit derives its own child stream
from the root seed via ``np.random.SeedSequence(root, spawn_key=(setting,
trial))``. Spawn keys are position-independent, so a unit draws the same
randomness whether it runs first on one worker or last on sixteen.

Cost accounting stays exact across the process boundary: worker functions
run against a fresh :class:`~repro.system.costs.InvocationLedger` and
return its per-resolution counts alongside the result; callers merge them
in unit order. Detector outputs are shared across workers and runs through
the persistent cache of :mod:`repro.detection.diskcache`, which the pool
initializer re-activates inside each worker process.
"""

from __future__ import annotations

import logging
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import partial
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from repro.core.correction import CorrectionSet
from repro.detection import diskcache
from repro.detection.zoo import DetectorSuite
from repro.errors import ConfigurationError
from repro.interventions.plan import InterventionPlan
from repro.query.query import AggregateQuery
from repro.system import telemetry
from repro.system.costs import InvocationLedger
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution

T = TypeVar("T")
U = TypeVar("U")

_LOG = telemetry.get_logger("system.executor")

#: Entropy tuples accepted as root seeds.
RootSeed = int | Sequence[int]


def normalize_root(root: RootSeed) -> tuple[int, ...]:
    """Root entropy as a canonical tuple of Python ints.

    Args:
        root: An int or a sequence of ints.

    Returns:
        The entropy tuple (picklable, hashable, numpy-free).
    """
    if isinstance(root, (int, np.integer)):
        return (int(root),)
    return tuple(int(e) for e in root)


def child_seed(root: RootSeed, *key: int) -> np.random.SeedSequence:
    """The deterministic child seed of one work unit.

    Args:
        root: Root entropy (an int, or a tuple of ints for derived roots).
        *key: The unit's coordinates, conventionally ``(setting_index,
            trial_index)``; any depth works.

    Returns:
        A seed sequence independent of every differently-keyed unit and of
        the order units are spawned in.
    """
    return np.random.SeedSequence(
        normalize_root(root), spawn_key=tuple(int(k) for k in key)
    )


def child_rng(root: RootSeed, *key: int) -> np.random.Generator:
    """A generator over :func:`child_seed`'s stream."""
    return np.random.default_rng(child_seed(root, *key))


def trial_chunks(trials: int, chunk_count: int) -> list[range]:
    """Split ``range(trials)`` into at most ``chunk_count`` contiguous runs.

    Chunking reduces inter-process traffic without affecting results:
    every trial keeps its own seed stream, so the chunk boundaries are
    invisible to the output.

    Args:
        trials: Total number of trials.
        chunk_count: Desired number of chunks (clamped to ``trials``).

    Returns:
        Non-empty, contiguous, disjoint ranges covering ``range(trials)``.
    """
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    chunk_count = max(1, min(chunk_count, trials))
    bounds = np.linspace(0, trials, chunk_count + 1).astype(int)
    return [
        range(int(lo), int(hi))
        for lo, hi in zip(bounds[:-1], bounds[1:])
        if hi > lo
    ]


#: Below this many work units, ``workers="auto"`` runs serially: with the
#: §5.3.1 sweep at ~10 units, pool startup plus per-unit pickling costs more
#: than the work itself (compare the ``runs.cold_parallel`` and
#: ``runs.cold_serial`` ``wall_seconds`` in BENCH_profile.json, measured on
#: one CPU), so small sweeps must not pay for a pool.
AUTO_MIN_UNITS = 16


def resolve_worker_count(workers: int | str, unit_count: int) -> int:
    """The effective process count for a worker setting and workload size.

    ``"auto"`` is deterministic and conservative: serial when the host has
    a single CPU (pool overhead cannot be amortised) or when there are
    fewer than :data:`AUTO_MIN_UNITS` work units (startup dominates), else
    one worker per CPU, capped at the unit count.

    Args:
        workers: An explicit positive count, or ``"auto"``.
        unit_count: Number of independent work units to execute.

    Returns:
        The resolved worker count (>= 1).
    """
    if workers == "auto":
        cpus = os.cpu_count() or 1
        if cpus <= 1 or unit_count < AUTO_MIN_UNITS:
            return 1
        return max(1, min(cpus, unit_count))
    return int(workers)


@dataclass(frozen=True)
class ExecutorConfig:
    """How work units are executed.

    Attributes:
        workers: Process count; 1 means run serially in-process, and the
            string ``"auto"`` defers to :func:`resolve_worker_count` per
            workload (serial on single-CPU hosts and small sweeps).
        cache_dir: Persistent detector-cache directory activated inside
            workers; None inherits the parent's active cache (if any).
        cache_limit_bytes: LRU byte budget for ``cache_dir``.
    """

    workers: int | str = 1
    cache_dir: str | None = None
    cache_limit_bytes: int | None = None

    def __post_init__(self) -> None:
        if isinstance(self.workers, str):
            if self.workers != "auto":
                raise ConfigurationError(
                    f"worker count must be a positive int or 'auto', "
                    f"got {self.workers!r}"
                )
            return
        if self.workers < 1:
            raise ConfigurationError(
                f"worker count must be at least 1, got {self.workers}"
            )


def _worker_initializer(
    cache_dir: str | None, cache_limit: int | None, telemetry_on: bool
) -> None:
    """Prepare a worker process: persistent cache and telemetry state."""
    if cache_dir is not None:
        diskcache.activate(cache_dir, cache_limit)
    if telemetry_on:
        telemetry.enable()


@dataclass(frozen=True)
class _UnitOutcome:
    """What one work unit produced inside a worker, shipped back whole.

    Wrapping the call keeps two channels out of band of the result type:

    - ``error``: an exception ``fn`` raised *in the worker*. Returning it
      (instead of letting it propagate through ``pool.map``) lets the
      parent distinguish a genuine work-unit failure — which must re-raise
      as is — from pool infrastructure failures, which alone may fall back
      to the serial path.
    - ``snapshot``: the unit's telemetry, collected into a private
      registry and merged by the parent like worker ledger counts.
    """

    result: object = None
    error: BaseException | None = None
    snapshot: telemetry.MetricsSnapshot | None = None


def _call_unit(fn: Callable[[T], U], item: T) -> _UnitOutcome:
    """Run one unit in a worker, capturing its error and telemetry."""
    local = telemetry.MetricsRegistry() if telemetry.enabled() else None
    previous = telemetry.install(local) if local is not None else None
    try:
        try:
            result = fn(item)
        except Exception as error:
            return _UnitOutcome(
                error=error,
                snapshot=local.snapshot() if local is not None else None,
            )
        return _UnitOutcome(
            result=result,
            snapshot=local.snapshot() if local is not None else None,
        )
    finally:
        if previous is not None:
            telemetry.install(previous)


class ParallelExecutor:
    """Ordered map over independent work units, process-parallel when asked.

    The serial path and the pool path produce identical results for
    seed-stream work units; infrastructure failures (pool creation denied,
    unpicklable payloads, broken pool) degrade gracefully to the serial
    path rather than failing the run.
    """

    def __init__(self, config: ExecutorConfig | None = None) -> None:
        """Create an executor.

        Args:
            config: Execution configuration; defaults to serial.
        """
        self._config = config or ExecutorConfig()

    @property
    def config(self) -> ExecutorConfig:
        """The execution configuration."""
        return self._config

    def _cache_initargs(self) -> tuple[str | None, int | None]:
        if self._config.cache_dir is not None:
            return (self._config.cache_dir, self._config.cache_limit_bytes)
        active = diskcache.active_cache()
        if active is not None:
            return (str(active.root), active.byte_limit)
        return (None, None)

    def worker_count(self, unit_count: int) -> int:
        """The effective process count for ``unit_count`` work units.

        Resolves ``"auto"`` against the host and workload (see
        :func:`resolve_worker_count`); explicit counts pass through capped
        at the unit count.

        Args:
            unit_count: Number of independent work units.

        Returns:
            The resolved worker count (>= 1).
        """
        resolved = resolve_worker_count(self._config.workers, unit_count)
        return max(1, min(resolved, unit_count))

    def map(self, fn: Callable[[T], U], payloads: Iterable[T]) -> list[U]:
        """Apply ``fn`` to every payload, preserving payload order.

        Exceptions ``fn`` raises propagate unchanged from the pool path —
        without a serial re-run — exactly as they would serially. Only
        *infrastructure* failures (pool creation denied, unpicklable
        payloads, a broken pool) degrade to the serial path; seed streams
        make that rerun bit-identical.

        Args:
            fn: A picklable module-level function.
            payloads: Picklable work units.

        Returns:
            Results in payload order.
        """
        items = list(payloads)
        workers = self.worker_count(len(items))
        if workers <= 1:
            return [fn(item) for item in items]
        # Ship several units per pool task: one pickle round-trip then
        # amortises over the chunk instead of being paid per unit.
        chunksize = max(1, len(items) // (workers * 4))
        telemetry.gauge("executor.workers", workers)
        telemetry.gauge("executor.chunk_size", chunksize)
        telemetry.count("executor.units", len(items))
        with telemetry.span("executor.map", units=len(items), workers=workers):
            try:
                with ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_worker_initializer,
                    initargs=(*self._cache_initargs(), telemetry.enabled()),
                ) as pool:
                    outcomes = list(
                        pool.map(partial(_call_unit, fn), items, chunksize=chunksize)
                    )
            except (OSError, BrokenProcessPool, pickle.PicklingError,
                    AttributeError, TypeError) as error:
                # _call_unit confines fn's own exceptions to outcome
                # records, so anything escaping pool.map is infrastructure:
                # a restricted environment (no fork/spawn), a died worker,
                # or payload/callable pickling (unpicklable local functions
                # surface as AttributeError/TypeError from pickle itself).
                self._log_fallback(error)
                return [fn(item) for item in items]
        return self._unpack_outcomes(outcomes)

    @staticmethod
    def _log_fallback(error: BaseException) -> None:
        telemetry.count("executor.fallback")
        telemetry.log_event(
            _LOG,
            logging.WARNING,
            "executor.fallback",
            reason=type(error).__name__,
            error=str(error),
        )

    @staticmethod
    def _unpack_outcomes(outcomes: list[_UnitOutcome]) -> list:
        """Merge worker telemetry, then surface results or the first error."""
        active = telemetry.registry()
        failure: BaseException | None = None
        results = []
        for outcome in outcomes:
            active.merge_snapshot(outcome.snapshot)
            if failure is None and outcome.error is not None:
                failure = outcome.error
            results.append(outcome.result)
        if failure is not None:
            raise failure
        return results


# ---------------------------------------------------------------------------
# Profiler work units.
#
# These are module-level (picklable) adapters that rebuild a profiler in the
# worker, run one unit against a fresh ledger, and return the result plus
# the ledger's counts so the parent can merge cost accounting exactly.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepUnit:
    """One nested fraction sweep: a ``(resolution, removal)`` setting.

    Attributes:
        query: The query to profile.
        fractions: Ascending fraction candidates.
        resolution: Fixed resolution knob (None = native).
        removal: Fixed restricted classes.
        correction: Optional correction set.
        trials: Trials averaged inside the unit.
        root: Root entropy of the seed stream.
        unit_index: The setting's index (first spawn-key coordinate).
        trial_indices: Trial coordinates (second spawn-key coordinate);
            defaults to ``range(trials)``.
        early_stop_tolerance: Early-stop threshold; None disables.
        suite: Restricted-class detectors for removal plans.
        vectorized: Execution style of the rebuilt in-worker profiler.
    """

    query: AggregateQuery
    fractions: tuple[float, ...]
    resolution: Resolution | None
    removal: tuple[ObjectClass, ...]
    correction: CorrectionSet | None
    trials: int
    root: tuple[int, ...]
    unit_index: int
    trial_indices: tuple[int, ...] | None = None
    early_stop_tolerance: float | None = None
    suite: DetectorSuite | None = None
    vectorized: bool = True


def run_sweep_unit(unit: SweepUnit) -> tuple[list, dict[int, int]]:
    """Execute one sweep unit (in-process or inside a worker).

    Args:
        unit: The sweep unit.

    Returns:
        The swept ``(fraction, PointEstimate)`` pairs and the unit's
        per-resolution invocation counts.
    """
    from repro.core.profiler import DegradationProfiler
    from repro.query.processor import QueryProcessor

    ledger = InvocationLedger()
    profiler = DegradationProfiler(
        QueryProcessor(unit.suite),
        trials=unit.trials,
        ledger=ledger,
        vectorized=unit.vectorized,
    )
    trial_indices = (
        unit.trial_indices
        if unit.trial_indices is not None
        else tuple(range(unit.trials))
    )
    swept = profiler.sweep_fractions_seeded(
        unit.query,
        unit.fractions,
        unit.resolution,
        unit.removal,
        unit.correction,
        unit.root,
        unit.unit_index,
        trial_indices,
        unit.early_stop_tolerance,
    )
    return swept, ledger.by_resolution()


@dataclass(frozen=True)
class PlanUnit:
    """One priced degradation setting (trials averaged inside the unit).

    Attributes:
        query: The query to profile.
        plan: The degradation setting.
        correction: Optional correction set.
        trials: Trials averaged inside the unit.
        root: Root entropy of the seed stream.
        unit_index: The setting's index (first spawn-key coordinate).
        suite: Restricted-class detectors for removal plans.
        vectorized: Execution style of the rebuilt in-worker profiler.
    """

    query: AggregateQuery
    plan: InterventionPlan
    correction: CorrectionSet | None
    trials: int
    root: tuple[int, ...]
    unit_index: int
    suite: DetectorSuite | None = None
    vectorized: bool = True


def run_plan_unit(unit: PlanUnit) -> tuple[object, dict[int, int]]:
    """Execute one plan-pricing unit.

    Args:
        unit: The plan unit.

    Returns:
        The setting's :class:`PointEstimate` and the unit's per-resolution
        invocation counts.
    """
    from repro.core.profiler import DegradationProfiler
    from repro.query.processor import QueryProcessor

    ledger = InvocationLedger()
    profiler = DegradationProfiler(
        QueryProcessor(unit.suite),
        trials=unit.trials,
        ledger=ledger,
        vectorized=unit.vectorized,
    )
    point = profiler.estimate_plan_seeded(
        unit.query, unit.plan, unit.root, unit.unit_index, unit.correction
    )
    return point, ledger.by_resolution()


def merge_ledger_counts(
    ledger: InvocationLedger | None, counts: dict[int, int]
) -> None:
    """Fold a worker ledger's per-resolution counts into the parent ledger.

    Args:
        ledger: The parent ledger (None = accounting disabled).
        counts: Per-resolution counts returned by a work unit.
    """
    if ledger is None:
        return
    for side, new_frames in sorted(counts.items()):
        ledger.record(side, new_frames)
