"""Parallel execution substrate with deterministic seed streams.

Profile generation and the paper's 100-trial experiment loops are
embarrassingly parallel: every ``(setting, trial)`` work unit is
independent. This module fans those units out over a
:class:`~concurrent.futures.ProcessPoolExecutor` while keeping results
**bit-identical regardless of worker count** — including ``workers=1`` and
the serial fallback — which preserves the determinism contract the fleet
and fault-injection layers already assert.

The trick is seeding: instead of threading one
:class:`numpy.random.Generator` through a sequential loop (whose state
depends on execution order), every work unit derives its own child stream
from the root seed via ``np.random.SeedSequence(root, spawn_key=(setting,
trial))``. Spawn keys are position-independent, so a unit draws the same
randomness whether it runs first on one worker or last on sixteen.

Cost accounting stays exact across the process boundary: worker functions
run against a fresh :class:`~repro.system.costs.InvocationLedger` and
return its per-resolution counts alongside the result; callers merge them
in unit order. Detector outputs are shared across workers and runs through
the persistent cache of :mod:`repro.detection.diskcache`, which the pool
initializer re-activates inside each worker process.

Three mechanisms kill the parallelism tax the first-generation executor
paid per call:

- a **persistent pool** (:class:`WorkerPool`) survives across ``map``
  calls, sweeps and CLI drivers, reused while its ``(workers, cache_dir,
  cache_limit, telemetry_on)`` key matches and rebuilt transparently on
  config change or a broken pool (shut down via ``atexit`` or
  :func:`shutdown_pool`);
- the **shared-memory data plane** (:mod:`repro.system.shm`) publishes
  each corpus once and ships tiny handles inside :class:`SweepUnit` /
  :class:`PlanUnit` pickles instead of whole ground-truth arrays;
- **cost-modeled dispatch**: every pool lifetime calibrates a
  :class:`~repro.system.costs.DispatchCostModel` (measured spawn and
  per-task overhead), each ``map`` probes its first unit in-process to
  measure per-unit kernel time, and ``workers="auto"`` compares the two
  before committing to the pool — so auto never regresses a single-core
  host and no fixed unit-count threshold is involved.
"""

from __future__ import annotations

import atexit
import contextlib
import logging
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from repro.core.correction import CorrectionSet
from repro.detection import diskcache
from repro.detection.zoo import DetectorSuite
from repro.errors import ConfigurationError
from repro.interventions.plan import InterventionPlan
from repro.query.query import AggregateQuery
from repro.system import shm, telemetry
from repro.system.costs import DispatchCostModel, InvocationLedger
from repro.system.observe import ledger as run_ledger
from repro.system.observe import tracing
from repro.video.dataset import VideoDataset
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution

T = TypeVar("T")
U = TypeVar("U")

_LOG = telemetry.get_logger("system.executor")

#: Entropy tuples accepted as root seeds.
RootSeed = int | Sequence[int]


def normalize_root(root: RootSeed) -> tuple[int, ...]:
    """Root entropy as a canonical tuple of Python ints.

    Args:
        root: An int or a sequence of ints.

    Returns:
        The entropy tuple (picklable, hashable, numpy-free).
    """
    if isinstance(root, (int, np.integer)):
        return (int(root),)
    return tuple(int(e) for e in root)


def child_seed(root: RootSeed, *key: int) -> np.random.SeedSequence:
    """The deterministic child seed of one work unit.

    Args:
        root: Root entropy (an int, or a tuple of ints for derived roots).
        *key: The unit's coordinates, conventionally ``(setting_index,
            trial_index)``; any depth works.

    Returns:
        A seed sequence independent of every differently-keyed unit and of
        the order units are spawned in.
    """
    return np.random.SeedSequence(
        normalize_root(root), spawn_key=tuple(int(k) for k in key)
    )


def child_rng(root: RootSeed, *key: int) -> np.random.Generator:
    """A generator over :func:`child_seed`'s stream."""
    return np.random.default_rng(child_seed(root, *key))


def trial_chunks(trials: int, chunk_count: int) -> list[range]:
    """Split ``range(trials)`` into at most ``chunk_count`` contiguous runs.

    Chunking reduces inter-process traffic without affecting results:
    every trial keeps its own seed stream, so the chunk boundaries are
    invisible to the output.

    Args:
        trials: Total number of trials.
        chunk_count: Desired number of chunks (clamped to ``trials``).

    Returns:
        Non-empty, contiguous, disjoint ranges covering ``range(trials)``.
    """
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    chunk_count = max(1, min(chunk_count, trials))
    bounds = np.linspace(0, trials, chunk_count + 1).astype(int)
    return [
        range(int(lo), int(hi))
        for lo, hi in zip(bounds[:-1], bounds[1:])
        if hi > lo
    ]


def resolve_worker_count(workers: int | str, unit_count: int) -> int:
    """The structurally available process count for a worker setting.

    ``"auto"`` resolves to 1 on a single-CPU host (a pool can never pay
    for itself there) and otherwise to one worker per CPU capped at the
    unit count. Whether a multi-worker resolution actually *uses* the
    pool is decided per ``map`` call by the calibrated
    :class:`~repro.system.costs.DispatchCostModel` — the old fixed
    ``AUTO_MIN_UNITS`` threshold is gone.

    Args:
        workers: An explicit positive count, or ``"auto"``.
        unit_count: Number of independent work units to execute.

    Returns:
        The resolved worker count (>= 1).

    Raises:
        ConfigurationError: ``workers`` is a non-positive int or an
            unrecognised string.
    """
    if isinstance(workers, str):
        if workers != "auto":
            raise ConfigurationError(
                f"worker count must be a positive int or 'auto', got {workers!r}"
            )
        cpus = os.cpu_count() or 1
        if cpus <= 1:
            return 1
        return max(1, min(cpus, unit_count))
    count = int(workers)
    if count < 1:
        raise ConfigurationError(
            f"worker count must be at least 1, got {workers}"
        )
    return count


@dataclass(frozen=True)
class ExecutorConfig:
    """How work units are executed.

    Attributes:
        workers: Process count; 1 means run serially in-process, and the
            string ``"auto"`` defers to :func:`resolve_worker_count` per
            workload (serial on single-CPU hosts and small sweeps).
        cache_dir: Persistent detector-cache directory activated inside
            workers; None inherits the parent's active cache (if any).
        cache_limit_bytes: LRU byte budget for ``cache_dir``.
    """

    workers: int | str = 1
    cache_dir: str | None = None
    cache_limit_bytes: int | None = None

    def __post_init__(self) -> None:
        if isinstance(self.workers, str):
            if self.workers != "auto":
                raise ConfigurationError(
                    f"worker count must be a positive int or 'auto', "
                    f"got {self.workers!r}"
                )
            return
        if self.workers < 1:
            raise ConfigurationError(
                f"worker count must be at least 1, got {self.workers}"
            )


def _worker_initializer(
    cache_dir: str | None, cache_limit: int | None, telemetry_on: bool
) -> None:
    """Prepare a worker process: persistent cache and telemetry state."""
    if cache_dir is not None:
        diskcache.activate(cache_dir, cache_limit)
    if telemetry_on:
        telemetry.enable()


# ---------------------------------------------------------------------------
# The module-managed persistent pool.
#
# One ProcessPoolExecutor survives across map calls, sweeps and CLI
# drivers; it is reused whenever the initargs key matches, transparently
# rebuilt on config change or a broken pool, and shut down via atexit or
# an explicit shutdown_pool()/ParallelExecutor.close(). Spawn and
# per-task dispatch costs are measured once per pool lifetime and drive
# the DispatchCostModel decisions in ParallelExecutor.map.
# ---------------------------------------------------------------------------

#: No-op tasks per calibration round (two rounds: spawn, then dispatch).
_CALIBRATION_TASKS = 16


def _calibration_task(index: int) -> int:
    """No-op unit used to time the pool's per-task dispatch overhead."""
    return index


@dataclass(frozen=True)
class _PoolKey:
    """The initargs identity a pool can be reused under."""

    workers: int
    cache_dir: str | None
    cache_limit: int | None
    telemetry_on: bool


@dataclass
class WorkerPool:
    """A live pool plus its measured dispatch economics.

    Attributes:
        pool: The underlying executor.
        key: Reuse identity (worker count + worker initargs).
        costs: Calibrated dispatch cost model for this pool's lifetime.
        generation: 1-based spawn ordinal within this process.
        map_calls: Completed ``map`` dispatches through this pool.
    """

    pool: ProcessPoolExecutor = field(repr=False)
    key: _PoolKey
    costs: DispatchCostModel
    generation: int
    map_calls: int = 0


_pool: WorkerPool | None = None
_pool_generations = 0
_last_costs: DispatchCostModel | None = None
_atexit_installed = False


def _ensure_pool(key: _PoolKey) -> WorkerPool:
    """The persistent pool for ``key`` — reused, else (re)spawned.

    Spawning forces all workers up with one chunked no-op round, then
    times a second round on the warm pool to split total cost into
    ``spawn_seconds`` and ``dispatch_seconds_per_task`` for the
    calibrated :class:`DispatchCostModel` (recorded in telemetry).
    """
    global _pool, _pool_generations, _last_costs, _atexit_installed
    if _pool is not None and _pool.key == key:
        return _pool
    shutdown_pool()
    shm.ensure_tracker_shared()
    started = time.perf_counter()
    pool = ProcessPoolExecutor(
        max_workers=key.workers,
        initializer=_worker_initializer,
        initargs=(key.cache_dir, key.cache_limit, key.telemetry_on),
    )
    list(pool.map(_calibration_task, range(_CALIBRATION_TASKS), chunksize=1))
    warm_started = time.perf_counter()
    list(pool.map(_calibration_task, range(_CALIBRATION_TASKS), chunksize=1))
    dispatch = max(
        (time.perf_counter() - warm_started) / _CALIBRATION_TASKS, 1e-7
    )
    spawn = max(
        warm_started - started - _CALIBRATION_TASKS * dispatch, 0.0
    )
    costs = DispatchCostModel(
        spawn_seconds=spawn, dispatch_seconds_per_task=dispatch
    )
    _pool_generations += 1
    _pool = WorkerPool(
        pool=pool, key=key, costs=costs, generation=_pool_generations
    )
    _last_costs = costs
    telemetry.count("executor.pool.spawns")
    telemetry.gauge("executor.pool.spawn_seconds", spawn)
    telemetry.gauge("executor.pool.dispatch_seconds_per_task", dispatch)
    telemetry.log_event(
        _LOG,
        logging.INFO,
        "executor.pool.spawn",
        workers=key.workers,
        generation=_pool_generations,
        spawn_seconds=round(spawn, 6),
        dispatch_seconds_per_task=round(dispatch, 6),
    )
    if not _atexit_installed:
        atexit.register(shutdown_pool)
        _atexit_installed = True
    return _pool


def shutdown_pool() -> None:
    """Shut down the shared pool (if any) and release shared memory.

    Safe to call repeatedly; the next pool-path ``map`` respawns lazily.
    The last pool's calibration survives as the cost prior for cold
    serial-vs-parallel decisions.
    """
    global _pool
    record = _pool
    _pool = None
    if record is not None:
        try:
            record.pool.shutdown(wait=True, cancel_futures=True)
        except Exception:  # pragma: no cover - teardown is best effort
            pass
    shm.release_all()


def active_pool() -> WorkerPool | None:
    """The live persistent pool, or None (diagnostics/tests)."""
    return _pool


def pool_generation() -> int:
    """How many pools this process has spawned (0 = never)."""
    return _pool_generations


def pool_diagnostics() -> dict | None:
    """Machine-readable state of the live pool for benchmarks, or None."""
    if _pool is None:
        return None
    return {
        "workers": _pool.key.workers,
        "generation": _pool.generation,
        "map_calls": _pool.map_calls,
        "spawn_seconds": round(_pool.costs.spawn_seconds, 6),
        "dispatch_seconds_per_task": round(
            _pool.costs.dispatch_seconds_per_task, 9
        ),
        "published_bytes": shm.published_bytes(),
    }


@dataclass(frozen=True)
class _UnitOutcome:
    """What one work unit produced inside a worker, shipped back whole.

    Wrapping the call keeps two channels out of band of the result type:

    - ``error``: an exception ``fn`` raised *in the worker*. Returning it
      (instead of letting it propagate through ``pool.map``) lets the
      parent distinguish a genuine work-unit failure — which must re-raise
      as is — from pool infrastructure failures, which alone may fall back
      to the serial path.
    - ``snapshot``: the unit's telemetry, collected into a private
      registry and merged by the parent like worker ledger counts.
    """

    result: object = None
    error: BaseException | None = None
    snapshot: telemetry.MetricsSnapshot | None = None


def _call_unit(
    fn: Callable[[T], U],
    item: T,
    trace: tracing.TraceContext | None = None,
) -> _UnitOutcome:
    """Run one unit in a worker, capturing its error and telemetry.

    When a :class:`~repro.system.observe.tracing.TraceContext` rides
    along (the parent's ``executor.map`` span), the unit runs inside an
    ``executor.unit`` span tagged with the trace identity and this
    worker's pid — its absolute start is anchored to this process's
    ``perf_counter`` epoch, so the folded snapshot stitches into the
    parent's cross-process timeline.
    """
    local = telemetry.MetricsRegistry() if telemetry.enabled() else None
    previous = telemetry.install(local) if local is not None else None
    try:
        if local is not None and trace is not None:
            identity: dict[str, object] = {
                "trace_id": trace.trace_id,
                "span_id": tracing.new_span_id(),
                "parent_span_id": trace.span_id,
                "pid": os.getpid(),
            }
            if trace.tenant is not None:
                identity["tenant"] = trace.tenant
            unit_span = telemetry.span("executor.unit", **identity)
        else:
            unit_span = contextlib.nullcontext()
        try:
            with unit_span:
                result = fn(item)
        except Exception as error:
            return _UnitOutcome(
                error=error,
                snapshot=local.snapshot() if local is not None else None,
            )
        return _UnitOutcome(
            result=result,
            snapshot=local.snapshot() if local is not None else None,
        )
    finally:
        if previous is not None:
            telemetry.install(previous)


class ParallelExecutor:
    """Ordered map over independent work units, process-parallel when asked.

    The serial path and the pool path produce identical results for
    seed-stream work units; infrastructure failures (pool creation denied,
    unpicklable payloads, broken pool) degrade gracefully to the serial
    path rather than failing the run.
    """

    def __init__(self, config: ExecutorConfig | None = None) -> None:
        """Create an executor.

        Args:
            config: Execution configuration; defaults to serial.
        """
        self._config = config or ExecutorConfig()

    @property
    def config(self) -> ExecutorConfig:
        """The execution configuration."""
        return self._config

    def _cache_initargs(self) -> tuple[str | None, int | None]:
        if self._config.cache_dir is not None:
            return (self._config.cache_dir, self._config.cache_limit_bytes)
        active = diskcache.active_cache()
        if active is not None:
            return (str(active.root), active.byte_limit)
        return (None, None)

    def worker_count(self, unit_count: int) -> int:
        """The effective process count for ``unit_count`` work units.

        Resolves ``"auto"`` against the host and workload (see
        :func:`resolve_worker_count`); explicit counts pass through capped
        at the unit count.

        Args:
            unit_count: Number of independent work units.

        Returns:
            The resolved worker count (>= 1).
        """
        resolved = resolve_worker_count(self._config.workers, unit_count)
        return max(1, min(resolved, unit_count))

    def _pool_key(self, workers: int) -> _PoolKey:
        cache_dir, cache_limit = self._cache_initargs()
        return _PoolKey(
            workers=workers,
            cache_dir=cache_dir,
            cache_limit=cache_limit,
            telemetry_on=telemetry.enabled(),
        )

    def close(self) -> None:
        """Shut down the shared persistent pool (:func:`shutdown_pool`).

        The next pool-path ``map`` — from any executor — respawns it.
        """
        shutdown_pool()

    def prewarm(self, unit_count: int = 1_000_000) -> bool:
        """Spawn the persistent pool now, if this config would use one.

        Forking worker processes is only safe while the host process is
        quiet. A daemon that spawns the pool lazily on its first parallel
        request — with an event loop mid-connection and helper threads
        live — can deadlock the forked children on locks copied mid-
        acquisition (the classic fork-with-threads hazard). Long-lived
        hosts call this once during startup, before serving traffic, so
        later ``map`` calls find the pool already warm. Requests whose
        resolved worker count differs from the prewarmed key still
        respawn lazily (no worse than without prewarming).

        Args:
            unit_count: Hypothetical workload size used to resolve the
                worker count; the default is large so explicit counts
                resolve fully.

        Returns:
            True when a pool is up for this config (spawned here or
            already warm); False for serial configs.
        """
        workers = self.worker_count(unit_count)
        if workers <= 1:
            return False
        _ensure_pool(self._pool_key(workers))
        return True

    def map(self, fn: Callable[[T], U], payloads: Iterable[T]) -> list[U]:
        """Apply ``fn`` to every payload, preserving payload order.

        The first unit always runs in-process: spawn-keyed seed streams
        make results position-independent, so the probe is invisible to
        output while measuring the per-unit kernel time the calibrated
        :class:`DispatchCostModel` weighs against dispatch overhead.
        Under ``workers="auto"`` the remaining units go to the persistent
        pool only when the model predicts a win; explicit multi-worker
        configs always dispatch.

        Exceptions ``fn`` raises propagate unchanged from the pool path —
        without a serial re-run — exactly as they would serially. Only
        *infrastructure* failures (pool creation denied, unpicklable
        payloads, a pool broken twice) degrade to the serial path; seed
        streams make that rerun bit-identical.

        Args:
            fn: A picklable module-level function.
            payloads: Picklable work units.

        Returns:
            Results in payload order.
        """
        items = list(payloads)
        if not items:
            return []
        workers = self.worker_count(len(items))
        if workers <= 1:
            if self._config.workers == "auto":
                reason = "single_unit" if len(items) <= 1 else "single_cpu"
            else:
                reason = "explicit"
            self._note_dispatch(
                mode="serial",
                units=len(items),
                workers=1,
                chunk_size=1,
                reason=reason,
            )
            return [fn(item) for item in items]
        probe_started = time.perf_counter()
        first = fn(items[0])
        unit_seconds = time.perf_counter() - probe_started
        rest = items[1:]
        key = self._pool_key(workers)
        reusable = _pool is not None and _pool.key == key
        costs = (_pool.costs if reusable else _last_costs) or DispatchCostModel()
        if self._config.workers == "auto" and not costs.parallel_pays(
            len(rest), unit_seconds, workers, pool_warm=reusable
        ):
            self._note_dispatch(
                mode="serial_costed",
                units=len(items),
                workers=1,
                chunk_size=1,
                unit_seconds=unit_seconds,
                costs=costs,
                pool_reused=reusable,
            )
            return [first] + [fn(item) for item in rest]
        return [first] + self._pool_map(
            fn, rest, workers, key, unit_seconds, len(items)
        )

    def _pool_map(
        self,
        fn: Callable[[T], U],
        rest: list[T],
        workers: int,
        key: _PoolKey,
        unit_seconds: float,
        total_units: int,
    ) -> list[U]:
        """Dispatch the post-probe units through the persistent pool."""
        rebuilt = False
        while True:
            try:
                record = _ensure_pool(key)
            except OSError as error:
                self._fallback(error, total_units)
                return [fn(item) for item in rest]
            self._publish_payloads(rest)
            chunk = record.costs.chunk_size(len(rest), unit_seconds, workers)
            try:
                with tracing.span(
                    "executor.map", units=total_units, workers=workers
                ) as map_ctx:
                    outcomes = list(
                        record.pool.map(
                            partial(_call_unit, fn, trace=map_ctx),
                            rest,
                            chunksize=chunk,
                        )
                    )
            except BrokenProcessPool as error:
                # A worker died mid-flight (crash, OOM kill). Rebuild the
                # pool once and retry; a second break falls back to the
                # serial path. Either way the broken pool and its shared
                # segments are torn down immediately.
                shutdown_pool()
                if not rebuilt:
                    rebuilt = True
                    telemetry.count("executor.pool.rebuilds")
                    telemetry.log_event(
                        _LOG,
                        logging.WARNING,
                        "executor.pool.rebuild",
                        reason=type(error).__name__,
                        error=str(error),
                    )
                    continue
                self._fallback(error, total_units)
                return [fn(item) for item in rest]
            except (OSError, pickle.PicklingError,
                    AttributeError, TypeError) as error:
                # _call_unit confines fn's own exceptions to outcome
                # records, so anything else escaping pool.map is
                # infrastructure: a restricted environment (no fork), or
                # payload/callable pickling (unpicklable local functions
                # surface as AttributeError/TypeError from pickle itself).
                self._fallback(error, total_units)
                return [fn(item) for item in rest]
            record.map_calls += 1
            # Only a committed, completed pool run reports itself as
            # parallel; fallback runs are tagged serial_fallback instead
            # of masquerading through pre-emitted gauges.
            telemetry.gauge("executor.workers", workers)
            telemetry.gauge("executor.chunk_size", chunk)
            telemetry.count("executor.units", total_units)
            self._note_dispatch(
                mode="parallel",
                units=total_units,
                workers=workers,
                chunk_size=chunk,
                unit_seconds=unit_seconds,
                costs=record.costs,
                pool_reused=record.map_calls > 1,
            )
            return self._unpack_outcomes(outcomes)

    @staticmethod
    def _publish_payloads(items: Sequence) -> None:
        """Publish every dataset reachable from the payloads, so units
        pickle down to shared-memory handles instead of whole corpora."""
        if not shm.enabled():
            return
        for item in items:
            dataset = getattr(item, "dataset", None)
            if dataset is None:
                dataset = getattr(getattr(item, "query", None), "dataset", None)
            if isinstance(dataset, VideoDataset):
                shm.publish_dataset(dataset)

    def _fallback(self, error: BaseException, total_units: int) -> None:
        telemetry.count("executor.fallback")
        telemetry.gauge("executor.workers", 1)
        telemetry.log_event(
            _LOG,
            logging.WARNING,
            "executor.fallback",
            reason=type(error).__name__,
            error=str(error),
        )
        self._note_dispatch(
            mode="serial_fallback",
            units=total_units,
            workers=1,
            chunk_size=1,
            reason=type(error).__name__,
        )

    def _note_dispatch(
        self,
        *,
        mode: str,
        units: int,
        workers: int,
        chunk_size: int,
        unit_seconds: float | None = None,
        costs: DispatchCostModel | None = None,
        pool_reused: bool = False,
        reason: str | None = None,
    ) -> None:
        """Record the dispatch decision in telemetry and the run ledger."""
        facts: dict = {
            "mode": mode,
            "units": units,
            "workers": workers,
            "chunk_size": chunk_size,
            "pool_reused": bool(pool_reused),
            "pool_generation": _pool_generations,
            "shm_enabled": shm.enabled(),
        }
        if unit_seconds is not None:
            facts["unit_seconds"] = round(unit_seconds, 6)
        if costs is not None:
            facts["spawn_seconds"] = round(costs.spawn_seconds, 6)
            facts["dispatch_seconds_per_task"] = round(
                costs.dispatch_seconds_per_task, 9
            )
        if reason is not None:
            facts["reason"] = reason
        telemetry.log_event(_LOG, logging.DEBUG, "executor.dispatch", **facts)
        run_ledger.record_event("executor.dispatch", **facts)
        run_ledger.annotate(executor=facts)

    @staticmethod
    def _unpack_outcomes(outcomes: list[_UnitOutcome]) -> list:
        """Merge worker telemetry, then surface results or the first error."""
        active = telemetry.registry()
        failure: BaseException | None = None
        results = []
        for outcome in outcomes:
            active.merge_snapshot(outcome.snapshot)
            tracing.ingest_snapshot_spans(outcome.snapshot)
            if failure is None and outcome.error is not None:
                failure = outcome.error
            results.append(outcome.result)
        if failure is not None:
            raise failure
        return results


# ---------------------------------------------------------------------------
# Profiler work units.
#
# These are module-level (picklable) adapters that rebuild a profiler in the
# worker, run one unit against a fresh ledger, and return the result plus
# the ledger's counts so the parent can merge cost accounting exactly.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepUnit:
    """One nested fraction sweep: a ``(resolution, removal)`` setting.

    Attributes:
        query: The query to profile.
        fractions: Ascending fraction candidates.
        resolution: Fixed resolution knob (None = native).
        removal: Fixed restricted classes.
        correction: Optional correction set.
        trials: Trials averaged inside the unit.
        root: Root entropy of the seed stream.
        unit_index: The setting's index (first spawn-key coordinate).
        trial_indices: Trial coordinates (second spawn-key coordinate);
            defaults to ``range(trials)``.
        early_stop_tolerance: Early-stop threshold; None disables.
        suite: Restricted-class detectors for removal plans.
        vectorized: Execution style of the rebuilt in-worker profiler.
    """

    query: AggregateQuery
    fractions: tuple[float, ...]
    resolution: Resolution | None
    removal: tuple[ObjectClass, ...]
    correction: CorrectionSet | None
    trials: int
    root: tuple[int, ...]
    unit_index: int
    trial_indices: tuple[int, ...] | None = None
    early_stop_tolerance: float | None = None
    suite: DetectorSuite | None = None
    vectorized: bool = True


def run_sweep_unit(unit: SweepUnit) -> tuple[list, dict[int, int]]:
    """Execute one sweep unit (in-process or inside a worker).

    Args:
        unit: The sweep unit.

    Returns:
        The swept ``(fraction, PointEstimate)`` pairs and the unit's
        per-resolution invocation counts.
    """
    from repro.core.profiler import DegradationProfiler
    from repro.query.processor import QueryProcessor

    ledger = InvocationLedger()
    profiler = DegradationProfiler(
        QueryProcessor(unit.suite),
        trials=unit.trials,
        ledger=ledger,
        vectorized=unit.vectorized,
    )
    trial_indices = (
        unit.trial_indices
        if unit.trial_indices is not None
        else tuple(range(unit.trials))
    )
    swept = profiler.sweep_fractions_seeded(
        unit.query,
        unit.fractions,
        unit.resolution,
        unit.removal,
        unit.correction,
        unit.root,
        unit.unit_index,
        trial_indices,
        unit.early_stop_tolerance,
    )
    return swept, ledger.by_resolution()


@dataclass(frozen=True)
class PlanUnit:
    """One priced degradation setting (trials averaged inside the unit).

    Attributes:
        query: The query to profile.
        plan: The degradation setting.
        correction: Optional correction set.
        trials: Trials averaged inside the unit.
        root: Root entropy of the seed stream.
        unit_index: The setting's index (first spawn-key coordinate).
        suite: Restricted-class detectors for removal plans.
        vectorized: Execution style of the rebuilt in-worker profiler.
    """

    query: AggregateQuery
    plan: InterventionPlan
    correction: CorrectionSet | None
    trials: int
    root: tuple[int, ...]
    unit_index: int
    suite: DetectorSuite | None = None
    vectorized: bool = True


def run_plan_unit(unit: PlanUnit) -> tuple[object, dict[int, int]]:
    """Execute one plan-pricing unit.

    Args:
        unit: The plan unit.

    Returns:
        The setting's :class:`PointEstimate` and the unit's per-resolution
        invocation counts.
    """
    from repro.core.profiler import DegradationProfiler
    from repro.query.processor import QueryProcessor

    ledger = InvocationLedger()
    profiler = DegradationProfiler(
        QueryProcessor(unit.suite),
        trials=unit.trials,
        ledger=ledger,
        vectorized=unit.vectorized,
    )
    point = profiler.estimate_plan_seeded(
        unit.query, unit.plan, unit.root, unit.unit_index, unit.correction
    )
    return point, ledger.by_resolution()


def merge_ledger_counts(
    ledger: InvocationLedger | None, counts: dict[int, int]
) -> None:
    """Fold a worker ledger's per-resolution counts into the parent ledger.

    Args:
        ledger: The parent ledger (None = accounting disabled).
        counts: Per-resolution counts returned by a work unit.
    """
    if ledger is None:
        return
    for side, new_frames in sorted(counts.items()):
        ledger.record(side, new_frames)
