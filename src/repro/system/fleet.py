"""Multi-camera fleets: one analytical answer across several cameras.

The paper's deployment (§1) is "a set of configurable networked cameras"
feeding one central query processor. A city-wide AVG ("average cars per
frame across all monitored roads") spans every camera's corpus; each
camera samples its own frames under its own degradation plan, and the
central system must combine the per-camera estimates into one answer with
one guaranteed bound.

The combination is a stratified estimator: with camera ``i`` holding
``N_i`` frames whose sampled interval is ``[L_i, U_i]`` (each built at
``delta / k`` so the union over ``k`` cameras spends ``delta``), the fleet
mean lies in

``[ sum_i N_i L_i / N,  sum_i N_i U_i / N ]``   with probability >= 1-delta

and the usual Theorem 3.1 output construction turns that interval into a
bound-aware answer. Stratification also helps accuracy: between-camera
variance costs nothing because every camera contributes its exact weight.

Two executors share that combination:

- :class:`CameraFleet` — the happy-path estimator (every camera answers).
- :class:`FleetQueryProcessor` — the resilient executor: cameras
  transmit through seeded :class:`~repro.system.faults.FaultyChannel`
  paths with retry/backoff and per-camera circuit breakers; cameras lost
  mid-query are excised, the ``delta`` budget is re-split across the
  survivors (:func:`~repro.estimators.budget.resplit_delta`), and the
  :class:`FleetReport` records exactly which cameras degraded, which
  frames were dropped, and the widened-but-valid surviving-fleet bound.
"""

from __future__ import annotations

import enum
import logging
from dataclasses import dataclass

import numpy as np

from repro.errors import (
    CameraOutageError,
    ConfigurationError,
    EstimationError,
    TransmissionError,
)
from repro.estimators.base import Estimate
from repro.estimators.budget import (
    StratumInterval,
    combine_stratum_intervals,
    resplit_delta,
    split_delta,
)
from repro.estimators.sentinel import BoundSentinel, SentinelVerdict
from repro.estimators.smokescreen import SmokescreenMeanEstimator
from repro.interventions.plan import DegradedSample, InterventionPlan
from repro.query.aggregates import Aggregate
from repro.query.processor import QueryProcessor
from repro.query.query import AggregateQuery
from repro.system.camera import Camera
from repro.system.executor import ParallelExecutor
from repro.system.faults import (
    ChannelDelivery,
    FaultInjector,
    FaultModel,
    transmit_with_retry,
)
from repro.system import telemetry
from repro.system.observe import ledger as run_ledger
from repro.system.observe.aggregate import TelemetryAggregator
from repro.system.resilience import (
    BreakerState,
    CircuitBreaker,
    HealthLedger,
    RetryPolicy,
)

_LOG = telemetry.get_logger("system.fleet")


def _validate_cameras(cameras: list[Camera]) -> None:
    """Eager fleet validation: misconfiguration surfaces where written."""
    if not cameras:
        raise ConfigurationError("a fleet needs at least one camera")
    names = [camera.name for camera in cameras]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate camera names: {names}")
    for camera in cameras:
        if camera.dataset.frame_count <= 0:
            raise ConfigurationError(
                f"camera {camera.name!r} observes an empty dataset "
                f"({camera.dataset.frame_count} frames); every fleet camera "
                "needs a non-empty corpus"
            )


@dataclass(frozen=True)
class CameraValuesUnit:
    """One camera's sampled-values computation, shipped to a pool worker.

    Carries exactly what :meth:`QueryProcessor.values_for_sample` needs:
    the camera's query (whose dataset pickles down to a shared-memory
    handle when published), the delivered sample, and the restricted-class
    suite. Workers rebuild a fresh :class:`QueryProcessor` — its per-query
    memo is process-local anyway — so results are bit-identical to the
    parent calling ``values_for_sample`` directly.

    Attributes:
        query: The per-camera AVG query at its ``delta`` share.
        sample: The degraded sample the channel actually delivered.
        suite: The processor's restricted-class detector suite (or None).
    """

    query: AggregateQuery
    sample: DegradedSample
    suite: object | None


def run_camera_values_unit(unit: CameraValuesUnit) -> np.ndarray:
    """Evaluate one camera's sampled values (pool-worker entry point)."""
    processor = QueryProcessor(unit.suite)
    return processor.values_for_sample(unit.query, unit.sample)


@dataclass(frozen=True)
class FleetEstimate:
    """The combined fleet answer plus its per-camera parts.

    Attributes:
        combined: The fleet-level bound-aware estimate (AVG across all
            frames of all cameras).
        per_camera: Each camera's own estimate, keyed by camera name.
    """

    combined: Estimate
    per_camera: dict[str, Estimate]


class CameraFleet:
    """Several cameras answering one frame-level AVG query together."""

    def __init__(self, cameras: list[Camera], processor: QueryProcessor) -> None:
        """Assemble a fleet.

        Args:
            cameras: The fleet's cameras (each with its own corpus and
                currently configured plan); at least one, distinct names,
                non-empty corpora.
            processor: The central query processor.
        """
        _validate_cameras(cameras)
        self._cameras = list(cameras)
        self._processor = processor

    @property
    def cameras(self) -> list[Camera]:
        """The fleet's cameras (copy)."""
        return list(self._cameras)

    @property
    def total_frames(self) -> int:
        """Total frames across the fleet (the stratification weights)."""
        return sum(camera.dataset.frame_count for camera in self._cameras)

    def estimate_mean(
        self,
        model_for_camera,
        rng: np.random.Generator,
        delta: float = 0.05,
    ) -> FleetEstimate:
        """The fleet-wide AVG with a combined guaranteed bound.

        Each camera transmits one degraded pass under its configured plan;
        its interval is built at ``delta / k`` and the intervals combine by
        frame-count weights. Cameras whose plans are non-random contribute
        *uncorrected* intervals — configure cameras with random plans (or
        repair per camera first) for a trustworthy fleet bound.

        The only randomness consumed is ``rng``'s: re-running with a
        freshly seeded generator reproduces the estimate bit for bit.

        Args:
            model_for_camera: Callable mapping a camera to the query
                detector for its corpus (fleets may mix camera models).
            rng: Randomness for the per-camera frame samples.
            delta: Total failure probability, split across cameras.

        Returns:
            The fleet estimate with per-camera parts.
        """
        if not 0.0 < delta < 1.0:
            raise EstimationError(f"delta must lie in (0, 1), got {delta}")
        share = split_delta(delta, len(self._cameras))
        estimator = SmokescreenMeanEstimator()

        per_camera: dict[str, Estimate] = {}
        strata: list[StratumInterval] = []
        total = float(self.total_frames)
        for camera in self._cameras:
            query = AggregateQuery(
                camera.dataset, model_for_camera(camera), Aggregate.AVG,
                delta=share,
            )
            sample = camera.transmit(rng)
            values = self._processor.values_for_sample(query, sample)
            estimate = estimator.estimate(values, sample.universe_size, share)
            per_camera[camera.name] = estimate
            strata.append(
                StratumInterval(
                    weight=camera.dataset.frame_count / total,
                    mean=estimate.value,
                    lower=estimate.extras["lower"],
                    upper=estimate.extras["upper"],
                    n=estimate.n,
                )
            )

        combined = combine_stratum_intervals(
            strata, universe_size=self.total_frames, method="smokescreen-fleet"
        )
        return FleetEstimate(combined=combined, per_camera=per_camera)

    def configure_all(
        self, plan: InterventionPlan
    ) -> None:
        """Install one degradation plan on every camera.

        Args:
            plan: The shared plan (validated per camera's resolution).
        """
        for camera in self._cameras:
            camera.apply_plan(plan)


class CameraStatus(enum.Enum):
    """How one camera fared during one resilient fleet query."""

    OK = "ok"
    DEGRADED = "degraded"
    LOST = "lost"


@dataclass(frozen=True)
class CameraReport:
    """One camera's line in a :class:`FleetReport`.

    Attributes:
        name: Camera identifier.
        status: OK (clean delivery), DEGRADED (delivered, but only after
            retries, frame losses, or a straggling transfer), or LOST (no
            data this query — outage, exhausted retries, or an open
            circuit breaker).
        weight: The camera's share of the *full* fleet's frames.
        attempts: Transmit attempts made this query.
        retries: Backoff-then-retry cycles taken this query.
        frames_requested: Frames the camera put on the wire (delivering
            attempt only; zero when lost).
        frames_delivered: Frames that survived drop and corruption.
        frames_dropped: Frames lost in flight.
        frames_corrupted: Frames discarded by the integrity check.
        latency: Simulated seconds spent on this camera (transfer plus
            backoff waits).
        straggler: Whether the delivering transfer straggled.
        breaker_state: The camera's circuit-breaker state after the query.
        estimate: The camera's interval at the re-split share, or None
            when lost.
        reason: Why the camera was lost (None otherwise).
    """

    name: str
    status: CameraStatus
    weight: float
    attempts: int
    retries: int
    frames_requested: int
    frames_delivered: int
    frames_dropped: int
    frames_corrupted: int
    latency: float
    straggler: bool
    breaker_state: BreakerState
    estimate: Estimate | None
    reason: str | None = None


@dataclass(frozen=True)
class FleetSentinelAudit:
    """Per-camera bound-violation verdicts for one fleet query.

    Attributes:
        verdicts: Each audited camera's :class:`SentinelVerdict`, keyed by
            camera name (cameras the sentinel was not armed for, or that
            were lost this query, are absent).
        flagged: Names of cameras whose profiled bound was confirmed
            violated, in fleet order — the localization answer.
    """

    verdicts: dict[str, SentinelVerdict]
    flagged: tuple[str, ...]

    @property
    def clean(self) -> tuple[str, ...]:
        """Audited cameras whose profile held."""
        return tuple(
            name for name in self.verdicts if name not in self.flagged
        )


class FleetSentinel:
    """Per-camera bound monitoring at fleet scale.

    Armed once per deployment with each camera's profiling-time reference
    answer and profiled bound, the sentinel audits every surviving
    camera's delivered values during a fleet query: a fresh
    :class:`~repro.estimators.sentinel.BoundSentinel` replays the
    camera's stream, and the per-camera verdicts localize *which* camera
    broke its profile — the fleet-level question the combined bound alone
    cannot answer (a single hostile camera hides inside the stratified
    average).
    """

    def __init__(
        self,
        references: dict[str, Estimate],
        profiled_bounds: dict[str, float],
        corrections: dict[str, Estimate] | None = None,
        min_count: int = 30,
        patience: int = 2,
    ) -> None:
        """Arm the fleet sentinel.

        Args:
            references: Trusted per-camera answers (profiling-time means),
                keyed by camera name.
            profiled_bounds: The profile's promised error bound per
                camera; must cover the same cameras as ``references``.
            corrections: Optional per-camera correction-set estimates;
                cameras present here get automatic Algorithm 3 repair on
                a confirmed violation.
            min_count: Warm-up floor per camera stream.
            patience: Consecutive breaches required to confirm.
        """
        if set(references) != set(profiled_bounds):
            raise ConfigurationError(
                "sentinel references and profiled bounds must cover the "
                f"same cameras, got {sorted(references)} vs "
                f"{sorted(profiled_bounds)}"
            )
        self._references = dict(references)
        self._profiled_bounds = dict(profiled_bounds)
        self._corrections = dict(corrections or {})
        self._min_count = min_count
        self._patience = patience

    def armed_for(self, camera_name: str) -> bool:
        """Whether this camera has a reference to audit against."""
        return camera_name in self._references

    def audit_camera(
        self,
        camera_name: str,
        values: np.ndarray,
        universe_size: int,
        delta: float,
    ) -> SentinelVerdict | None:
        """Replay one camera's delivered stream through a fresh sentinel.

        Args:
            camera_name: The camera whose values arrived.
            values: The delivered per-frame values, in arrival order.
            universe_size: The camera's eligible-universe size.
            delta: Per-read failure probability for the stream bound.

        Returns:
            The camera's verdict, or None when the sentinel is not armed
            for it.
        """
        if not self.armed_for(camera_name):
            return None
        sentinel = BoundSentinel(
            reference=self._references[camera_name],
            profiled_bound=self._profiled_bounds[camera_name],
            universe_size=universe_size,
            delta=delta,
            min_count=self._min_count,
            patience=self._patience,
            correction=self._corrections.get(camera_name),
            label=camera_name,
        )
        for value in values:
            sentinel.observe(float(value))
        return sentinel.verdict()


@dataclass(frozen=True)
class FleetReport:
    """The structured outcome of one resilient fleet query.

    Attributes:
        combined: The bound-aware estimate over the *surviving* strata —
            valid at confidence ``1 - delta`` for the exact mean across
            the surviving cameras' frames.
        per_camera: Every camera's :class:`CameraReport`, keyed by name.
        delta: The configured total failure probability.
        share: The per-survivor budget actually spent
            (``delta / len(surviving)``).
        surviving: Names of cameras whose data entered the estimate.
        lost: Names of cameras that contributed nothing this query.
        coverage: Fraction of the full fleet's frames the estimate
            covers (1.0 when nothing was lost).
        total_retries: Retry cycles across the whole fleet this query.
        elapsed: Simulated seconds the query took (transfers + backoff).
        sentinel: Per-camera bound-violation audit, or None when the
            processor ran without a :class:`FleetSentinel`.
    """

    combined: Estimate
    per_camera: dict[str, CameraReport]
    delta: float
    share: float
    surviving: tuple[str, ...]
    lost: tuple[str, ...]
    coverage: float
    total_retries: int
    elapsed: float
    sentinel: FleetSentinelAudit | None = None

    @property
    def degraded(self) -> tuple[str, ...]:
        """Names of cameras that delivered, but not cleanly."""
        return tuple(
            name
            for name, report in self.per_camera.items()
            if report.status is CameraStatus.DEGRADED
        )

    @property
    def frames_dropped(self) -> int:
        """Frames lost in flight across the fleet this query."""
        return sum(r.frames_dropped for r in self.per_camera.values())

    @property
    def frames_corrupted(self) -> int:
        """Frames discarded by integrity checks across the fleet."""
        return sum(r.frames_corrupted for r in self.per_camera.values())

    def summary_lines(self) -> list[str]:
        """A printable per-camera table plus the combined answer."""
        lines = [
            f"{'camera':<12} {'status':<9} {'attempts':>8} {'retries':>7} "
            f"{'frames':>11} {'dropped':>7} {'latency':>8}"
        ]
        for name, report in self.per_camera.items():
            frames = f"{report.frames_delivered}/{report.frames_requested}"
            lines.append(
                f"{name:<12} {report.status.value:<9} {report.attempts:>8} "
                f"{report.retries:>7} {frames:>11} "
                f"{report.frames_dropped + report.frames_corrupted:>7} "
                f"{report.latency:>7.2f}s"
            )
        lines.append(
            f"coverage {self.coverage:.1%} of fleet frames "
            f"({len(self.surviving)}/{len(self.per_camera)} cameras); "
            f"per-survivor budget delta/k' = {self.share:.4f}"
        )
        lines.append(
            f"surviving-fleet AVG {self.combined.value:.3f} "
            f"(bounded error {self.combined.error_bound:.3f} "
            f"at {1 - self.delta:.0%})"
        )
        if self.sentinel is not None:
            if self.sentinel.flagged:
                names = ", ".join(self.sentinel.flagged)
                lines.append(
                    f"sentinel: profiled bound VIOLATED at {names} "
                    f"({len(self.sentinel.flagged)}/"
                    f"{len(self.sentinel.verdicts)} audited cameras)"
                )
            else:
                lines.append(
                    f"sentinel: profiled bounds held at all "
                    f"{len(self.sentinel.verdicts)} audited cameras"
                )
        return lines


class FleetQueryProcessor:
    """Fleet execution that survives camera failure with a valid bound.

    Every camera transmits through a seeded faulty channel with
    retry/backoff; a per-camera circuit breaker skips cameras that keep
    failing across queries; and when cameras are lost mid-query the
    remaining ``delta`` budget is re-split across the survivors, whose
    intervals are re-derived at the enlarged share ``delta / k'``. The
    union bound over survivors then spends at most ``delta``, so the
    combined interval remains valid — wider in coverage terms, never
    wrong (see docs/SUBSTRATE.md, "Failure model & graceful degradation").

    All time is simulated (a logical clock advanced by backoff delays and
    transfer latencies); all randomness is seed-derived, so a chaos run
    replays bit-for-bit on a freshly constructed processor.
    """

    def __init__(
        self,
        cameras: list[Camera],
        processor: QueryProcessor,
        faults: FaultModel | None = None,
        fault_seed: int = 0,
        retry_policy: RetryPolicy | None = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
        sentinel: FleetSentinel | None = None,
        executor: ParallelExecutor | None = None,
    ) -> None:
        """Assemble the resilient executor.

        Args:
            cameras: The fleet's cameras; at least one, distinct names,
                non-empty corpora (validated eagerly).
            processor: The central query processor.
            faults: Fault rates to inject, or None for a perfect network.
            fault_seed: Root seed of the injected fault streams.
            retry_policy: Backoff policy; defaults to 3 attempts.
            breaker_threshold: Consecutive failures that open a camera's
                circuit breaker.
            breaker_cooldown: Simulated seconds before an open breaker
                half-opens for a probe.
            sentinel: Optional armed :class:`FleetSentinel`; every
                surviving camera's delivered stream is audited against
                its profiled bound and the verdicts land in the report.
            executor: Optional :class:`ParallelExecutor`; when set, the
                per-camera sampled-values stage fans out through the
                persistent worker pool (transmission, estimation, and
                the sentinel stay sequential in the parent). Results are
                bit-identical to the serial path.
        """
        _validate_cameras(cameras)
        self._cameras = list(cameras)
        self._processor = processor
        self._injector = (
            FaultInjector(faults, fault_seed) if faults is not None else None
        )
        self._policy = retry_policy or RetryPolicy()
        self._breakers = {
            camera.name: CircuitBreaker(breaker_threshold, breaker_cooldown)
            for camera in self._cameras
        }
        self._ledger = HealthLedger()
        self._sentinel = sentinel
        self._executor = executor
        self._clock = 0.0

    @property
    def cameras(self) -> list[Camera]:
        """The fleet's cameras (copy)."""
        return list(self._cameras)

    @property
    def total_frames(self) -> int:
        """Total frames across the full fleet."""
        return sum(camera.dataset.frame_count for camera in self._cameras)

    @property
    def ledger(self) -> HealthLedger:
        """The per-camera health ledger (cumulative across queries)."""
        return self._ledger

    @property
    def clock(self) -> float:
        """The fleet's simulated clock, in seconds."""
        return self._clock

    def breaker_state(self, camera_name: str) -> BreakerState:
        """One camera's circuit-breaker state at the current clock."""
        breaker = self._breakers.get(camera_name)
        if breaker is None:
            raise ConfigurationError(f"unknown camera {camera_name!r}")
        return breaker.state(self._clock)

    def execute(
        self,
        model_for_camera,
        delta: float = 0.05,
        seed: int = 0,
    ) -> FleetReport:
        """Run one fleet-wide AVG query, degrading gracefully on failure.

        Args:
            model_for_camera: Callable mapping a camera to its detector.
            delta: Total failure probability of the combined bound.
            seed: Seed for frame sampling, retry jitter, and (together
                with the construction-time ``fault_seed``) the fault
                streams; one seed replays the whole query exactly.

        Returns:
            The :class:`FleetReport`; its combined interval covers the
            exact surviving-fleet mean with probability >= ``1 - delta``.

        Raises:
            TransmissionError: No camera delivered anything — there is no
                surviving stratum to answer from.
            EstimationError: ``delta`` is outside ``(0, 1)``.
        """
        if not 0.0 < delta < 1.0:
            raise EstimationError(f"delta must lie in (0, 1), got {delta}")
        with telemetry.span(
            "fleet.execute", cameras=len(self._cameras), seed=int(seed)
        ):
            return self._execute_timed(model_for_camera, delta, seed)

    def _camera_values(
        self,
        model_for_camera,
        deliveries: dict[str, ChannelDelivery],
        share: float,
    ) -> dict[str, np.ndarray]:
        """Sampled values for every delivered camera, keyed by name.

        When an executor is configured and more than one camera delivered,
        the per-camera computations fan out through the persistent worker
        pool (each camera's corpus rides the shared-memory data plane when
        published); otherwise they run in-process. Both paths evaluate the
        same pure function, so results are bit-identical.
        """
        delivered = [
            camera for camera in self._cameras if camera.name in deliveries
        ]
        units = [
            CameraValuesUnit(
                query=AggregateQuery(
                    camera.dataset,
                    model_for_camera(camera),
                    Aggregate.AVG,
                    delta=share,
                ),
                sample=deliveries[camera.name].sample,
                suite=self._processor.suite,
            )
            for camera in delivered
        ]
        if self._executor is not None and len(units) > 1:
            values = self._executor.map(run_camera_values_unit, units)
        else:
            values = [
                self._processor.values_for_sample(unit.query, unit.sample)
                for unit in units
            ]
        return {
            camera.name: camera_values
            for camera, camera_values in zip(delivered, values)
        }

    def _execute_timed(
        self,
        model_for_camera,
        delta: float,
        seed: int,
    ) -> FleetReport:
        """The span-timed body of :meth:`execute`."""
        root = np.random.SeedSequence(int(seed))
        camera_sequences = root.spawn(len(self._cameras))

        started = self._clock
        deliveries: dict[str, ChannelDelivery] = {}
        partial: dict[str, dict] = {}
        for camera, sequence in zip(self._cameras, camera_sequences):
            partial[camera.name] = self._transmit_one(camera, sequence, seed)
            delivery = partial[camera.name]["delivery"]
            if delivery is not None:
                deliveries[camera.name] = delivery

        if not deliveries:
            reasons = "; ".join(
                f"{name}: {meta['reason']}" for name, meta in partial.items()
            )
            raise TransmissionError(
                f"no camera delivered a sample this query ({reasons})"
            )

        share = resplit_delta(delta, len(deliveries))
        estimator = SmokescreenMeanEstimator()
        surviving_frames = sum(
            camera.dataset.frame_count
            for camera in self._cameras
            if camera.name in deliveries
        )
        total_frames = float(self.total_frames)

        values_by_camera = self._camera_values(
            model_for_camera, deliveries, share
        )

        strata: list[StratumInterval] = []
        reports: dict[str, CameraReport] = {}
        verdicts: dict[str, SentinelVerdict] = {}
        for camera in self._cameras:
            meta = partial[camera.name]
            weight = camera.dataset.frame_count / total_frames
            delivery = meta["delivery"]
            estimate = None
            if delivery is not None:
                values = values_by_camera[camera.name]
                estimate = estimator.estimate(
                    values, delivery.sample.universe_size, share
                )
                if self._sentinel is not None:
                    verdict = self._sentinel.audit_camera(
                        camera.name, values,
                        delivery.sample.universe_size, share,
                    )
                    if verdict is not None:
                        verdicts[camera.name] = verdict
                strata.append(
                    StratumInterval(
                        weight=camera.dataset.frame_count / surviving_frames,
                        mean=estimate.value,
                        lower=estimate.extras["lower"],
                        upper=estimate.extras["upper"],
                        n=estimate.n,
                    )
                )
            reports[camera.name] = CameraReport(
                name=camera.name,
                status=meta["status"],
                weight=weight,
                attempts=meta["attempts"],
                retries=meta["retries"],
                frames_requested=delivery.requested if delivery else 0,
                frames_delivered=delivery.delivered if delivery else 0,
                frames_dropped=delivery.dropped if delivery else 0,
                frames_corrupted=delivery.corrupted if delivery else 0,
                latency=meta["latency"],
                straggler=bool(delivery.straggler) if delivery else False,
                breaker_state=self._breakers[camera.name].state(self._clock),
                estimate=estimate,
                reason=meta["reason"],
            )

        combined = combine_stratum_intervals(
            strata,
            universe_size=surviving_frames,
            method="smokescreen-fleet-resilient",
        )
        surviving = tuple(
            camera.name for camera in self._cameras
            if camera.name in deliveries
        )
        lost = tuple(
            camera.name for camera in self._cameras
            if camera.name not in deliveries
        )
        if lost:
            telemetry.count("fleet.cameras_lost", len(lost))
        audit = None
        if self._sentinel is not None:
            flagged = tuple(
                camera.name for camera in self._cameras
                if verdicts.get(camera.name) is not None
                and verdicts[camera.name].tripped
            )
            audit = FleetSentinelAudit(verdicts=verdicts, flagged=flagged)
        event_fields = {
            "cameras": len(self._cameras),
            "lost": len(lost),
            "coverage": round(surviving_frames / total_frames, 6),
            "bound": round(float(combined.error_bound), 6),
            "retries": sum(meta["retries"] for meta in partial.values()),
        }
        if audit is not None:
            event_fields["sentinel_audited"] = len(audit.verdicts)
            event_fields["sentinel_flagged"] = list(audit.flagged)
        run_ledger.record_event("fleet.execute", **event_fields)
        # Hierarchical camera -> shard -> fleet telemetry rollup: merged
        # onto the run record as facts.fleet.telemetry and rendered by
        # ``repro runs show``.
        aggregator = TelemetryAggregator()
        for camera in self._cameras:
            report = reports[camera.name]
            verdict = verdicts.get(camera.name)
            aggregator.add_camera(
                camera.name,
                latency=report.latency,
                frames=report.frames_delivered,
                status=report.status.name.lower(),
                violation=bool(verdict is not None and verdict.tripped),
            )
        run_ledger.annotate(fleet={"telemetry": aggregator.rollup()})
        return FleetReport(
            combined=combined,
            per_camera=reports,
            delta=delta,
            share=share,
            surviving=surviving,
            lost=lost,
            coverage=surviving_frames / total_frames,
            total_retries=sum(meta["retries"] for meta in partial.values()),
            elapsed=self._clock - started,
            sentinel=audit,
        )

    def _transmit_one(
        self,
        camera: Camera,
        sequence: np.random.SeedSequence,
        query_seed: int,
    ) -> dict:
        """One camera's transmit-with-retry, with breaker and ledger."""
        breaker = self._breakers[camera.name]
        health = self._ledger.health(camera.name)
        base = {
            "delivery": None,
            "attempts": 0,
            "retries": 0,
            "latency": 0.0,
            "status": CameraStatus.LOST,
        }
        if not breaker.allow(self._clock):
            health.skipped_queries += 1
            telemetry.count("fleet.skipped_queries")
            telemetry.log_event(
                _LOG,
                logging.WARNING,
                "fleet.camera_skipped",
                camera=camera.name,
                reason="circuit breaker open",
            )
            return {**base, "reason": "circuit breaker open"}

        sample_sequence, retry_sequence = sequence.spawn(2)
        sample_rng = np.random.default_rng(sample_sequence)
        retry_rng = np.random.default_rng(retry_sequence)
        if self._injector is not None:
            channel = self._injector.channel(camera, query_seed)
        else:
            channel = _PerfectChannel(camera)

        try:
            outcome = transmit_with_retry(
                channel, sample_rng, self._policy, retry_rng
            )
        except CameraOutageError as error:
            health.attempts += 1
            health.failures += 1
            health.last_error = str(error)
            breaker.record_failure(self._clock)
            telemetry.count("fleet.attempts")
            telemetry.count("fleet.failures")
            telemetry.log_event(
                _LOG,
                logging.WARNING,
                "fleet.camera_lost",
                camera=camera.name,
                reason=str(error),
            )
            return {**base, "attempts": 1, "reason": str(error)}
        except TransmissionError as error:
            attempts = getattr(error, "attempts", self._policy.max_attempts)
            retries = getattr(error, "retries", attempts - 1)
            backoff = getattr(error, "backoff", 0.0)
            health.attempts += attempts
            health.failures += attempts
            health.retries += retries
            health.latency += backoff
            health.last_error = str(error)
            for _ in range(attempts):
                breaker.record_failure(self._clock)
            self._clock += backoff
            telemetry.count("fleet.attempts", attempts)
            telemetry.count("fleet.failures", attempts)
            telemetry.count("fleet.retries", retries)
            telemetry.log_event(
                _LOG,
                logging.WARNING,
                "fleet.camera_lost",
                camera=camera.name,
                reason=str(error),
            )
            return {
                **base,
                "attempts": attempts,
                "retries": retries,
                "latency": backoff,
                "reason": str(error),
            }

        delivery = outcome.delivery
        latency = outcome.backoff + delivery.latency
        health.attempts += outcome.attempts
        health.successes += 1
        health.failures += outcome.attempts - 1
        health.retries += outcome.retries
        health.frames_dropped += delivery.dropped
        health.frames_corrupted += delivery.corrupted
        health.latency += latency
        for _ in range(outcome.attempts - 1):
            breaker.record_failure(self._clock)
        breaker.record_success(self._clock)
        self._clock += latency
        telemetry.count("fleet.attempts", outcome.attempts)
        telemetry.count("fleet.retries", outcome.retries)
        if delivery.dropped:
            telemetry.count("fleet.frames_dropped", delivery.dropped)
        if delivery.corrupted:
            telemetry.count("fleet.frames_corrupted", delivery.corrupted)

        clean = (
            outcome.retries == 0
            and not delivery.lossy
            and not delivery.straggler
        )
        return {
            "delivery": delivery,
            "attempts": outcome.attempts,
            "retries": outcome.retries,
            "latency": latency,
            "status": CameraStatus.OK if clean else CameraStatus.DEGRADED,
            "reason": None,
        }


class _PerfectChannel:
    """A fault-free stand-in channel (no injector configured)."""

    def __init__(self, camera: Camera) -> None:
        self._camera = camera

    @property
    def name(self) -> str:
        return self._camera.name

    def transmit(self, rng: np.random.Generator) -> ChannelDelivery:
        sample = self._camera.transmit(rng)
        return ChannelDelivery(
            sample=sample,
            requested=sample.size,
            delivered=sample.size,
            dropped=0,
            corrupted=0,
            latency=0.0,
            straggler=False,
        )
