"""Multi-camera fleets: one analytical answer across several cameras.

The paper's deployment (§1) is "a set of configurable networked cameras"
feeding one central query processor. A city-wide AVG ("average cars per
frame across all monitored roads") spans every camera's corpus; each
camera samples its own frames under its own degradation plan, and the
central system must combine the per-camera estimates into one answer with
one guaranteed bound.

The combination is a stratified estimator: with camera ``i`` holding
``N_i`` frames whose sampled interval is ``[L_i, U_i]`` (each built at
``delta / k`` so the union over ``k`` cameras spends ``delta``), the fleet
mean lies in

``[ sum_i N_i L_i / N,  sum_i N_i U_i / N ]``   with probability >= 1-delta

and the usual Theorem 3.1 output construction turns that interval into a
bound-aware answer. Stratification also helps accuracy: between-camera
variance costs nothing because every camera contributes its exact weight.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, EstimationError
from repro.estimators.base import Estimate
from repro.estimators.smokescreen import (
    SmokescreenMeanEstimator,
    bound_aware_estimate_from_interval,
)
from repro.interventions.plan import InterventionPlan
from repro.query.aggregates import Aggregate
from repro.query.processor import QueryProcessor
from repro.query.query import AggregateQuery
from repro.system.camera import Camera


@dataclass(frozen=True)
class FleetEstimate:
    """The combined fleet answer plus its per-camera parts.

    Attributes:
        combined: The fleet-level bound-aware estimate (AVG across all
            frames of all cameras).
        per_camera: Each camera's own estimate, keyed by camera name.
    """

    combined: Estimate
    per_camera: dict[str, Estimate]


class CameraFleet:
    """Several cameras answering one frame-level AVG query together."""

    def __init__(self, cameras: list[Camera], processor: QueryProcessor) -> None:
        """Assemble a fleet.

        Args:
            cameras: The fleet's cameras (each with its own corpus and
                currently configured plan); at least one, distinct names.
            processor: The central query processor.
        """
        if not cameras:
            raise ConfigurationError("a fleet needs at least one camera")
        names = [camera.name for camera in cameras]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate camera names: {names}")
        self._cameras = list(cameras)
        self._processor = processor

    @property
    def cameras(self) -> list[Camera]:
        """The fleet's cameras (copy)."""
        return list(self._cameras)

    @property
    def total_frames(self) -> int:
        """Total frames across the fleet (the stratification weights)."""
        return sum(camera.dataset.frame_count for camera in self._cameras)

    def estimate_mean(
        self,
        model_for_camera,
        rng: np.random.Generator,
        delta: float = 0.05,
    ) -> FleetEstimate:
        """The fleet-wide AVG with a combined guaranteed bound.

        Each camera transmits one degraded pass under its configured plan;
        its interval is built at ``delta / k`` and the intervals combine by
        frame-count weights. Cameras whose plans are non-random contribute
        *uncorrected* intervals — configure cameras with random plans (or
        repair per camera first) for a trustworthy fleet bound.

        Args:
            model_for_camera: Callable mapping a camera to the query
                detector for its corpus (fleets may mix camera models).
            rng: Randomness for the per-camera frame samples.
            delta: Total failure probability, split across cameras.

        Returns:
            The fleet estimate with per-camera parts.
        """
        if not 0.0 < delta < 1.0:
            raise EstimationError(f"delta must lie in (0, 1), got {delta}")
        share = delta / len(self._cameras)
        estimator = SmokescreenMeanEstimator()

        per_camera: dict[str, Estimate] = {}
        weighted_lower = 0.0
        weighted_upper = 0.0
        weighted_mean_sign = 0.0
        total = float(self.total_frames)
        for camera in self._cameras:
            query = AggregateQuery(
                camera.dataset, model_for_camera(camera), Aggregate.AVG,
                delta=share,
            )
            sample = camera.transmit(rng)
            values = self._processor.values_for_sample(query, sample)
            estimate = estimator.estimate(values, sample.universe_size, share)
            per_camera[camera.name] = estimate
            weight = camera.dataset.frame_count / total
            weighted_lower += weight * estimate.extras["lower"]
            weighted_upper += weight * estimate.extras["upper"]
            weighted_mean_sign += weight * estimate.value

        combined = bound_aware_estimate_from_interval(
            weighted_mean_sign,
            weighted_upper,
            weighted_lower,
            n=sum(estimate.n for estimate in per_camera.values()),
            universe_size=self.total_frames,
            method="smokescreen-fleet",
        )
        return FleetEstimate(combined=combined, per_camera=per_camera)

    def configure_all(
        self, plan: InterventionPlan
    ) -> None:
        """Install one degradation plan on every camera.

        Args:
            plan: The shared plan (validated per camera's resolution).
        """
        for camera in self._cameras:
            camera.apply_plan(plan)
