"""Process-local observability: metrics, spans, and structured logging.

The fleet/cache/executor substrate built in the preceding PRs is invisible
at runtime: cache hits, pool fallbacks, breaker trips, and sweep timings
all happen silently. This module is the observability layer production
video-analytics systems treat as first class — AQuA steers its pipeline off
monitored quality signals, and Boggart's amortization story depends on
knowing exactly what was reused versus recomputed.

Three cooperating pieces, all dependency-free (stdlib only, so every layer
of the package can import this module without cycles):

- :class:`MetricsRegistry` — counters, gauges, and histograms keyed by
  dotted metric names (``cache.hit``, ``executor.fallback``). Timers use
  the monotonic clock (:func:`time.perf_counter`). A registry produces
  picklable, **mergeable** :class:`MetricsSnapshot` objects, so worker
  processes fold their metrics into the parent exactly like
  :class:`~repro.system.costs.InvocationLedger` counts cross the pool
  boundary.
- **Spans** — lightweight wall-time scopes (``with telemetry.span(
  "profiler.sweep", resolution=304)``) recording a parent/child trace tree
  for profile generation.
- **Structured logging** — ``repro.*`` namespaced loggers with a JSON or
  human formatter (:func:`setup_logging`), and :func:`log_event` for
  key=value event records.

Telemetry is **off by default and cheap when off**: the process-global
registry starts as a shared :class:`NullRegistry` whose methods are no-ops
and whose ``span``/``timer`` return a reusable null context manager, so
instrumented hot paths cost a delegating call and nothing else. Enable it
with :func:`enable` (the CLI's ``--telemetry`` flag does).

Telemetry is **never consulted by estimation code** — metrics and spans
are written, not read, so sweep outputs are bit-identical with telemetry
enabled or disabled (the benchmark asserts this).
"""

from __future__ import annotations

import bisect
import json
import logging
import math
import sys
import time
from dataclasses import dataclass, field
from typing import Iterator, Mapping

__all__ = [
    "HISTOGRAM_BUCKET_BOUNDS",
    "HistogramStat",
    "JsonFormatter",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullRegistry",
    "SpanRecord",
    "count",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_logger",
    "install",
    "log_event",
    "merge_snapshots",
    "observe",
    "perf_epoch",
    "registry",
    "setup_logging",
    "span",
    "timer",
]


#: This process's offset between the wall clock and the monotonic
#: performance counter, captured once at import. ``perf_epoch() +
#: time.perf_counter()`` is a wall-clock timestamp, so spans timed with
#: the monotonic clock can carry absolute start times that are directly
#: comparable *across processes on one machine* — the anchoring that lets
#: pool-worker span forests line up with the parent's on one timeline.
_PERF_EPOCH = time.time() - time.perf_counter()


def perf_epoch() -> float:
    """The wall-clock value of this process's ``perf_counter`` zero."""
    return _PERF_EPOCH


# ---------------------------------------------------------------------------
# Snapshot data model (picklable, mergeable).
# ---------------------------------------------------------------------------

#: Upper bounds (``le``) of the fixed histogram buckets, in ascending
#: order; observations above the last bound land in the implicit ``+Inf``
#: bucket. The bounds span sub-millisecond span timings up to multi-minute
#: sweeps — histograms here overwhelmingly observe wall seconds. A fixed,
#: shared layout keeps bucket vectors associative under merge (elementwise
#: sums) exactly like the scalar summary fields.
HISTOGRAM_BUCKET_BOUNDS: tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0
)


def _bucket_vector(value: float) -> tuple[int, ...]:
    """A one-observation bucket vector for ``value``."""
    counts = [0] * len(HISTOGRAM_BUCKET_BOUNDS)
    index = bisect.bisect_left(HISTOGRAM_BUCKET_BOUNDS, value)
    if index < len(counts):
        counts[index] = 1
    return tuple(counts)


def _sum_buckets(
    a: tuple[int, ...], b: tuple[int, ...]
) -> tuple[int, ...]:
    """Elementwise sum, treating a missing (empty) vector as zeros."""
    if not a:
        return b
    if not b:
        return a
    return tuple(x + y for x, y in zip(a, b))


@dataclass(frozen=True)
class HistogramStat:
    """Summary statistics of one histogram metric.

    Full value lists would not merge cheaply across processes; the summary
    (count, total, min, max, fixed-layout bucket counts) does, and it is
    what the snapshot carries.

    Attributes:
        count: Number of observations.
        total: Sum of observed values.
        minimum: Smallest observed value.
        maximum: Largest observed value.
        bucket_counts: Per-bucket observation counts aligned with
            :data:`HISTOGRAM_BUCKET_BOUNDS` (non-cumulative; observations
            above the last bound are implicit: ``count - sum(buckets)``).
            Empty means "no bucket data" (a hand-built summary) and merges
            as all zeros.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    bucket_counts: tuple[int, ...] = ()

    @classmethod
    def single(cls, value: float) -> "HistogramStat":
        """The summary of exactly one observation."""
        return cls(
            count=1,
            total=value,
            minimum=value,
            maximum=value,
            bucket_counts=_bucket_vector(value),
        )

    @property
    def mean(self) -> float:
        """Average observed value (NaN when empty)."""
        return self.total / self.count if self.count else math.nan

    def merged(self, other: "HistogramStat") -> "HistogramStat":
        """The summary of both histograms' observations combined."""
        return HistogramStat(
            count=self.count + other.count,
            total=self.total + other.total,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
            bucket_counts=_sum_buckets(self.bucket_counts, other.bucket_counts),
        )

    def quantile(self, q: float) -> float:
        """An estimated ``q``-quantile of the observed values.

        NaN policy: an **empty** series has no quantiles — every ``q``
        returns NaN (mirroring :attr:`mean`). A **single** observation (or
        a degenerate series with ``minimum == maximum``) returns that
        exact value for every ``q`` — no interpolation, no division by the
        zero-width range. Otherwise the estimate interpolates linearly
        within the fixed bucket layout (clamped to ``[minimum, maximum]``);
        summaries without bucket data fall back to linear interpolation
        between the extremes.

        Args:
            q: Quantile level in ``[0, 1]``.

        Returns:
            The estimated value, or NaN for an empty series.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile level must lie in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        if self.count == 1 or self.minimum == self.maximum:
            return self.minimum
        if not self.bucket_counts:
            return self.minimum + (self.maximum - self.minimum) * q
        target = q * self.count
        cumulative = 0
        lower = self.minimum
        for bound, bucket in zip(HISTOGRAM_BUCKET_BOUNDS, self.bucket_counts):
            if bucket <= 0:
                continue
            if cumulative + bucket >= target:
                within = (target - cumulative) / bucket
                upper = min(bound, self.maximum)
                low = max(lower, self.minimum)
                if upper <= low:
                    return min(max(upper, self.minimum), self.maximum)
                return low + (upper - low) * within
            cumulative += bucket
            lower = bound
        # Remaining mass sits in the implicit +Inf bucket.
        overflow = self.count - cumulative
        if overflow <= 0:
            return self.maximum
        within = (target - cumulative) / overflow
        low = max(lower, self.minimum)
        return min(low + (self.maximum - low) * max(0.0, min(1.0, within)),
                   self.maximum)

    def to_dict(self) -> dict:
        """A JSON-ready representation."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean if self.count else None,
            "bucket_counts": list(self.bucket_counts),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "HistogramStat":
        """The inverse of :meth:`to_dict` (exact round-trip)."""
        count = int(payload.get("count", 0))
        minimum = payload.get("min")
        maximum = payload.get("max")
        return cls(
            count=count,
            total=float(payload.get("total", 0.0)),
            minimum=math.inf if minimum is None else float(minimum),
            maximum=-math.inf if maximum is None else float(maximum),
            bucket_counts=tuple(
                int(c) for c in payload.get("bucket_counts", ())
            ),
        )


def _normalize_attribute(value: object) -> object:
    """A span attribute as a JSON-compatible, round-trippable value.

    Ints, floats, bools, strings and None pass through unchanged; tuples
    and lists normalise elementwise to tuples (rendered as JSON arrays and
    restored as tuples on :meth:`SpanRecord.from_dict`); numpy scalars
    unwrap via ``.item()``. Only values outside those families — arbitrary
    objects a caller happened to pass — fall back to ``str``; the numeric
    and sequence types the instrumentation actually uses are never
    stringified.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return tuple(_normalize_attribute(item) for item in value)
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _normalize_attribute(item())
        except (TypeError, ValueError):
            pass
    return str(value)


def _attribute_to_json(value: object) -> object:
    """Normalized attribute value with tuples rendered as lists."""
    if isinstance(value, tuple):
        return [_attribute_to_json(item) for item in value]
    return value


def _attribute_from_json(value: object) -> object:
    """The inverse of :func:`_attribute_to_json` (lists back to tuples)."""
    if isinstance(value, list):
        return tuple(_attribute_from_json(item) for item in value)
    return value


@dataclass(frozen=True)
class SpanRecord:
    """One completed span in a trace tree.

    Attributes:
        name: Dotted span name (``profiler.sweep``).
        duration: Wall time in seconds (monotonic clock).
        attributes: The keyword attributes the span was opened with,
            normalized by :func:`_normalize_attribute` (always
            JSON-compatible).
        children: Spans that completed while this one was open.
        start: Absolute wall-clock start time (unix seconds), anchored
            via :func:`perf_epoch` so spans from different processes on
            one machine share a timeline. ``0.0`` means unknown (a
            record deserialized from a pre-anchoring payload).
    """

    name: str
    duration: float
    attributes: tuple[tuple[str, object], ...] = ()
    children: tuple["SpanRecord", ...] = ()
    start: float = 0.0

    def to_dict(self) -> dict:
        """A JSON-ready representation of the subtree."""
        return {
            "name": self.name,
            "duration_s": round(self.duration, 6),
            "start_ts": round(self.start, 6),
            "attributes": {
                key: _attribute_to_json(value)
                for key, value in self.attributes
            },
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SpanRecord":
        """The inverse of :meth:`to_dict`.

        Attribute values survive the JSON round-trip structurally: ints
        stay ints, floats stay floats, and tuples (serialized as JSON
        arrays) come back as tuples.
        """
        return cls(
            name=str(payload["name"]),
            duration=float(payload.get("duration_s", 0.0)),
            start=float(payload.get("start_ts", 0.0)),
            attributes=tuple(
                sorted(
                    (str(key), _attribute_from_json(value))
                    for key, value in dict(
                        payload.get("attributes", {})
                    ).items()
                )
            ),
            children=tuple(
                cls.from_dict(child) for child in payload.get("children", ())
            ),
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable, picklable view of a registry's state.

    Snapshots merge associatively: ``(a + b) + c`` equals ``a + (b + c)``
    on counters and histograms (sums) and concatenates span forests in
    argument order, so worker snapshots can be folded into the parent in
    any grouping. Gauges are last-write-wins in merge order.
    """

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramStat] = field(default_factory=dict)
    spans: tuple[SpanRecord, ...] = ()

    def merged(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """This snapshot with another folded in (see class docstring)."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0.0) + value
        histograms = dict(self.histograms)
        for name, stat in other.histograms.items():
            existing = histograms.get(name)
            histograms[name] = stat if existing is None else existing.merged(stat)
        return MetricsSnapshot(
            counters=counters,
            gauges={**self.gauges, **other.gauges},
            histograms=histograms,
            spans=self.spans + other.spans,
        )

    def to_dict(self) -> dict:
        """A JSON-ready representation (``json.dumps``-able as is)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histogram_bucket_bounds": list(HISTOGRAM_BUCKET_BOUNDS),
            "histograms": {
                name: stat.to_dict()
                for name, stat in sorted(self.histograms.items())
            },
            "spans": [record.to_dict() for record in self.spans],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "MetricsSnapshot":
        """The inverse of :meth:`to_dict` (structural round-trip).

        Counter/gauge values, histogram summaries and span attributes come
        back with their original types (span durations are rounded to the
        microsecond ``to_dict`` serialized).
        """
        return cls(
            counters={
                str(k): float(v)
                for k, v in dict(payload.get("counters", {})).items()
            },
            gauges={
                str(k): float(v)
                for k, v in dict(payload.get("gauges", {})).items()
            },
            histograms={
                str(k): HistogramStat.from_dict(v)
                for k, v in dict(payload.get("histograms", {})).items()
            },
            spans=tuple(
                SpanRecord.from_dict(record)
                for record in payload.get("spans", ())
            ),
        )


def merge_snapshots(*snapshots: MetricsSnapshot | None) -> MetricsSnapshot:
    """Fold any number of snapshots (None entries are skipped)."""
    merged = MetricsSnapshot()
    for snapshot in snapshots:
        if snapshot is not None:
            merged = merged.merged(snapshot)
    return merged


# ---------------------------------------------------------------------------
# Registries.
# ---------------------------------------------------------------------------


class _SpanHandle:
    """Context manager recording one span into its registry."""

    __slots__ = ("_registry", "name", "attributes", "_children", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str, attributes: tuple):
        self._registry = registry
        self.name = name
        self.attributes = attributes
        self._children: list[SpanRecord] = []
        self._start = 0.0

    def __enter__(self) -> "_SpanHandle":
        self._registry._open_span(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        duration = time.perf_counter() - self._start
        self._registry._close_span(self, duration)


class _NullSpan:
    """The shared no-op span/timer: entering and exiting does nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _TimerHandle:
    """Context manager observing its wall time into a histogram."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_TimerHandle":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._registry.observe(self._name, time.perf_counter() - self._start)


class MetricsRegistry:
    """Counters, gauges, histograms, and spans for one process.

    Process-local and single-threaded by design (the substrate parallelises
    with processes, not threads); worker processes run their own registry
    and return snapshots for the parent to merge.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, HistogramStat] = {}
        self._roots: list[SpanRecord] = []
        self._stack: list[_SpanHandle] = []

    def count(self, name: str, value: float = 1.0) -> None:
        """Add to a monotonically increasing counter."""
        self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set a point-in-time value (last write wins)."""
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into a histogram."""
        stat = self._histograms.get(name, HistogramStat())
        self._histograms[name] = stat.merged(HistogramStat.single(value))

    def span(self, name: str, **attributes):
        """A context manager recording a wall-time span under this name.

        Spans opened while another span is active become its children in
        the trace tree; the tree is part of :meth:`snapshot`. Attribute
        values are normalized to JSON-compatible types up front (ints,
        floats, strings and tuples survive export structurally; arbitrary
        objects become strings).
        """
        return _SpanHandle(
            self,
            name,
            tuple(
                sorted(
                    (key, _normalize_attribute(value))
                    for key, value in attributes.items()
                )
            ),
        )

    def timer(self, name: str):
        """A context manager observing its wall time into histogram ``name``."""
        return _TimerHandle(self, name)

    def _open_span(self, handle: _SpanHandle) -> None:
        self._stack.append(handle)

    def _close_span(self, handle: _SpanHandle, duration: float) -> None:
        record = SpanRecord(
            name=handle.name,
            duration=duration,
            attributes=handle.attributes,
            children=tuple(handle._children),
            start=_PERF_EPOCH + handle._start,
        )
        # Tolerate out-of-order exits (generators suspended mid-span):
        # attach to the nearest surviving ancestor instead of crashing.
        while self._stack and self._stack[-1] is not handle:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        if self._stack:
            self._stack[-1]._children.append(record)
        else:
            self._roots.append(record)
        self.observe(f"span.{handle.name}", duration)

    def snapshot(self) -> MetricsSnapshot:
        """The registry's current state as a mergeable snapshot."""
        return MetricsSnapshot(
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            histograms=dict(self._histograms),
            spans=tuple(self._roots),
        )

    def merge_snapshot(self, snapshot: MetricsSnapshot | None) -> None:
        """Fold a (worker) snapshot into this registry."""
        if snapshot is None:
            return
        for name, value in snapshot.counters.items():
            self.count(name, value)
        for name, value in snapshot.gauges.items():
            self.gauge(name, value)
        for name, stat in snapshot.histograms.items():
            existing = self._histograms.get(name, HistogramStat())
            self._histograms[name] = existing.merged(stat)
        self._roots.extend(snapshot.spans)

    def reset(self) -> None:
        """Drop all recorded metrics and spans."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._roots.clear()
        self._stack.clear()


class NullRegistry(MetricsRegistry):
    """The off-by-default registry: every operation is a no-op.

    Instrumented hot paths pay one delegating call; ``span``/``timer``
    hand back a shared null context manager, so no objects are allocated.
    """

    enabled = False

    def count(self, name: str, value: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def span(self, name: str, **attributes):
        return _NULL_SPAN

    def timer(self, name: str):
        return _NULL_SPAN

    def snapshot(self) -> MetricsSnapshot | None:
        return None

    def merge_snapshot(self, snapshot: MetricsSnapshot | None) -> None:
        pass


_NULL_REGISTRY = NullRegistry()
_active: MetricsRegistry = _NULL_REGISTRY


def registry() -> MetricsRegistry:
    """The process-global registry instrumented code writes to."""
    return _active


def enabled() -> bool:
    """Whether telemetry collection is currently on in this process."""
    return _active.enabled


def enable() -> MetricsRegistry:
    """Install a fresh collecting registry and return it."""
    global _active
    _active = MetricsRegistry()
    return _active


def disable() -> None:
    """Return to the shared no-op registry (collection off)."""
    global _active
    _active = _NULL_REGISTRY


def install(target: MetricsRegistry) -> MetricsRegistry:
    """Swap the active registry, returning the previous one.

    Used by the executor's worker shim to collect one work unit's metrics
    into a private registry whose snapshot crosses the pool boundary.
    """
    global _active
    previous = _active
    _active = target
    return previous


# Delegating conveniences: instrumented modules call ``telemetry.count``
# etc. so the active registry is looked up per call (cheap, and workers
# that re-install a registry are picked up immediately).


def count(name: str, value: float = 1.0) -> None:
    """Add to a counter on the active registry."""
    _active.count(name, value)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the active registry."""
    _active.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the active registry."""
    _active.observe(name, value)


def span(name: str, **attributes):
    """Open a span on the active registry (no-op context when disabled)."""
    return _active.span(name, **attributes)


def timer(name: str):
    """Open a timer on the active registry (no-op context when disabled)."""
    return _active.timer(name)


# ---------------------------------------------------------------------------
# Structured logging.
# ---------------------------------------------------------------------------

_ROOT_LOGGER_NAME = "repro"


def get_logger(name: str) -> logging.Logger:
    """A logger in the ``repro.*`` namespace.

    Args:
        name: Suffix under the ``repro`` root (``"system.executor"``), or a
            full ``repro.*`` name, which is used as is.

    Returns:
        The namespaced logger.
    """
    if name == _ROOT_LOGGER_NAME or name.startswith(_ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_LOGGER_NAME}.{name}")


def log_event(
    logger: logging.Logger, level: int, event: str, **fields
) -> None:
    """Emit one structured event record.

    The event name becomes the message; ``fields`` ride on the record as
    ``record.fields`` so both formatters can render them (human as
    ``key=value`` suffixes, JSON as top-level keys).
    """
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={"fields": fields})


def _record_fields(record: logging.LogRecord) -> Mapping[str, object]:
    fields = getattr(record, "fields", None)
    return fields if isinstance(fields, Mapping) else {}


class JsonFormatter(logging.Formatter):
    """One JSON object per line: timestamp, level, logger, event, fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, object] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        for key, value in _record_fields(record).items():
            payload.setdefault(key, value)
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


class HumanFormatter(logging.Formatter):
    """``LEVEL logger: event key=value ...`` for terminals."""

    def format(self, record: logging.LogRecord) -> str:
        suffix = "".join(
            f" {key}={value}" for key, value in _record_fields(record).items()
        )
        base = (
            f"{record.levelname.lower():<7} {record.name}: "
            f"{record.getMessage()}{suffix}"
        )
        if record.exc_info:
            base = f"{base}\n{self.formatException(record.exc_info)}"
        return base


def setup_logging(
    level: str = "warning", fmt: str = "human", stream=None
) -> logging.Logger:
    """Wire the ``repro`` root logger to a stream handler.

    Idempotent per process: an existing handler installed by this function
    is replaced, not duplicated.

    Args:
        level: Threshold name (``debug``/``info``/``warning``/``error``).
        fmt: ``"human"`` or ``"json"``.
        stream: Destination; defaults to ``sys.stderr``.

    Returns:
        The configured ``repro`` root logger.
    """
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    if fmt not in ("human", "json"):
        raise ValueError(f"unknown log format {fmt!r}; use 'human' or 'json'")
    root = logging.getLogger(_ROOT_LOGGER_NAME)
    root.setLevel(numeric)
    root.propagate = False
    for handler in list(root.handlers):
        if getattr(handler, "_repro_telemetry", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter() if fmt == "json" else HumanFormatter())
    handler._repro_telemetry = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    return root


def iter_spans(snapshot: MetricsSnapshot) -> Iterator[SpanRecord]:
    """Depth-first walk over every span in a snapshot's forest."""
    stack = list(reversed(snapshot.spans))
    while stack:
        record = stack.pop()
        yield record
        stack.extend(reversed(record.children))
