"""A configurable networked camera (paper §1, first system component).

Cameras collect frames, apply the configured destructive interventions
on-device, and transmit the degraded result to the central query
processor. The class is a thin stateful wrapper over an
:class:`~repro.interventions.plan.InterventionPlan` with transmission
accounting — the piece the examples use to tell the deployment story.
"""

from __future__ import annotations

import numpy as np

from repro.detection.zoo import DetectorSuite
from repro.interventions.plan import DegradedSample, InterventionPlan
from repro.system.network import TransmissionModel
from repro.video.dataset import VideoDataset
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution


class Camera:
    """One networked camera with tunable degradation knobs."""

    def __init__(
        self,
        name: str,
        dataset: VideoDataset,
        suite: DetectorSuite,
        transmission: TransmissionModel | None = None,
    ) -> None:
        """Install a camera over a (synthetic) scene.

        Args:
            name: Camera identifier.
            dataset: The corpus this camera observes.
            suite: On-device restricted-class detectors (needed to apply
                image removal at the edge).
            transmission: Radio cost model; defaults to
                :class:`TransmissionModel`'s defaults.
        """
        self._name = name
        self._dataset = dataset
        self._suite = suite
        self._transmission = transmission or TransmissionModel()
        self._plan = InterventionPlan()
        self._bytes_transmitted = 0.0

    @property
    def name(self) -> str:
        """Camera identifier."""
        return self._name

    @property
    def dataset(self) -> VideoDataset:
        """The corpus the camera observes."""
        return self._dataset

    @property
    def plan(self) -> InterventionPlan:
        """The currently configured degradation setting."""
        return self._plan

    @property
    def bytes_transmitted(self) -> float:
        """Total bytes shipped off-camera so far."""
        return self._bytes_transmitted

    def configure(
        self,
        fraction: float | None = None,
        resolution: int | Resolution | None = None,
        removed_classes: tuple[ObjectClass, ...] = (),
    ) -> InterventionPlan:
        """Tune the camera's degradation knobs (the administrator's action).

        Args:
            fraction: Sampling fraction, or None for full sampling.
            resolution: Processing/transmission resolution, or None for
                native.
            removed_classes: Restricted classes whose frames are deleted
                on-device.

        Returns:
            The new plan.
        """
        self._plan = InterventionPlan.from_knobs(
            f=fraction, p=resolution, c=removed_classes, suite=self._suite
        )
        # Validate the resolution against this camera's corpus eagerly.
        self._plan.effective_resolution(self._dataset)
        return self._plan

    def apply_plan(self, plan: InterventionPlan) -> InterventionPlan:
        """Install a ready-made plan (e.g. a chosen tradeoff's plan)."""
        plan.effective_resolution(self._dataset)
        self._plan = plan
        return plan

    def transmit(self, rng: np.random.Generator) -> DegradedSample:
        """Degrade and ship one corpus pass to the central system.

        Args:
            rng: Randomness for the frame sample.

        Returns:
            The degraded sample that was transmitted.
        """
        sample = self._plan.draw(self._dataset, rng, self._suite)
        per_frame = self._transmission.frame_bytes(
            sample.resolution, self._plan.quality
        )
        self._bytes_transmitted += per_frame * sample.size
        return sample

    def transmission_cost(self) -> float:
        """Expected bytes of one full corpus pass under the current plan."""
        return self._transmission.plan_bytes(self._dataset, self._plan)

    def __repr__(self) -> str:
        return f"Camera(name={self._name!r}, plan={self._plan.label()!r})"
