"""The public administrator persona (paper §1's fourth component).

An :class:`Administrator` holds public preferences and walks the paper's
administration procedure end to end: request a profile from a Smokescreen
deployment, choose the tradeoff the preferences allow, install it on a
camera, and run the degraded query — the workflow of EXAMPLE 3 in the
paper ("Harry").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.profile import Profile
from repro.core.smokescreen import Smokescreen
from repro.core.tradeoff import PublicPreferences, TradeoffChoice
from repro.estimators.base import Estimate
from repro.query.query import AggregateQuery
from repro.system.camera import Camera


@dataclass
class Administrator:
    """An administrator with public preferences.

    Attributes:
        name: The administrator's name (e.g. ``"Harry"``).
        preferences: The policy constraints guiding tradeoff choices.
    """

    name: str
    preferences: PublicPreferences

    def choose_from(self, system: Smokescreen, profile: Profile) -> TradeoffChoice:
        """Choose a tradeoff from a profile under the held preferences.

        Args:
            system: The Smokescreen deployment.
            profile: A profile produced by the deployment.

        Returns:
            The chosen tradeoff.
        """
        return system.choose(profile, self.preferences)

    def deploy(
        self,
        system: Smokescreen,
        camera: Camera,
        query: AggregateQuery,
        profile: Profile,
    ) -> tuple[TradeoffChoice, Estimate]:
        """Full procedure: choose, install on the camera, run the query.

        Args:
            system: The Smokescreen deployment.
            camera: The camera to configure.
            query: The analytical query.
            profile: The profile to choose from.

        Returns:
            The chosen tradeoff and the degraded query's estimate.
        """
        choice = self.choose_from(system, profile)
        camera.apply_plan(choice.point.plan)
        estimate = system.estimate(query, choice.point.plan)
        return choice, estimate
