"""Shared-memory data plane for the persistent worker pool.

Profile sweeps fan out work units whose dominant pickle payload is the
corpus itself: every :class:`~repro.video.dataset.VideoDataset` carries
flat ground-truth arrays for the whole video, and shipping them through
``ProcessPoolExecutor``'s pipes once *per unit* is the bulk of the
parallelism tax BENCH_profile.json measures. This module publishes each
dataset **once per run** into a :class:`multiprocessing.shared_memory`
segment; work units then pickle down to a tiny
:class:`DatasetHandle` — ``(segment, fingerprint, per-array
offset/shape/dtype)`` — and workers attach the segment read-only,
rebuilding a zero-copy :class:`VideoDataset` over the shared buffer.

Contracts:

- **Bit-identity.** Attached datasets expose byte-for-byte the arrays the
  parent published (same buffers, read-only views), so worker results are
  identical to the serial path's; the SeedSequence determinism contract
  of :mod:`repro.system.executor` is untouched.
- **Ownership.** Only the publishing process unlinks segments. Workers
  (fork children) inherit the publication registry at fork time; every
  registry access first checks ``os.getpid()`` and drops inherited
  entries, so a child can never double-unlink its parent's segments.
- **Lifecycle.** ``release_all()`` runs on pool shutdown and via
  ``atexit``, so normal completion, worker crashes (the executor tears
  the broken pool down) and ``KeyboardInterrupt`` all leave ``/dev/shm``
  clean. Linux pools fork, so parent and children share one
  ``resource_tracker`` process: the parent's ``unlink`` clears the
  tracker entry and no spurious leak warnings are emitted at exit.

Disable with ``REPRO_SHM=0`` (or :func:`set_enabled`); the executor then
falls back to pickling datasets whole, which stays correct, just slower.
"""

from __future__ import annotations

import atexit
import logging
import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.system import telemetry
from repro.video.dataset import ObjectArrays, VideoDataset
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution

_LOG = telemetry.get_logger("system.shm")

#: Prefix of every segment this process creates; tests and the CI leak
#: check glob ``/dev/shm/repro_shm_*`` to assert nothing survives a run.
SEGMENT_PREFIX = "repro_shm"

#: Byte alignment of each array inside a segment.
_ALIGN = 64


@dataclass(frozen=True)
class ArraySpec:
    """Where one array lives inside a published segment.

    Attributes:
        offset: Byte offset of the array's first element.
        shape: Array shape.
        dtype: ``numpy`` dtype string, e.g. ``"float64"``.
    """

    offset: int
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class DatasetHandle:
    """A picklable stand-in for a published :class:`VideoDataset`.

    Everything a worker needs to rebuild the dataset zero-copy: the
    segment name, the trusted content fingerprint (workers skip
    re-hashing), scalar metadata, and per-array specs.

    Attributes:
        segment: Shared-memory segment name.
        fingerprint: The dataset's content fingerprint (cache identity).
        name: Corpus name.
        native_side: Side of the native :class:`Resolution`.
        frame_count: Number of frames.
        frame_rate: Frames per second.
        seed: Generator seed recorded on the dataset.
        objects: ``(class_name, (frame, size, difficulty,
            duplicate_latent))`` spec tuples, one per object class.
        clutter: Spec of the per-frame clutter array.
        nbytes: Total published bytes (diagnostics).
    """

    segment: str
    fingerprint: str
    name: str
    native_side: int
    frame_count: int
    frame_rate: float
    seed: int | None
    objects: tuple[tuple[str, tuple[ArraySpec, ArraySpec, ArraySpec, ArraySpec]], ...]
    clutter: ArraySpec
    nbytes: int


@dataclass
class _Publication:
    """One owned segment: the handle shipped to workers plus the memory."""

    handle: DatasetHandle
    memory: shared_memory.SharedMemory


# Publication registry (owner side) and attachment caches (worker side).
# ``_owner_pid`` guards both against fork inheritance: a forked child sees
# the parent's dicts but must treat them as foreign.
_publications: dict[str, _Publication] = {}
_attachments: dict[str, shared_memory.SharedMemory] = {}
_attached_datasets: dict[str, VideoDataset] = {}
_owner_pid: int | None = None
_sequence = 0
_override: bool | None = None
_atexit_installed = False


def _reset_if_forked() -> None:
    """Drop state inherited across a ``fork`` so children never act as
    owners of the parent's segments (or reuse its attachment cache)."""
    global _owner_pid, _sequence, _atexit_installed
    pid = os.getpid()
    if _owner_pid is None:
        _owner_pid = pid
        return
    if _owner_pid != pid:
        _publications.clear()
        _attachments.clear()
        _attached_datasets.clear()
        _owner_pid = pid
        _sequence = 0
        _atexit_installed = False


def enabled() -> bool:
    """Whether datasets are published through shared memory.

    ``REPRO_SHM=0`` in the environment or ``set_enabled(False)`` turns
    the data plane off; the executor then pickles datasets whole.
    """
    if _override is not None:
        return _override
    return os.environ.get("REPRO_SHM", "1") != "0"


def set_enabled(value: bool | None) -> None:
    """Override the environment switch (None restores it).

    Args:
        value: True/False forces the data plane on/off; None defers to
            the ``REPRO_SHM`` environment variable again.
    """
    global _override
    _override = value


def published_handle(fingerprint: str) -> DatasetHandle | None:
    """The handle of a published dataset, or None.

    Args:
        fingerprint: The dataset's content fingerprint.

    Returns:
        The handle if this process published the dataset (and shared
        memory is enabled), else None.
    """
    if not enabled():
        return None
    _reset_if_forked()
    publication = _publications.get(fingerprint)
    return publication.handle if publication is not None else None


def published_bytes() -> int:
    """Total bytes currently published by this process."""
    _reset_if_forked()
    return sum(p.handle.nbytes for p in _publications.values())


def _spec_of(array: np.ndarray, offset: int) -> ArraySpec:
    return ArraySpec(
        offset=offset, shape=tuple(array.shape), dtype=str(array.dtype)
    )


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def publish_dataset(dataset: VideoDataset) -> DatasetHandle | None:
    """Publish a dataset's arrays into one shared-memory segment.

    Idempotent per content fingerprint: re-publishing an already-shared
    corpus returns the existing handle without copying.

    Args:
        dataset: The corpus to share.

    Returns:
        The dataset's handle, or None when shared memory is disabled or
        the segment cannot be created (the caller falls back to pickle).
    """
    global _sequence, _atexit_installed
    if not enabled():
        return None
    _reset_if_forked()
    fingerprint = dataset.fingerprint
    existing = _publications.get(fingerprint)
    if existing is not None:
        return existing.handle

    arrays: list[np.ndarray] = []
    for object_class in ObjectClass:
        columns = dataset.objects_of(object_class)
        arrays.extend(
            (columns.frame, columns.size, columns.difficulty,
             columns.duplicate_latent)
        )
    arrays.append(dataset.clutter)

    offsets: list[int] = []
    cursor = 0
    for array in arrays:
        cursor = _aligned(cursor)
        offsets.append(cursor)
        cursor += int(array.nbytes)
    total = max(cursor, 1)

    _sequence += 1
    name = f"{SEGMENT_PREFIX}_{os.getpid()}_{_sequence}_{fingerprint[:8]}"
    try:
        memory = shared_memory.SharedMemory(name=name, create=True, size=total)
    except OSError as error:
        telemetry.count("shm.publish_failed")
        telemetry.log_event(
            _LOG, logging.WARNING, "shm.publish_failed",
            reason=type(error).__name__, error=str(error),
        )
        return None

    for array, offset in zip(arrays, offsets):
        flat = np.ascontiguousarray(array)
        target = np.ndarray(
            flat.shape, dtype=flat.dtype, buffer=memory.buf, offset=offset
        )
        target[...] = flat

    specs = iter(
        _spec_of(array, offset) for array, offset in zip(arrays, offsets)
    )
    object_specs = tuple(
        (object_class.name, (next(specs), next(specs), next(specs), next(specs)))
        for object_class in ObjectClass
    )
    clutter_spec = next(specs)

    handle = DatasetHandle(
        segment=name,
        fingerprint=fingerprint,
        name=dataset.name,
        native_side=dataset.native_resolution.side,
        frame_count=dataset.frame_count,
        frame_rate=dataset.frame_rate,
        seed=dataset.seed,
        objects=object_specs,
        clutter=clutter_spec,
        nbytes=total,
    )
    _publications[fingerprint] = _Publication(handle=handle, memory=memory)
    if not _atexit_installed:
        atexit.register(release_all)
        _atexit_installed = True
    telemetry.count("shm.published")
    telemetry.gauge("shm.published_bytes", float(published_bytes()))
    telemetry.log_event(
        _LOG, logging.DEBUG, "shm.publish",
        segment=name, dataset=dataset.name, bytes=total,
    )
    return handle


def _attach(handle: DatasetHandle) -> shared_memory.SharedMemory:
    """The shared memory behind a handle — the owned segment in the
    publisher, an attached (and cached) one everywhere else."""
    _reset_if_forked()
    publication = _publications.get(handle.fingerprint)
    if publication is not None:
        return publication.memory
    memory = _attachments.get(handle.segment)
    if memory is None:
        memory = shared_memory.SharedMemory(name=handle.segment)
        _attachments[handle.segment] = memory
    return memory


def ensure_tracker_shared() -> None:
    """Start this process's resource tracker before workers fork.

    Attaching a segment registers it with the attacher's tracker as if it
    owned it (pre-3.13 behaviour). When pool workers fork *after* the
    publisher's tracker is running they inherit its pipe, so those
    registrations dedupe against the publisher's own and the single
    ``unlink`` balances the books — no spurious "leaked shared_memory"
    warnings at exit. Workers forked before any tracker exists would each
    spawn a private one that believes it owns the attachment; the
    executor calls this before every pool spawn to rule that out.
    """
    resource_tracker.ensure_running()


def dataset_from_handle(handle: DatasetHandle) -> VideoDataset:
    """Rebuild a zero-copy, read-only dataset from a published handle.

    Worker-side entry point (it is the reconstructor
    ``VideoDataset.__reduce__`` emits for published corpora). Attached
    datasets are cached per fingerprint, so every unit in a worker shares
    one instance — and one frame-values memo — per corpus.

    Args:
        handle: A handle published by :func:`publish_dataset`.

    Returns:
        The reconstructed dataset, bit-identical to the published one.
    """
    _reset_if_forked()
    cached = _attached_datasets.get(handle.fingerprint)
    if cached is not None:
        return cached
    memory = _attach(handle)

    def view(spec: ArraySpec) -> np.ndarray:
        array = np.ndarray(
            spec.shape,
            dtype=np.dtype(spec.dtype),
            buffer=memory.buf,
            offset=spec.offset,
        )
        array.flags.writeable = False
        return array

    objects = {
        ObjectClass[class_name]: ObjectArrays(
            frame=view(frame),
            size=view(size),
            difficulty=view(difficulty),
            duplicate_latent=view(duplicate),
        )
        for class_name, (frame, size, difficulty, duplicate) in handle.objects
    }
    dataset = VideoDataset(
        name=handle.name,
        native_resolution=Resolution(handle.native_side),
        frame_count=handle.frame_count,
        objects=objects,
        clutter=view(handle.clutter),
        frame_rate=handle.frame_rate,
        seed=handle.seed,
        fingerprint=handle.fingerprint,
    )
    _attached_datasets[handle.fingerprint] = dataset
    return dataset


def release(fingerprint: str) -> None:
    """Unlink one published segment (owner side; no-op otherwise)."""
    _reset_if_forked()
    publication = _publications.pop(fingerprint, None)
    if publication is None:
        return
    try:
        publication.memory.close()
        publication.memory.unlink()
    except OSError:  # pragma: no cover - teardown is best effort
        pass


def release_all() -> None:
    """Unlink every segment this process published.

    Safe to call repeatedly and from ``atexit``; forked children resolve
    to a no-op because the registry is owner-guarded.
    """
    _reset_if_forked()
    for fingerprint in list(_publications):
        release(fingerprint)
