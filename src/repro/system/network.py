"""Transmission costs of degraded video (bandwidth and energy goals).

Two of the paper's motivating policy goals are system-level: reduced
bandwidth for constrained sensor networks and reduced energy during
shipment of video off-camera. This model prices a degradation setting in
bytes and joules so examples can show the quantitative side of a tradeoff
(e.g. "f=0.1 at 256x256 cuts transmission energy by 98%").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.interventions.plan import InterventionPlan
from repro.video.dataset import VideoDataset
from repro.video.geometry import Resolution


@dataclass(frozen=True)
class TransmissionModel:
    """Bytes/energy model of shipping frames off-camera.

    Encoded frame size is proportional to pixel count with an
    encoder-specific rate; extension interventions (compression) scale it
    by their quality factor.

    Attributes:
        bytes_per_pixel: Encoded bytes per pixel (defaults to ~0.15,
            a typical H.264 intra-frame rate at street-scene complexity).
        joules_per_megabyte: Radio energy per transmitted megabyte
            (defaults to 4 J/MB, a typical Wi-Fi figure).
    """

    bytes_per_pixel: float = 0.15
    joules_per_megabyte: float = 4.0

    def __post_init__(self) -> None:
        if self.bytes_per_pixel <= 0:
            raise ConfigurationError("bytes per pixel must be positive")
        if self.joules_per_megabyte <= 0:
            raise ConfigurationError("joules per megabyte must be positive")

    def frame_bytes(self, resolution: Resolution, quality: float = 1.0) -> float:
        """Encoded size of one frame at a resolution.

        Args:
            resolution: Transmission resolution.
            quality: Compression quality factor in ``(0, 1]``.

        Returns:
            Encoded bytes.
        """
        if not 0.0 < quality <= 1.0:
            raise ConfigurationError(f"quality must lie in (0, 1], got {quality}")
        return resolution.pixels * self.bytes_per_pixel * quality

    def plan_bytes(self, dataset: VideoDataset, plan: InterventionPlan) -> float:
        """Expected total bytes to transmit a corpus under a plan.

        Sampling keeps a fraction of frames; resolution shrinks each one;
        removal is ignored here (its frame share depends on the detectors,
        and it is a privacy knob rather than a bandwidth knob).

        Args:
            dataset: The corpus.
            plan: The degradation setting.

        Returns:
            Expected transmitted bytes.
        """
        resolution = plan.effective_resolution(dataset)
        frames = dataset.frame_count * plan.fraction
        return frames * self.frame_bytes(resolution, plan.quality)

    def plan_energy_joules(self, dataset: VideoDataset, plan: InterventionPlan) -> float:
        """Expected radio energy to transmit a corpus under a plan."""
        megabytes = self.plan_bytes(dataset, plan) / 1e6
        return megabytes * self.joules_per_megabyte

    def savings_ratio(self, dataset: VideoDataset, plan: InterventionPlan) -> float:
        """Fraction of transmission cost saved versus no degradation.

        Args:
            dataset: The corpus.
            plan: The degradation setting.

        Returns:
            A value in ``[0, 1)``: 0.98 means 98% saved.
        """
        baseline = self.plan_bytes(dataset, InterventionPlan())
        degraded = self.plan_bytes(dataset, plan)
        return 1.0 - degraded / baseline
