"""Model-invocation accounting and the profile-generation time model.

The paper's §5.3.1 argues profile generation is dominated by neural-network
processing time: ``O(N_model * T_model)`` where ``N_model`` counts model
invocations and ``T_model`` is the per-frame time (loading, transformation,
inference), while the estimation stage costs only tens of milliseconds per
setting. :class:`InvocationLedger` counts invocations exactly (respecting
the reuse strategy), and :class:`CostModel` prices them so the timing bench
can report the same quantities the paper does (6,084 invocations ≈ 3
minutes for its YOLOv4 workload, i.e. ~30 ms per frame).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


class InvocationLedger:
    """Counts model invocations per processing resolution.

    The profiler records only *newly* processed frames (nested samples are
    reused across fractions), so the ledger reflects the true cost of a
    sweep under the paper's §3.3.2 reuse strategy.
    """

    def __init__(self) -> None:
        self._per_resolution: dict[int, int] = {}

    def record(self, resolution_side: int, new_frames: int) -> None:
        """Add newly processed frames at a resolution.

        Args:
            resolution_side: The processing resolution's side length.
            new_frames: Number of frames processed for the first time at
                this resolution.
        """
        if new_frames < 0:
            raise ConfigurationError(
                f"new frame count must be non-negative, got {new_frames}"
            )
        current = self._per_resolution.get(resolution_side, 0)
        self._per_resolution[resolution_side] = current + new_frames

    @property
    def total(self) -> int:
        """Total model invocations across all resolutions."""
        return sum(self._per_resolution.values())

    def by_resolution(self) -> dict[int, int]:
        """Invocation counts keyed by resolution side (copy)."""
        return dict(self._per_resolution)

    def merge(self, other: "InvocationLedger") -> None:
        """Fold another ledger's counts into this one."""
        for side, count in other.by_resolution().items():
            self.record(side, count)


@dataclass(frozen=True)
class CostModel:
    """Analytic per-invocation cost of a detector.

    Inference time scales roughly with the pixel count at the processing
    resolution plus a fixed per-frame overhead (decode + resize), which
    matches the paper's observation that the model, not the estimator,
    dominates.

    Attributes:
        seconds_per_frame_at_native: Full-resolution per-frame time
            (the paper's YOLOv4 setup works out to ~30 ms/frame).
        native_side: The native resolution side the above is measured at.
        fixed_overhead_seconds: Per-frame loading/transform cost that does
            not shrink with resolution.
        estimation_seconds_per_setting: Cost of the error-bound estimation
            per degradation setting ("tens of milliseconds", §5.3.1).
    """

    seconds_per_frame_at_native: float = 0.030
    native_side: int = 608
    fixed_overhead_seconds: float = 0.004
    estimation_seconds_per_setting: float = 0.02

    def __post_init__(self) -> None:
        if self.seconds_per_frame_at_native <= 0:
            raise ConfigurationError("per-frame time must be positive")
        if self.native_side <= 0:
            raise ConfigurationError("native side must be positive")
        if self.fixed_overhead_seconds < 0 or self.estimation_seconds_per_setting < 0:
            raise ConfigurationError("overheads must be non-negative")

    def seconds_per_frame(self, resolution_side: int) -> float:
        """Per-frame model time at a processing resolution.

        Args:
            resolution_side: The resolution's side length.

        Returns:
            Seconds per frame: fixed overhead plus inference scaled by the
            pixel-count ratio.
        """
        if resolution_side <= 0:
            raise ConfigurationError("resolution side must be positive")
        inference = self.seconds_per_frame_at_native - self.fixed_overhead_seconds
        ratio = (resolution_side / self.native_side) ** 2
        return self.fixed_overhead_seconds + max(inference, 0.0) * ratio

    def model_seconds(self, ledger: InvocationLedger) -> float:
        """Total model-processing time of a ledger's invocations."""
        return sum(
            count * self.seconds_per_frame(side)
            for side, count in ledger.by_resolution().items()
        )

    def profile_seconds(self, ledger: InvocationLedger, settings: int) -> float:
        """Total profile-generation time: model plus estimation stages.

        Args:
            ledger: Invocations made during the sweep.
            settings: Number of degradation settings estimated.

        Returns:
            Total simulated seconds.
        """
        if settings < 0:
            raise ConfigurationError(f"settings must be non-negative, got {settings}")
        return self.model_seconds(ledger) + settings * self.estimation_seconds_per_setting
