"""Model-invocation accounting and the profile-generation time model.

The paper's §5.3.1 argues profile generation is dominated by neural-network
processing time: ``O(N_model * T_model)`` where ``N_model`` counts model
invocations and ``T_model`` is the per-frame time (loading, transformation,
inference), while the estimation stage costs only tens of milliseconds per
setting. :class:`InvocationLedger` counts invocations exactly (respecting
the reuse strategy), and :class:`CostModel` prices them so the timing bench
can report the same quantities the paper does (6,084 invocations ≈ 3
minutes for its YOLOv4 workload, i.e. ~30 ms per frame).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


class InvocationLedger:
    """Counts model invocations per processing resolution.

    The profiler records only *newly* processed frames (nested samples are
    reused across fractions), so the ledger reflects the true cost of a
    sweep under the paper's §3.3.2 reuse strategy.
    """

    def __init__(self) -> None:
        self._per_resolution: dict[int, int] = {}

    def record(self, resolution_side: int, new_frames: int) -> None:
        """Add newly processed frames at a resolution.

        Args:
            resolution_side: The processing resolution's side length.
            new_frames: Number of frames processed for the first time at
                this resolution.
        """
        if new_frames < 0:
            raise ConfigurationError(
                f"new frame count must be non-negative, got {new_frames}"
            )
        current = self._per_resolution.get(resolution_side, 0)
        self._per_resolution[resolution_side] = current + new_frames

    @property
    def total(self) -> int:
        """Total model invocations across all resolutions."""
        return sum(self._per_resolution.values())

    def by_resolution(self) -> dict[int, int]:
        """Invocation counts keyed by resolution side (copy)."""
        return dict(self._per_resolution)

    def merge(self, other: "InvocationLedger") -> None:
        """Fold another ledger's counts into this one."""
        for side, count in other.by_resolution().items():
            self.record(side, count)


@dataclass(frozen=True)
class CostModel:
    """Analytic per-invocation cost of a detector.

    Inference time scales roughly with the pixel count at the processing
    resolution plus a fixed per-frame overhead (decode + resize), which
    matches the paper's observation that the model, not the estimator,
    dominates.

    Attributes:
        seconds_per_frame_at_native: Full-resolution per-frame time
            (the paper's YOLOv4 setup works out to ~30 ms/frame).
        native_side: The native resolution side the above is measured at.
        fixed_overhead_seconds: Per-frame loading/transform cost that does
            not shrink with resolution.
        estimation_seconds_per_setting: Cost of the error-bound estimation
            per degradation setting ("tens of milliseconds", §5.3.1).
    """

    seconds_per_frame_at_native: float = 0.030
    native_side: int = 608
    fixed_overhead_seconds: float = 0.004
    estimation_seconds_per_setting: float = 0.02

    def __post_init__(self) -> None:
        if self.seconds_per_frame_at_native <= 0:
            raise ConfigurationError("per-frame time must be positive")
        if self.native_side <= 0:
            raise ConfigurationError("native side must be positive")
        if self.fixed_overhead_seconds < 0 or self.estimation_seconds_per_setting < 0:
            raise ConfigurationError("overheads must be non-negative")

    def seconds_per_frame(self, resolution_side: int) -> float:
        """Per-frame model time at a processing resolution.

        Args:
            resolution_side: The resolution's side length.

        Returns:
            Seconds per frame: fixed overhead plus inference scaled by the
            pixel-count ratio.
        """
        if resolution_side <= 0:
            raise ConfigurationError("resolution side must be positive")
        inference = self.seconds_per_frame_at_native - self.fixed_overhead_seconds
        ratio = (resolution_side / self.native_side) ** 2
        return self.fixed_overhead_seconds + max(inference, 0.0) * ratio

    def model_seconds(self, ledger: InvocationLedger) -> float:
        """Total model-processing time of a ledger's invocations."""
        return sum(
            count * self.seconds_per_frame(side)
            for side, count in ledger.by_resolution().items()
        )

    def profile_seconds(self, ledger: InvocationLedger, settings: int) -> float:
        """Total profile-generation time: model plus estimation stages.

        Args:
            ledger: Invocations made during the sweep.
            settings: Number of degradation settings estimated.

        Returns:
            Total simulated seconds.
        """
        if settings < 0:
            raise ConfigurationError(f"settings must be non-negative, got {settings}")
        return self.model_seconds(ledger) + settings * self.estimation_seconds_per_setting


@dataclass(frozen=True)
class DispatchCostModel:
    """Measured dispatch economics of the persistent worker pool.

    The executor calibrates one instance per pool lifetime (spawn time
    from pool construction, per-task overhead from a no-op round trip on
    the warm pool) and costs every ``map`` call against it: serial wins
    whenever its predicted wall time beats the pool's, and chunk sizes
    are chosen so per-chunk dispatch overhead stays a bounded fraction of
    per-chunk work. This replaces the old fixed ``AUTO_MIN_UNITS`` /
    ``units // (workers * 4)`` heuristics with the measured quantities
    BENCH_profile.json records.

    Attributes:
        spawn_seconds: One-time cost of spawning and calibrating the pool
            (paid only when no matching pool is alive).
        dispatch_seconds_per_task: Steady-state overhead of shipping one
            pool task (pickle both ways plus queue round trip).
        overhead_fraction: Ceiling on dispatch overhead as a fraction of
            a chunk's useful work; chunks grow until they clear it.
        min_chunks_per_worker: Lower bound on chunks per worker (load
            balancing); chunk size is capped so at least this many tasks
            exist per worker when the unit count allows.
    """

    spawn_seconds: float = 0.15
    dispatch_seconds_per_task: float = 0.001
    overhead_fraction: float = 0.1
    min_chunks_per_worker: int = 2

    def __post_init__(self) -> None:
        if self.spawn_seconds < 0 or self.dispatch_seconds_per_task < 0:
            raise ConfigurationError("dispatch costs must be non-negative")
        if not 0 < self.overhead_fraction <= 1:
            raise ConfigurationError(
                f"overhead fraction must lie in (0, 1], got {self.overhead_fraction}"
            )
        if self.min_chunks_per_worker < 1:
            raise ConfigurationError("min chunks per worker must be >= 1")

    def chunk_size(self, units: int, unit_seconds: float, workers: int) -> int:
        """Units per pool task for a workload of measured per-unit cost.

        Args:
            units: Work units to dispatch.
            unit_seconds: Measured seconds per unit (>= 0).
            workers: Pool worker count.

        Returns:
            A chunk size in ``[1, ceil(units / workers)]``: large enough
            that per-chunk dispatch overhead is at most
            :attr:`overhead_fraction` of the chunk's work, small enough
            to keep :attr:`min_chunks_per_worker` tasks per worker.
        """
        if units <= 0:
            return 1
        workers = max(1, workers)
        balance_cap = max(
            1, math.ceil(units / (workers * self.min_chunks_per_worker))
        )
        if unit_seconds <= 0 or self.dispatch_seconds_per_task <= 0:
            return balance_cap
        amortized = math.ceil(
            self.dispatch_seconds_per_task
            / (self.overhead_fraction * unit_seconds)
        )
        return max(1, min(balance_cap, amortized))

    def serial_seconds(self, units: int, unit_seconds: float) -> float:
        """Predicted wall time of running ``units`` in-process."""
        return max(units, 0) * max(unit_seconds, 0.0)

    def parallel_seconds(
        self,
        units: int,
        unit_seconds: float,
        workers: int,
        pool_warm: bool,
    ) -> float:
        """Predicted wall time of dispatching ``units`` through the pool.

        Args:
            units: Work units to dispatch.
            unit_seconds: Measured seconds per unit.
            workers: Pool worker count.
            pool_warm: Whether a matching pool is already alive (its
                spawn cost is sunk).

        Returns:
            Spawn (when cold) plus per-task dispatch plus the critical
            path of evenly divided work.
        """
        if units <= 0:
            return 0.0
        workers = max(1, workers)
        chunk = self.chunk_size(units, unit_seconds, workers)
        tasks = math.ceil(units / chunk)
        spawn = 0.0 if pool_warm else self.spawn_seconds
        critical_path = math.ceil(units / workers) * max(unit_seconds, 0.0)
        return spawn + tasks * self.dispatch_seconds_per_task + critical_path

    def parallel_pays(
        self,
        units: int,
        unit_seconds: float,
        workers: int,
        pool_warm: bool,
    ) -> bool:
        """Whether the pool path is predicted to beat the serial path."""
        if workers <= 1 or units <= 1:
            return False
        return self.parallel_seconds(
            units, unit_seconds, workers, pool_warm
        ) < self.serial_seconds(units, unit_seconds)
