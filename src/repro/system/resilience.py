"""Retry, circuit-breaking, and health accounting for fleet execution.

Three cooperating pieces the resilient fleet executor threads together:

- :class:`RetryPolicy` — exponential backoff with seeded jitter. Delays
  are *simulated* seconds on the fleet's logical clock (reproducibility;
  the suite never sleeps).
- :class:`CircuitBreaker` — per-camera failure isolation: after
  ``failure_threshold`` consecutive failures the breaker opens and the
  camera is skipped outright (no retry budget wasted on a dead camera);
  after ``cooldown`` simulated seconds it half-opens and admits a single
  probe, closing again only when the probe succeeds.
- :class:`HealthLedger` — the per-camera operational record a
  :class:`~repro.system.fleet.FleetReport` is built from: attempts,
  retries, frames dropped/corrupted, simulated latency, last error.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.system import telemetry


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for transient transmission faults.

    Attempt ``k`` (zero-based) that fails waits
    ``min(base_delay * multiplier**k, max_delay) * (1 + jitter * u)``
    simulated seconds before the next attempt, with ``u`` uniform on
    ``[0, 1)`` from the caller's seeded RNG — decorrelating retries
    across cameras without sacrificing reproducibility.

    Attributes:
        max_attempts: Total attempts per camera per query (>= 1).
        base_delay: First backoff delay, simulated seconds.
        multiplier: Backoff growth factor per attempt.
        max_delay: Backoff ceiling before jitter.
        jitter: Jitter amplitude as a fraction of the raw delay.
    """

    max_attempts: int = 3
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 10.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max attempts must be at least 1, got {self.max_attempts}"
            )
        if self.base_delay < 0.0 or self.max_delay < 0.0:
            raise ConfigurationError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"backoff multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must lie in [0, 1], got {self.jitter}"
            )

    def backoff_delay(self, attempt: int, rng: np.random.Generator) -> float:
        """The simulated wait after a failed attempt.

        Args:
            attempt: Zero-based index of the attempt that just failed.
            rng: Seeded randomness for the jitter term.

        Returns:
            Simulated seconds to wait before the next attempt.
        """
        if attempt < 0:
            raise ConfigurationError(f"attempt index must be >= 0, got {attempt}")
        raw = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        return raw * (1.0 + self.jitter * float(rng.random()))


class BreakerState(enum.Enum):
    """The classic three circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-camera failure isolation on the fleet's simulated clock."""

    def __init__(
        self, failure_threshold: int = 3, cooldown: float = 30.0
    ) -> None:
        """Create a closed breaker.

        Args:
            failure_threshold: Consecutive failures that open the breaker.
            cooldown: Simulated seconds an open breaker waits before
                half-opening for a probe.
        """
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure threshold must be at least 1, got {failure_threshold}"
            )
        if cooldown < 0.0:
            raise ConfigurationError(
                f"cooldown must be non-negative, got {cooldown}"
            )
        self._threshold = failure_threshold
        self._cooldown = cooldown
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0

    @property
    def consecutive_failures(self) -> int:
        """Current run of consecutive failures."""
        return self._consecutive_failures

    def state(self, now: float) -> BreakerState:
        """The breaker state at a simulated time (open may half-open)."""
        if (
            self._state is BreakerState.OPEN
            and now - self._opened_at >= self._cooldown
        ):
            return BreakerState.HALF_OPEN
        return self._state

    def allow(self, now: float) -> bool:
        """Whether an attempt may proceed at a simulated time.

        A half-open breaker admits the probe (and transitions so a
        subsequent failure re-opens with a fresh cooldown).
        """
        state = self.state(now)
        if state is BreakerState.HALF_OPEN:
            if self._state is not BreakerState.HALF_OPEN:
                telemetry.count("breaker.half_open")
            self._state = BreakerState.HALF_OPEN
        return state is not BreakerState.OPEN

    def record_success(self, now: float) -> None:
        """A successful attempt closes the breaker and clears the run."""
        if self._state is not BreakerState.CLOSED:
            telemetry.count("breaker.close")
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        """A failed attempt; opens the breaker at the threshold.

        A failure while half-open re-opens immediately (the probe failed),
        restarting the cooldown.
        """
        self._consecutive_failures += 1
        if (
            self._state is BreakerState.HALF_OPEN
            or self._consecutive_failures >= self._threshold
        ):
            if self._state is not BreakerState.OPEN:
                telemetry.count("breaker.open")
            self._state = BreakerState.OPEN
            self._opened_at = now


@dataclass
class CameraHealth:
    """One camera's operational record across a processor's lifetime.

    Attributes:
        attempts: Transmit attempts made.
        successes: Attempts that delivered a sample.
        failures: Attempts that raised a transmission fault.
        retries: Backoff-then-retry cycles taken.
        frames_dropped: Frames lost in flight, cumulative.
        frames_corrupted: Frames discarded by integrity checks, cumulative.
        latency: Simulated seconds spent transmitting and backing off.
        skipped_queries: Queries skipped because the breaker was open.
        last_error: Message of the most recent transmission fault.
    """

    attempts: int = 0
    successes: int = 0
    failures: int = 0
    retries: int = 0
    frames_dropped: int = 0
    frames_corrupted: int = 0
    latency: float = 0.0
    skipped_queries: int = 0
    last_error: str | None = None


@dataclass
class HealthLedger:
    """Per-camera :class:`CameraHealth` records, keyed by camera name."""

    records: dict[str, CameraHealth] = field(default_factory=dict)

    def health(self, name: str) -> CameraHealth:
        """The (auto-created) record for one camera."""
        return self.records.setdefault(name, CameraHealth())

    def summary(self) -> dict[str, CameraHealth]:
        """A snapshot copy of every record."""
        return dict(self.records)
