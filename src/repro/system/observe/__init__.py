"""Telemetry export and persistence: the layer above the in-memory registry.

:mod:`repro.system.telemetry` collects metrics and spans; this package
makes them *outlive the process* and plug into standard tooling:

- :mod:`~repro.system.observe.trace` — render a snapshot's span forest as
  a Chrome trace-event JSON timeline loadable in Perfetto or
  ``chrome://tracing``.
- :mod:`~repro.system.observe.prometheus` — render counters, gauges and
  histograms (with bucket lines) in the Prometheus text exposition format.
- :mod:`~repro.system.observe.ledger` — an append-only, schema-versioned
  JSONL run ledger every CLI invocation records into, plus the
  active-run annotation API library layers write through.
- :mod:`~repro.system.observe.gate` — compare two ledger records under
  configurable thresholds; the ``repro runs check`` CI gate.
- :mod:`~repro.system.observe.tracing` — distributed trace-context
  propagation (serve → batcher → pool workers), the always-on bounded
  trace ring behind ``/traces`` and ``repro trace``, and the crash
  flight recorder.
- :mod:`~repro.system.observe.aggregate` — hierarchical camera → shard
  → fleet telemetry rollups recorded as ``facts.fleet.telemetry``.

Everything here is write-only with respect to estimation: exporters and
the ledger consume snapshots after the fact, so profile series stay
bit-identical whether or not a run is observed.
"""

from __future__ import annotations

from repro.system.observe.aggregate import CameraStats, TelemetryAggregator
from repro.system.observe.gate import (
    GateResult,
    GateThresholds,
    GateViolation,
    check_run,
    diff_runs,
)
from repro.system.observe.ledger import (
    SCHEMA_VERSION,
    ActiveRun,
    active_run,
    annotate,
    append_record,
    begin_run,
    config_fingerprint,
    finish_run,
    latest_run,
    new_run_id,
    read_runs,
    record_event,
)
from repro.system.observe.prometheus import (
    export_prometheus,
    labeled_name,
    prometheus_exposition,
)
from repro.system.observe.trace import (
    export_chrome_trace,
    trace_depth,
    trace_events,
)
from repro.system.observe.tracing import (
    SpanEvent,
    TraceContext,
    TraceRing,
    dump_flight_record,
    ingest_snapshot_spans,
)

__all__ = [
    "ActiveRun",
    "CameraStats",
    "SpanEvent",
    "TelemetryAggregator",
    "TraceContext",
    "TraceRing",
    "GateResult",
    "GateThresholds",
    "GateViolation",
    "SCHEMA_VERSION",
    "active_run",
    "annotate",
    "append_record",
    "begin_run",
    "check_run",
    "config_fingerprint",
    "diff_runs",
    "dump_flight_record",
    "export_chrome_trace",
    "export_prometheus",
    "finish_run",
    "ingest_snapshot_spans",
    "labeled_name",
    "latest_run",
    "new_run_id",
    "prometheus_exposition",
    "read_runs",
    "record_event",
    "trace_depth",
    "trace_events",
]
