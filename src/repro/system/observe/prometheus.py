"""Prometheus text-exposition exporter for telemetry snapshots.

Renders a :class:`~repro.system.telemetry.MetricsSnapshot` in the
Prometheus text format (version 0.0.4): counters as ``*_total``
monotonic families, gauges as point-in-time families, and histograms as
full ``_bucket``/``_sum``/``_count`` families with **cumulative** bucket
lines over the fixed layout in
:data:`~repro.system.telemetry.HISTOGRAM_BUCKET_BOUNDS` — not just
min/max summaries, so quantiles can be computed server-side with
``histogram_quantile``.

The exposition is a plain string; write it to a file for the node
exporter's textfile collector, or serve it at ``/metrics`` with any HTTP
server for a scrape target (examples in ``docs/SUBSTRATE.md``).
"""

from __future__ import annotations

import math
import os
import re
import tempfile
from pathlib import Path

from repro.system.telemetry import (
    HISTOGRAM_BUCKET_BOUNDS,
    HistogramStat,
    MetricsSnapshot,
)

_NAME_PREFIX = "repro_"
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(dotted: str, suffix: str = "") -> str:
    """A dotted telemetry name as a valid Prometheus metric name.

    ``cache.hit`` becomes ``repro_cache_hit`` (plus an optional suffix
    such as ``_total``); any character outside ``[a-zA-Z0-9_:]`` maps to
    an underscore.
    """
    return _NAME_PREFIX + _INVALID_CHARS.sub("_", dotted) + suffix


def _fmt(value: float) -> str:
    """A sample value in exposition syntax (integers without the dot)."""
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
    return repr(float(value))


def _histogram_lines(dotted: str, stat: HistogramStat) -> list[str]:
    """One histogram family: cumulative buckets, then sum and count."""
    name = metric_name(dotted)
    lines = [
        f"# HELP {name} Histogram of {dotted} (repro telemetry).",
        f"# TYPE {name} histogram",
    ]
    cumulative = 0
    buckets = stat.bucket_counts or (0,) * len(HISTOGRAM_BUCKET_BOUNDS)
    for bound, bucket in zip(HISTOGRAM_BUCKET_BOUNDS, buckets):
        cumulative += bucket
        lines.append(f'{name}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {stat.count}')
    lines.append(f"{name}_sum {_fmt(stat.total)}")
    lines.append(f"{name}_count {stat.count}")
    return lines


def prometheus_exposition(snapshot: MetricsSnapshot | None) -> str:
    """The snapshot in the Prometheus text exposition format.

    Args:
        snapshot: The telemetry snapshot (None yields an empty exposition).

    Returns:
        The exposition text, newline-terminated.
    """
    if snapshot is None:
        return "# repro: no telemetry collected\n"
    lines: list[str] = []
    for dotted, value in sorted(snapshot.counters.items()):
        name = metric_name(dotted, "_total")
        lines.append(f"# HELP {name} Counter {dotted} (repro telemetry).")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_fmt(value)}")
    for dotted, value in sorted(snapshot.gauges.items()):
        name = metric_name(dotted)
        lines.append(f"# HELP {name} Gauge {dotted} (repro telemetry).")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(value)}")
    for dotted, stat in sorted(snapshot.histograms.items()):
        lines.extend(_histogram_lines(dotted, stat))
    return "\n".join(lines) + "\n"


def export_prometheus(
    snapshot: MetricsSnapshot | None, path: str | Path
) -> str:
    """Write the exposition to a file atomically (tmp + rename).

    Args:
        snapshot: The telemetry snapshot.
        path: Destination path (conventionally ``*.prom``).

    Returns:
        The exposition text written.
    """
    text = prometheus_exposition(snapshot)
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{destination.name}.", suffix=".tmp", dir=destination.parent
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, destination)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return text
