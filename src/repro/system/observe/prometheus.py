"""Prometheus text-exposition exporter for telemetry snapshots.

Renders a :class:`~repro.system.telemetry.MetricsSnapshot` in the
Prometheus text format (version 0.0.4): counters as ``*_total``
monotonic families, gauges as point-in-time families, and histograms as
full ``_bucket``/``_sum``/``_count`` families with **cumulative** bucket
lines over the fixed layout in
:data:`~repro.system.telemetry.HISTOGRAM_BUCKET_BOUNDS` — not just
min/max summaries, so quantiles can be computed server-side with
``histogram_quantile``.

Labels ride *inside* the dotted telemetry name: record a sample under
``serve.request_seconds{endpoint=estimate,tenant=alice}`` (use
:func:`labeled_name` to build such names) and the exporter groups every
labelled variant into one family, emitting ``HELP``/``TYPE`` once and a
labelled sample line per variant with values escaped per the exposition
spec. Names without a ``{...}`` suffix render exactly as before, so the
labelling layer is invisible until used.

The exposition is a plain string; write it to a file for the node
exporter's textfile collector, or serve it at ``/metrics`` with any HTTP
server for a scrape target (examples in ``docs/SUBSTRATE.md``).
"""

from __future__ import annotations

import math
import os
import re
import tempfile
from pathlib import Path

from repro.system.telemetry import (
    HISTOGRAM_BUCKET_BOUNDS,
    HistogramStat,
    MetricsSnapshot,
)

_NAME_PREFIX = "repro_"
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_LABEL_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(dotted: str, suffix: str = "") -> str:
    """A dotted telemetry name as a valid Prometheus metric name.

    ``cache.hit`` becomes ``repro_cache_hit`` (plus an optional suffix
    such as ``_total``); any character outside ``[a-zA-Z0-9_:]`` maps to
    an underscore.
    """
    return _NAME_PREFIX + _INVALID_CHARS.sub("_", dotted) + suffix


def labeled_name(dotted: str, **labels: object) -> str:
    """A dotted telemetry name carrying label pairs for the exporter.

    ``labeled_name("serve.request_seconds", endpoint="estimate")`` returns
    ``serve.request_seconds{endpoint=estimate}`` — a plain string usable
    with :func:`repro.system.telemetry.observe` and friends, which the
    exposition groups into the ``repro_serve_request_seconds`` family with
    an ``endpoint="estimate"`` label. Keys are sorted so the same label
    set always produces the same metric key. Without labels the dotted
    name passes through unchanged.
    """
    if not labels:
        return dotted
    inner = ",".join(
        f"{key}={value}" for key, value in sorted(labels.items())
    )
    return f"{dotted}{{{inner}}}"


def split_labels(dotted: str) -> tuple[str, dict[str, str]]:
    """Split a telemetry name into its base name and label pairs.

    The inverse of :func:`labeled_name`: a trailing ``{k=v,...}`` suffix
    becomes the label dict; anything else (including a malformed suffix)
    is returned as an unlabelled base name.
    """
    if not dotted.endswith("}"):
        return dotted, {}
    brace = dotted.find("{")
    if brace <= 0:
        return dotted, {}
    labels: dict[str, str] = {}
    body = dotted[brace + 1 : -1]
    for pair in body.split(","):
        key, sep, value = pair.partition("=")
        if not sep or not key:
            return dotted, {}
        labels[key] = value
    return dotted[:brace], labels


def _escape_label_value(value: str) -> str:
    """A label value escaped per the exposition format spec."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: dict[str, str], extra: str = "") -> str:
    """The ``{k="v",...}`` block for a sample line ('' when empty)."""
    parts = [
        f'{_INVALID_LABEL_CHARS.sub("_", key)}="{_escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _fmt(value: float) -> str:
    """A sample value in exposition syntax (integers without the dot)."""
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
    return repr(float(value))


def _families(
    mapping: dict[str, object],
) -> list[tuple[str, list[tuple[dict[str, str], object]]]]:
    """Metrics grouped into (base name, [(labels, value), ...]) families.

    Families sort by base name; within a family, unlabelled samples come
    first, then labelled ones in sorted label order.
    """
    grouped: dict[str, list[tuple[dict[str, str], object]]] = {}
    for dotted, value in mapping.items():
        base, labels = split_labels(dotted)
        grouped.setdefault(base, []).append((labels, value))
    return [
        (
            base,
            sorted(grouped[base], key=lambda item: sorted(item[0].items())),
        )
        for base in sorted(grouped)
    ]


def _histogram_lines(
    dotted: str, variants: list[tuple[dict[str, str], HistogramStat]]
) -> list[str]:
    """One histogram family: cumulative buckets, then sum and count."""
    name = metric_name(dotted)
    lines = [
        f"# HELP {name} Histogram of {dotted} (repro telemetry).",
        f"# TYPE {name} histogram",
    ]
    for labels, stat in variants:
        cumulative = 0
        buckets = stat.bucket_counts or (0,) * len(HISTOGRAM_BUCKET_BOUNDS)
        for bound, bucket in zip(HISTOGRAM_BUCKET_BOUNDS, buckets):
            cumulative += bucket
            block = _render_labels(labels, extra=f'le="{_fmt(bound)}"')
            lines.append(f"{name}_bucket{block} {cumulative}")
        block = _render_labels(labels, extra='le="+Inf"')
        lines.append(f"{name}_bucket{block} {stat.count}")
        block = _render_labels(labels)
        lines.append(f"{name}_sum{block} {_fmt(stat.total)}")
        lines.append(f"{name}_count{block} {stat.count}")
    return lines


def prometheus_exposition(snapshot: MetricsSnapshot | None) -> str:
    """The snapshot in the Prometheus text exposition format.

    Args:
        snapshot: The telemetry snapshot (None yields an empty exposition).

    Returns:
        The exposition text, newline-terminated.
    """
    if snapshot is None:
        return "# repro: no telemetry collected\n"
    lines: list[str] = []
    for base, variants in _families(snapshot.counters):
        name = metric_name(base, "_total")
        lines.append(f"# HELP {name} Counter {base} (repro telemetry).")
        lines.append(f"# TYPE {name} counter")
        for labels, value in variants:
            lines.append(f"{name}{_render_labels(labels)} {_fmt(value)}")
    for base, variants in _families(snapshot.gauges):
        name = metric_name(base)
        lines.append(f"# HELP {name} Gauge {base} (repro telemetry).")
        lines.append(f"# TYPE {name} gauge")
        for labels, value in variants:
            lines.append(f"{name}{_render_labels(labels)} {_fmt(value)}")
    for base, variants in _families(snapshot.histograms):
        lines.extend(_histogram_lines(base, variants))
    return "\n".join(lines) + "\n"


def export_prometheus(
    snapshot: MetricsSnapshot | None, path: str | Path
) -> str:
    """Write the exposition to a file atomically (tmp + rename).

    Args:
        snapshot: The telemetry snapshot.
        path: Destination path (conventionally ``*.prom``).

    Returns:
        The exposition text written.
    """
    text = prometheus_exposition(snapshot)
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{destination.name}.", suffix=".tmp", dir=destination.parent
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, destination)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return text
