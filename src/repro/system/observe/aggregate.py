"""Hierarchical fleet telemetry aggregation: camera → shard → fleet.

Per-camera evidence (latency, frames, sentinel verdicts, cache traffic)
is the raw material for fleet-scale questions — which cameras are
slowest, whether bound violations concentrate in one shard or spread
uniformly, how dispersed cache locality is. :class:`TelemetryAggregator`
merges per-camera observations into a JSON-ready rollup recorded as
``facts.fleet.telemetry`` by the fleet processor and rendered by
``repro runs show``, and is the substrate ROADMAP item 4 (similarity-
sharded profile transfer) needs for drift re-profiling decisions.

Pure arithmetic over plain numbers — no telemetry registry, no numpy —
so it is safe to call from any layer, including paths where telemetry
is disabled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["CameraStats", "TelemetryAggregator"]

#: Default cameras-per-shard when no explicit shard is assigned.
DEFAULT_SHARD_SIZE = 8


@dataclass
class CameraStats:
    """One camera's aggregated observations."""

    name: str
    shard: str
    latency: float = 0.0
    frames: int = 0
    status: str = "ok"
    violation: bool = False
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def cache_hit_ratio(self) -> float | None:
        consulted = self.cache_hits + self.cache_misses
        if consulted <= 0:
            return None
        return self.cache_hits / consulted

    def to_dict(self) -> dict:
        ratio = self.cache_hit_ratio
        return {
            "name": self.name,
            "shard": self.shard,
            "latency_s": round(self.latency, 6),
            "frames": int(self.frames),
            "status": self.status,
            "violation": bool(self.violation),
            "cache_hit_ratio": (
                round(ratio, 6) if ratio is not None else None
            ),
        }


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _stdev(values: list[float]) -> float:
    if len(values) < 2:
        return 0.0
    mu = _mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


@dataclass
class TelemetryAggregator:
    """Merge per-camera telemetry into camera→shard→fleet rollups.

    Cameras are added one at a time (typically while the fleet processor
    walks its reports); :meth:`rollup` then computes the hierarchy:

    - per-shard: camera count, frames, mean/max latency, violations,
      mean cache-hit ratio;
    - fleet: totals, top-k slowest cameras, **violation concentration**
      (the worst shard's share of all violations — 1.0 means every
      violation localizes to one shard, ``1/num_shards`` means uniform
      spread) and **cache-hit dispersion** (population standard
      deviation of per-camera hit ratios — high dispersion flags uneven
      cache locality across the fleet).
    """

    shard_size: int = DEFAULT_SHARD_SIZE
    _cameras: list[CameraStats] = field(default_factory=list)

    def add_camera(
        self,
        name: str,
        *,
        latency: float = 0.0,
        frames: int = 0,
        status: str = "ok",
        violation: bool = False,
        cache_hits: int = 0,
        cache_misses: int = 0,
        shard: str | None = None,
    ) -> CameraStats:
        """Record one camera's observations.

        Args:
            name: Camera identifier.
            latency: End-to-end camera latency in seconds.
            frames: Frames delivered by the camera.
            status: Report status string (``"ok"``, ``"degraded"``, ...).
            violation: Whether the sentinel flagged this camera.
            cache_hits: Detector-cache hits attributed to the camera.
            cache_misses: Detector-cache misses attributed to the camera.
            shard: Explicit shard assignment; defaults to fixed-size
                blocks in insertion order (``shard-00``, ``shard-01``, …).

        Returns:
            The recorded :class:`CameraStats`.
        """
        if shard is None:
            shard = f"shard-{len(self._cameras) // max(self.shard_size, 1):02d}"
        stats = CameraStats(
            name=str(name),
            shard=str(shard),
            latency=float(latency),
            frames=int(frames),
            status=str(status),
            violation=bool(violation),
            cache_hits=int(cache_hits),
            cache_misses=int(cache_misses),
        )
        self._cameras.append(stats)
        return stats

    def __len__(self) -> int:
        return len(self._cameras)

    def rollup(self, top_k: int = 5) -> dict:
        """The camera→shard→fleet hierarchy as a JSON-ready dict."""
        shards: dict[str, list[CameraStats]] = {}
        for camera in self._cameras:
            shards.setdefault(camera.shard, []).append(camera)

        shard_blocks = {}
        for shard_name in sorted(shards):
            members = shards[shard_name]
            latencies = [c.latency for c in members]
            ratios = [
                c.cache_hit_ratio
                for c in members
                if c.cache_hit_ratio is not None
            ]
            shard_blocks[shard_name] = {
                "cameras": len(members),
                "frames": sum(c.frames for c in members),
                "mean_latency_s": round(_mean(latencies), 6),
                "max_latency_s": round(max(latencies), 6) if latencies else 0.0,
                "violations": sum(1 for c in members if c.violation),
                "degraded": sum(
                    1 for c in members if c.status not in ("ok", "cache")
                ),
                "mean_cache_hit_ratio": (
                    round(_mean(ratios), 6) if ratios else None
                ),
            }

        total_violations = sum(
            block["violations"] for block in shard_blocks.values()
        )
        if total_violations > 0:
            concentration = (
                max(block["violations"] for block in shard_blocks.values())
                / total_violations
            )
        else:
            concentration = 0.0

        all_ratios = [
            c.cache_hit_ratio
            for c in self._cameras
            if c.cache_hit_ratio is not None
        ]
        latencies = [c.latency for c in self._cameras]
        slowest = sorted(
            self._cameras, key=lambda c: c.latency, reverse=True
        )[: max(int(top_k), 0)]

        return {
            "fleet": {
                "cameras": len(self._cameras),
                "shards": len(shard_blocks),
                "total_frames": sum(c.frames for c in self._cameras),
                "mean_latency_s": round(_mean(latencies), 6),
                "max_latency_s": (
                    round(max(latencies), 6) if latencies else 0.0
                ),
                "violations": total_violations,
                "violation_concentration": round(concentration, 6),
                "cache_hit_dispersion": round(_stdev(all_ratios), 6),
                "top_slowest": [c.to_dict() for c in slowest],
            },
            "shards": shard_blocks,
        }
