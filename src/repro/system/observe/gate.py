"""Perf-regression gate over run-ledger records.

``repro runs check`` compares the latest ledger record against a pinned
baseline record under configurable thresholds and exits non-zero on any
violation, so CI catches cost regressions — wall-time blowups, extra
model invocations, cache hit-rate collapses, bound-width inflation —
the moment they land rather than releases later.

Threshold philosophy: the profiler is deterministic under a pinned seed,
so invocation counts and bound widths get *tight* ratios (1.0 and ~1.0);
wall time depends on the machine, so its default ratio is generous and
CI overrides it per-runner class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

#: Metrics ``diff_runs`` surfaces, in display order: (label, path into
#: the record).
_DIFF_FIELDS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("wall_seconds", ("wall_seconds",)),
    ("model_invocations", ("metrics", "model_invocations")),
    ("cache_hit_ratio", ("metrics", "cache_hit_ratio")),
    ("cache_hits", ("metrics", "cache_hits")),
    ("cache_misses", ("metrics", "cache_misses")),
    ("trials_priced", ("metrics", "trials_priced")),
    ("executor_fallbacks", ("metrics", "executor_fallbacks")),
    ("executor_units", ("facts", "executor", "units")),
    ("executor_workers", ("facts", "executor", "workers")),
    ("executor_chunk_size", ("facts", "executor", "chunk_size")),
    ("executor_pool_generation", ("facts", "executor", "pool_generation")),
    ("executor_spawn_seconds", ("facts", "executor", "spawn_seconds")),
    (
        "executor_dispatch_seconds_per_task",
        ("facts", "executor", "dispatch_seconds_per_task"),
    ),
    ("max_bound_width", ("bounds", "max_width")),
    ("mean_bound_width", ("bounds", "mean_width")),
    ("sentinel_recall", ("facts", "sentinel", "recall")),
    ("sentinel_fpr", ("facts", "sentinel", "fpr")),
    ("sentinel_localization", ("facts", "sentinel", "localization")),
    ("serve_p50_warm_seconds", ("facts", "serve", "p50_warm_seconds")),
    ("serve_p99_warm_seconds", ("facts", "serve", "p99_warm_seconds")),
    ("serve_cold_cli_seconds", ("facts", "serve", "cold_cli_seconds")),
    ("serve_speedup", ("facts", "serve", "speedup_cold_over_warm")),
    ("serve_coalescing_ratio", ("facts", "serve", "coalescing_ratio")),
    ("serve_requests", ("facts", "serve", "requests")),
    ("serve_rejected", ("facts", "serve", "rejected")),
    (
        "serve_batched_kernel_calls",
        ("facts", "serve", "batched_kernel_calls"),
    ),
    ("stream_frames_per_sec", ("facts", "stream", "frames_per_sec")),
    ("stream_windows", ("facts", "stream", "windows")),
    ("stream_violations", ("facts", "stream", "violations")),
    ("stream_repairs", ("facts", "stream", "repairs")),
    ("stream_first_breach_count", ("facts", "stream", "first_breach_count")),
    ("fleet_cameras", ("facts", "fleet", "telemetry", "fleet", "cameras")),
    (
        "fleet_violations",
        ("facts", "fleet", "telemetry", "fleet", "violations"),
    ),
    (
        "fleet_violation_concentration",
        ("facts", "fleet", "telemetry", "fleet", "violation_concentration"),
    ),
)


def _lookup(record: Mapping, path: tuple[str, ...]) -> float | None:
    """The numeric value at ``path`` in a record, else None."""
    node: object = record
    for key in path:
        if not isinstance(node, Mapping):
            return None
        node = node.get(key)
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


@dataclass(frozen=True)
class GateThresholds:
    """Limits ``check_run`` enforces (None disables that check).

    Attributes:
        max_wall_ratio: Candidate wall seconds may be at most this many
            times the baseline's. Generous by default — wall time is the
            one machine-dependent metric.
        max_invocation_ratio: Candidate model invocations may be at most
            this many times the baseline's; 1.0 because the profiler is
            seed-deterministic.
        min_cache_hit_ratio: Absolute floor on the candidate's cache hit
            ratio. None derives it from the baseline (baseline minus
            :data:`CACHE_HIT_SLACK`); only enforced when the baseline
            recorded a ratio.
        max_bound_ratio: Candidate max bound width may be at most this
            many times the baseline's; near-1 because bounds are
            deterministic, with float-printing slack.
        min_sentinel_recall: Absolute floor on the candidate's sentinel
            violation-detection recall (chaos runs record it under
            ``facts.sentinel.recall``). None derives it from the
            baseline's recall; only enforced when both records carry
            the value.
        max_sentinel_fpr: Absolute ceiling on the candidate's sentinel
            false-positive rate over clean cameras. None derives it
            from the baseline's FPR — chaos runs are seed-
            deterministic, so a baseline of 0 stays 0.
        max_executor_fallbacks: Absolute ceiling on the candidate's
            serial-fallback count (``metrics.executor_fallbacks``) — a
            fallback means the pool path silently degraded. None derives
            it from the baseline's count, so a clean baseline pins it
            at 0.
        min_serve_speedup: Absolute floor on the serving benchmark's
            warm-daemon speedup over a cold CLI invocation
            (``facts.serve.speedup_cold_over_warm``). None disables the
            check entirely — both sides of the ratio are wall times, so
            unlike the deterministic counters there is no safe
            baseline-derived default; CI passes an explicit floor.
        min_serve_coalescing: Absolute floor on the serving benchmark's
            concurrent-load coalescing ratio — requests served per
            kernel call (``facts.serve.coalescing_ratio``); 1.0 means
            micro-batching never merged anything. None disables the
            check — coalescing depends on request-arrival timing, so it
            is enforced only where the harness controls concurrency.
        min_stream_fps: Absolute floor on the stream replay's
            steady-state ingest throughput
            (``facts.stream.frames_per_sec``). None disables the check —
            frames/second is a machine-dependent wall-time metric, so
            like the serve floors it is enforced only with an explicit
            CI-chosen value.
        max_p99_latency: Absolute ceiling, in seconds, on the serving
            benchmark's warm p99 latency
            (``facts.serve.p99_warm_seconds``). None disables the check
            — tail latency is machine-dependent, so like the other serve
            limits it is enforced only with an explicit CI-chosen value
            (conventionally a generous multiple of
            ``serve_baseline.json``'s recorded p99).
    """

    max_wall_ratio: float | None = 10.0
    max_invocation_ratio: float | None = 1.0
    min_cache_hit_ratio: float | None = None
    max_bound_ratio: float | None = 1.001
    min_sentinel_recall: float | None = None
    max_sentinel_fpr: float | None = None
    max_executor_fallbacks: float | None = None
    min_serve_speedup: float | None = None
    min_serve_coalescing: float | None = None
    min_stream_fps: float | None = None
    max_p99_latency: float | None = None


#: Slack subtracted from the baseline cache hit ratio when no explicit
#: floor is configured.
CACHE_HIT_SLACK = 0.02


@dataclass(frozen=True)
class GateViolation:
    """One threshold breach.

    Attributes:
        metric: Which metric breached (``"wall_seconds"``, ...).
        baseline: Baseline value.
        candidate: Candidate value.
        limit: The effective limit the candidate crossed.
        message: Human-readable one-liner.
    """

    metric: str
    baseline: float | None
    candidate: float | None
    limit: float
    message: str


@dataclass(frozen=True)
class GateResult:
    """Outcome of :func:`check_run`.

    Attributes:
        violations: Every breach found (empty means the gate passed).
        checked: Names of the metrics that were actually compared
            (a check is skipped when either record lacks the value).
    """

    violations: tuple[GateViolation, ...] = ()
    checked: tuple[str, ...] = ()

    @property
    def passed(self) -> bool:
        return not self.violations


def check_run(
    baseline: Mapping,
    candidate: Mapping,
    thresholds: GateThresholds | None = None,
) -> GateResult:
    """Compare a candidate ledger record against a baseline record.

    Args:
        baseline: The pinned known-good record.
        candidate: The record under test (typically the ledger's latest).
        thresholds: Limits to enforce; defaults to :class:`GateThresholds`.

    Returns:
        A :class:`GateResult`; ``passed`` is False iff any enforced
        threshold was breached. Checks whose inputs are missing from
        either record are skipped, not failed — the gate guards
        regressions, not record completeness.
    """
    limits = thresholds or GateThresholds()
    violations: list[GateViolation] = []
    checked: list[str] = []

    def ratio_check(
        metric: str,
        path: tuple[str, ...],
        max_ratio: float | None,
    ) -> None:
        if max_ratio is None:
            return
        base = _lookup(baseline, path)
        cand = _lookup(candidate, path)
        if base is None or cand is None:
            return
        checked.append(metric)
        if base <= 0:
            # No baseline magnitude to scale: any positive candidate on
            # a zero baseline is growth the ratio cannot express.
            if cand > 0:
                violations.append(
                    GateViolation(
                        metric=metric,
                        baseline=base,
                        candidate=cand,
                        limit=0.0,
                        message=(
                            f"{metric}: baseline is {base:g} but "
                            f"candidate is {cand:g}"
                        ),
                    )
                )
            return
        if cand > base * max_ratio:
            violations.append(
                GateViolation(
                    metric=metric,
                    baseline=base,
                    candidate=cand,
                    limit=base * max_ratio,
                    message=(
                        f"{metric}: {cand:g} exceeds {max_ratio:g}x "
                        f"baseline ({base:g})"
                    ),
                )
            )

    ratio_check("wall_seconds", ("wall_seconds",), limits.max_wall_ratio)
    ratio_check(
        "model_invocations",
        ("metrics", "model_invocations"),
        limits.max_invocation_ratio,
    )
    ratio_check(
        "max_bound_width", ("bounds", "max_width"), limits.max_bound_ratio
    )

    base_hit = _lookup(baseline, ("metrics", "cache_hit_ratio"))
    cand_hit = _lookup(candidate, ("metrics", "cache_hit_ratio"))
    floor = limits.min_cache_hit_ratio
    if floor is None and base_hit is not None:
        floor = max(base_hit - CACHE_HIT_SLACK, 0.0)
    if floor is not None and cand_hit is not None:
        checked.append("cache_hit_ratio")
        if cand_hit < floor:
            violations.append(
                GateViolation(
                    metric="cache_hit_ratio",
                    baseline=base_hit,
                    candidate=cand_hit,
                    limit=floor,
                    message=(
                        f"cache_hit_ratio: {cand_hit:g} below floor "
                        f"{floor:g}"
                    ),
                )
            )

    base_recall = _lookup(baseline, ("facts", "sentinel", "recall"))
    cand_recall = _lookup(candidate, ("facts", "sentinel", "recall"))
    recall_floor = limits.min_sentinel_recall
    if recall_floor is None and base_recall is not None:
        recall_floor = base_recall
    if recall_floor is not None and cand_recall is not None:
        checked.append("sentinel_recall")
        if cand_recall < recall_floor:
            violations.append(
                GateViolation(
                    metric="sentinel_recall",
                    baseline=base_recall,
                    candidate=cand_recall,
                    limit=recall_floor,
                    message=(
                        f"sentinel_recall: {cand_recall:g} below floor "
                        f"{recall_floor:g}"
                    ),
                )
            )

    base_fpr = _lookup(baseline, ("facts", "sentinel", "fpr"))
    cand_fpr = _lookup(candidate, ("facts", "sentinel", "fpr"))
    fpr_ceiling = limits.max_sentinel_fpr
    if fpr_ceiling is None and base_fpr is not None:
        fpr_ceiling = base_fpr
    if fpr_ceiling is not None and cand_fpr is not None:
        checked.append("sentinel_fpr")
        if cand_fpr > fpr_ceiling:
            violations.append(
                GateViolation(
                    metric="sentinel_fpr",
                    baseline=base_fpr,
                    candidate=cand_fpr,
                    limit=fpr_ceiling,
                    message=(
                        f"sentinel_fpr: {cand_fpr:g} above ceiling "
                        f"{fpr_ceiling:g}"
                    ),
                )
            )

    base_fallbacks = _lookup(baseline, ("metrics", "executor_fallbacks"))
    cand_fallbacks = _lookup(candidate, ("metrics", "executor_fallbacks"))
    fallback_ceiling = limits.max_executor_fallbacks
    if fallback_ceiling is None and base_fallbacks is not None:
        fallback_ceiling = base_fallbacks
    if fallback_ceiling is not None and cand_fallbacks is not None:
        checked.append("executor_fallbacks")
        if cand_fallbacks > fallback_ceiling:
            violations.append(
                GateViolation(
                    metric="executor_fallbacks",
                    baseline=base_fallbacks,
                    candidate=cand_fallbacks,
                    limit=fallback_ceiling,
                    message=(
                        f"executor_fallbacks: {cand_fallbacks:g} above "
                        f"ceiling {fallback_ceiling:g} (the pool path "
                        "silently degraded to serial)"
                    ),
                )
            )

    def floor_check(
        metric: str, path: tuple[str, ...], floor: float | None
    ) -> None:
        if floor is None:
            return
        cand = _lookup(candidate, path)
        if cand is None:
            return
        checked.append(metric)
        if cand < floor:
            violations.append(
                GateViolation(
                    metric=metric,
                    baseline=_lookup(baseline, path),
                    candidate=cand,
                    limit=floor,
                    message=f"{metric}: {cand:g} below floor {floor:g}",
                )
            )

    floor_check(
        "serve_speedup",
        ("facts", "serve", "speedup_cold_over_warm"),
        limits.min_serve_speedup,
    )
    floor_check(
        "serve_coalescing_ratio",
        ("facts", "serve", "coalescing_ratio"),
        limits.min_serve_coalescing,
    )
    floor_check(
        "stream_frames_per_sec",
        ("facts", "stream", "frames_per_sec"),
        limits.min_stream_fps,
    )

    def ceiling_check(
        metric: str, path: tuple[str, ...], ceiling: float | None
    ) -> None:
        if ceiling is None:
            return
        cand = _lookup(candidate, path)
        if cand is None:
            return
        checked.append(metric)
        if cand > ceiling:
            violations.append(
                GateViolation(
                    metric=metric,
                    baseline=_lookup(baseline, path),
                    candidate=cand,
                    limit=ceiling,
                    message=(
                        f"{metric}: {cand:g} above ceiling {ceiling:g}"
                    ),
                )
            )

    ceiling_check(
        "serve_p99_warm_seconds",
        ("facts", "serve", "p99_warm_seconds"),
        limits.max_p99_latency,
    )

    return GateResult(
        violations=tuple(violations), checked=tuple(checked)
    )


def diff_runs(baseline: Mapping, candidate: Mapping) -> list[dict]:
    """A field-by-field comparison of two ledger records.

    Args:
        baseline: The reference record.
        candidate: The record to compare against it.

    Returns:
        One row per known metric present in either record:
        ``{"metric", "baseline", "candidate", "delta", "ratio"}`` (delta
        and ratio are None when either side is missing, ratio also when
        the baseline is zero).
    """
    rows: list[dict] = []
    for label, path in _DIFF_FIELDS:
        base = _lookup(baseline, path)
        cand = _lookup(candidate, path)
        if base is None and cand is None:
            continue
        delta = cand - base if base is not None and cand is not None else None
        ratio = (
            cand / base
            if base not in (None, 0.0) and cand is not None
            else None
        )
        rows.append(
            {
                "metric": label,
                "baseline": base,
                "candidate": cand,
                "delta": delta,
                "ratio": ratio,
            }
        )
    return rows
