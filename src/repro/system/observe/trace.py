"""Chrome trace-event exporter for telemetry span forests.

Renders a :class:`~repro.system.telemetry.MetricsSnapshot`'s nested
:class:`~repro.system.telemetry.SpanRecord` trees as the Trace Event
Format JSON that ``chrome://tracing`` and https://ui.perfetto.dev load
directly: one complete-duration event (``"ph": "X"``) per span, with the
span's attributes riding in ``args``.

Spans record durations, not absolute start times (the registry's clock is
monotonic and per-process), so the exporter reconstructs a timeline that
preserves the only structure the data guarantees: *nesting*. Each root
tree is laid out sequentially; within a span its children start at the
parent's start and follow one another, which keeps every child interval
inside its parent (children of one parent cannot overlap in wall time —
they completed while the parent was open on one thread). Worker snapshots
folded in by the executor appear as additional root trees on the same
timeline.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.system.telemetry import MetricsSnapshot, SpanRecord

#: Timeline slot gap between consecutive root trees, in microseconds —
#: purely cosmetic separation in the viewer.
_ROOT_GAP_US = 1.0

_PID = 1
_TID = 1


def _span_events(
    record: SpanRecord, start_us: float, events: list[dict]
) -> float:
    """Emit one span subtree starting at ``start_us``; return its end."""
    duration_us = max(record.duration, 0.0) * 1e6
    events.append(
        {
            "name": record.name,
            "cat": record.name.split(".", 1)[0],
            "ph": "X",
            "ts": round(start_us, 3),
            "dur": round(duration_us, 3),
            "pid": _PID,
            "tid": _TID,
            "args": {key: _arg(value) for key, value in record.attributes},
        }
    )
    cursor = start_us
    for child in record.children:
        cursor = _span_events(child, cursor, events)
    return start_us + duration_us


def _arg(value: object) -> object:
    """Attribute values as trace args (tuples render as lists)."""
    if isinstance(value, tuple):
        return [_arg(item) for item in value]
    return value


def trace_events(snapshot: MetricsSnapshot) -> list[dict]:
    """The snapshot's span forest as a list of trace events.

    Args:
        snapshot: The telemetry snapshot to render.

    Returns:
        Trace events: one metadata event naming the process, then one
        complete-duration (``"X"``) event per span, parents starting at or
        before their children and enclosing them.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "args": {"name": "repro"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": _TID,
            "args": {"name": "spans"},
        },
    ]
    cursor = 0.0
    for root in snapshot.spans:
        cursor = _span_events(root, cursor, events) + _ROOT_GAP_US
    return events


def trace_depth(snapshot: MetricsSnapshot) -> int:
    """The deepest nesting level of the snapshot's span forest.

    A single root span is depth 1; a root with a child is depth 2. Useful
    for asserting a trace actually captured the layered structure (CLI →
    profiler → sweep → gather) rather than a flat list.
    """

    def depth(record: SpanRecord) -> int:
        return 1 + max((depth(child) for child in record.children), default=0)

    return max((depth(root) for root in snapshot.spans), default=0)


def export_chrome_trace(
    snapshot: MetricsSnapshot | None, path: str | Path
) -> dict:
    """Write the snapshot as a Perfetto-loadable trace JSON file.

    The write is atomic (temporary file in the destination directory, then
    :func:`os.replace`), so a reader — or a concurrent exporter targeting
    the same path — never observes a partial file.

    Args:
        snapshot: The telemetry snapshot (None renders an empty trace).
        path: Destination ``.json`` path.

    Returns:
        The payload written (``{"traceEvents": [...], ...}``).
    """
    events = trace_events(snapshot) if snapshot is not None else []
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.system.observe.trace",
            "note": (
                "timeline reconstructed from span durations; nesting is "
                "exact, absolute timestamps are synthetic"
            ),
        },
    }
    _atomic_write_text(Path(path), json.dumps(payload, indent=2) + "\n")
    return payload


def _atomic_write_text(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
