"""Chrome trace-event exporter for telemetry span forests.

Renders a :class:`~repro.system.telemetry.MetricsSnapshot`'s nested
:class:`~repro.system.telemetry.SpanRecord` trees as the Trace Event
Format JSON that ``chrome://tracing`` and https://ui.perfetto.dev load
directly: one complete-duration event (``"ph": "X"``) per span, with the
span's attributes riding in ``args``.

Two timeline modes, chosen per snapshot:

* **Real timeline** — when every span carries an absolute wall-clock
  ``start`` (the registry anchors ``perf_counter`` starts to a
  per-process epoch, see :func:`~repro.system.telemetry.perf_epoch`),
  events are placed at their true offsets from the earliest span.
  Worker-process spans (tagged with a ``pid`` attribute by the executor)
  land on their own process track, so a multi-worker serve run renders
  as genuinely overlapping, epoch-aligned lanes.
* **Synthetic fallback** — legacy spans (``start == 0``, e.g. payloads
  round-tripped from old JSON exports) only guarantee *nesting*, so the
  exporter lays each root tree out sequentially; within a span its
  children start at the parent's start and follow one another, which
  keeps every child interval inside its parent.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.system.telemetry import MetricsSnapshot, SpanRecord

#: Timeline slot gap between consecutive root trees, in microseconds —
#: purely cosmetic separation in the viewer (synthetic mode only).
_ROOT_GAP_US = 1.0

_PID = 1
_TID = 1


def _span_events(
    record: SpanRecord, start_us: float, events: list[dict]
) -> float:
    """Emit one span subtree starting at ``start_us``; return its end."""
    duration_us = max(record.duration, 0.0) * 1e6
    events.append(
        {
            "name": record.name,
            "cat": record.name.split(".", 1)[0],
            "ph": "X",
            "ts": round(start_us, 3),
            "dur": round(duration_us, 3),
            "pid": _PID,
            "tid": _TID,
            "args": {key: _arg(value) for key, value in record.attributes},
        }
    )
    cursor = start_us
    for child in record.children:
        cursor = _span_events(child, cursor, events)
    return start_us + duration_us


def _real_span_events(
    record: SpanRecord,
    origin: float,
    pid: int,
    events: list[dict],
    pids: set[int],
) -> None:
    """Emit one subtree at its true wall-clock offsets from ``origin``.

    ``ts``/``dur`` stay unrounded: the subtraction-then-scale is monotone,
    so child/parent nesting relations survive exactly, which rounding to a
    fixed decimal place would not guarantee.
    """
    attributes = dict(record.attributes)
    span_pid = attributes.get("pid")
    if isinstance(span_pid, int) and span_pid > 0:
        pid = span_pid
    pids.add(pid)
    events.append(
        {
            "name": record.name,
            "cat": record.name.split(".", 1)[0],
            "ph": "X",
            "ts": (record.start - origin) * 1e6,
            "dur": max(record.duration, 0.0) * 1e6,
            "pid": pid,
            "tid": _TID,
            "args": {key: _arg(value) for key, value in record.attributes},
        }
    )
    for child in record.children:
        _real_span_events(child, origin, pid, events, pids)


def _arg(value: object) -> object:
    """Attribute values as trace args (tuples render as lists)."""
    if isinstance(value, tuple):
        return [_arg(item) for item in value]
    return value


def _all_starts(record: SpanRecord) -> bool:
    if record.start <= 0.0:
        return False
    return all(_all_starts(child) for child in record.children)


def has_real_timeline(snapshot: MetricsSnapshot) -> bool:
    """True when every span in the forest carries a wall-clock start."""
    return bool(snapshot.spans) and all(
        _all_starts(root) for root in snapshot.spans
    )


def _min_start(record: SpanRecord) -> float:
    return min(
        record.start,
        min((_min_start(child) for child in record.children), default=record.start),
    )


def trace_events(snapshot: MetricsSnapshot) -> list[dict]:
    """The snapshot's span forest as a list of trace events.

    Args:
        snapshot: The telemetry snapshot to render.

    Returns:
        Trace events: metadata events naming each process track, then one
        complete-duration (``"X"``) event per span. With real start
        timestamps the events sit at their true offsets (worker spans on
        per-pid tracks); otherwise the timeline is reconstructed from
        durations, parents starting at or before their children and
        enclosing them.
    """
    if has_real_timeline(snapshot):
        origin = min(_min_start(root) for root in snapshot.spans)
        events: list[dict] = []
        pids: set[int] = set()
        for root in snapshot.spans:
            _real_span_events(root, origin, _PID, events, pids)
        metadata: list[dict] = []
        for pid in sorted(pids):
            name = "repro" if pid == _PID else f"repro worker {pid}"
            metadata.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "args": {"name": name},
                }
            )
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": _TID,
                    "args": {"name": "spans"},
                }
            )
        return metadata + events
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "args": {"name": "repro"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": _TID,
            "args": {"name": "spans"},
        },
    ]
    cursor = 0.0
    for root in snapshot.spans:
        cursor = _span_events(root, cursor, events) + _ROOT_GAP_US
    return events


def trace_depth(snapshot: MetricsSnapshot) -> int:
    """The deepest nesting level of the snapshot's span forest.

    A single root span is depth 1; a root with a child is depth 2. Useful
    for asserting a trace actually captured the layered structure (CLI →
    profiler → sweep → gather) rather than a flat list.
    """

    def depth(record: SpanRecord) -> int:
        return 1 + max((depth(child) for child in record.children), default=0)

    return max((depth(root) for root in snapshot.spans), default=0)


def export_chrome_trace(
    snapshot: MetricsSnapshot | None, path: str | Path
) -> dict:
    """Write the snapshot as a Perfetto-loadable trace JSON file.

    The write is atomic (temporary file in the destination directory, then
    :func:`os.replace`), so a reader — or a concurrent exporter targeting
    the same path — never observes a partial file.

    Args:
        snapshot: The telemetry snapshot (None renders an empty trace).
        path: Destination ``.json`` path.

    Returns:
        The payload written (``{"traceEvents": [...], ...}``).
    """
    events = trace_events(snapshot) if snapshot is not None else []
    real = snapshot is not None and has_real_timeline(snapshot)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.system.observe.trace",
            "note": (
                "epoch-aligned wall-clock timeline; worker spans on "
                "per-pid tracks"
                if real
                else "timeline reconstructed from span durations; nesting "
                "is exact, absolute timestamps are synthetic"
            ),
        },
    }
    _atomic_write_text(Path(path), json.dumps(payload, indent=2) + "\n")
    return payload


def _atomic_write_text(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
