"""Append-only, schema-versioned run ledger (JSONL).

Every profile/experiment/chaos CLI invocation records one line describing
what ran and what it cost: config fingerprint, corpus/detector identity,
wall seconds, model invocations, cache hit ratio, bound-width summary,
and a digest of the run's telemetry counters. The ledger is how telemetry
*persists across runs* — AQuA- and BlazeIt-style systems treat pipeline
quality/cost as continuously monitored signals, and ``repro runs check``
(see :mod:`~repro.system.observe.gate`) turns the trajectory into a CI
regression gate.

Concurrency and durability:

- **Append-only JSONL** — one JSON object per line, never rewritten.
- **Atomic append** — each record is a single ``os.write`` to a file
  descriptor opened with ``O_APPEND``, so concurrent runs appending to
  the same ledger interleave whole lines, never partial ones (the record
  line is well under the POSIX pipe-buffer atomicity floor for typical
  runs; larger lines still cannot split another writer's line because
  every writer appends with ``O_APPEND``).
- **Schema-versioned** — every record carries ``"schema"``; readers skip
  lines whose version they do not understand instead of crashing.

Library layers annotate the *active run* through a module-global handle
mirroring :mod:`repro.system.telemetry`'s registry: :func:`annotate` and
:func:`record_event` are cheap no-ops when no run is active, so
instrumented code (the Smokescreen facade, the fleet processor, the
experiment drivers) never checks for a ledger itself.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.errors import ConfigurationError
from repro.system.telemetry import MetricsSnapshot

#: Current record schema. Bump when a reader of version N could
#: misinterpret a version N+1 record.
SCHEMA_VERSION = 1

#: Conventional ledger filename (the CLI's ``--run-ledger`` default
#: target when pointed at a directory).
DEFAULT_LEDGER_NAME = "runs.jsonl"

#: Cap on per-run recorded events, so a chaos sweep with thousands of
#: fleet executions cannot balloon one ledger line without bound; the
#: record counts what was dropped.
MAX_EVENTS = 50


def new_run_id() -> str:
    """A unique, sortable-ish run identifier (time prefix + random)."""
    return f"{int(time.time()):x}-{uuid.uuid4().hex[:10]}"


def config_fingerprint(config: Mapping) -> str:
    """A stable digest of a run's public configuration.

    Args:
        config: JSON-compatible configuration mapping (CLI args, knobs).

    Returns:
        A 12-hex-character BLAKE2 digest; identical configs fingerprint
        identically across processes and machines.
    """
    canonical = json.dumps(
        config, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.blake2b(canonical.encode(), digest_size=6).hexdigest()


@dataclass
class ActiveRun:
    """The run currently being recorded (one per process at a time).

    Attributes:
        run_id: Unique identifier; also suffixes temporary files so
            concurrent runs never collide.
        command: The CLI subcommand (or caller-chosen label).
        config: Public configuration the fingerprint covers.
        path: Ledger file to append to on finish; None records nothing
            but still provides the run id and annotation sink.
        started_at: Unix timestamp at :func:`begin_run`.
        facts: Accumulated annotations (merged by :func:`annotate`).
        events: Bounded list of structured events from library layers.
        events_dropped: Events discarded once :data:`MAX_EVENTS` was hit.
    """

    run_id: str
    command: str
    config: dict
    path: Path | None
    started_at: float
    _started_perf: float
    facts: dict = field(default_factory=dict)
    events: list = field(default_factory=list)
    events_dropped: int = 0


_active: ActiveRun | None = None


def active_run() -> ActiveRun | None:
    """The run currently being recorded in this process, if any."""
    return _active


def begin_run(
    command: str,
    config: Mapping | None = None,
    path: str | Path | None = None,
) -> ActiveRun:
    """Start recording a run (replacing any prior active run).

    Args:
        command: Subcommand or label (``"profile"``, ``"chaos"``).
        config: Public configuration for the fingerprint.
        path: Ledger file to append the finished record to; a directory
            gets :data:`DEFAULT_LEDGER_NAME` appended. None disables
            persistence but keeps the annotation sink and run id.

    Returns:
        The active run handle.
    """
    global _active
    ledger_path: Path | None = None
    if path is not None:
        ledger_path = Path(path)
        if ledger_path.is_dir():
            ledger_path = ledger_path / DEFAULT_LEDGER_NAME
    _active = ActiveRun(
        run_id=new_run_id(),
        command=str(command),
        config=dict(config or {}),
        path=ledger_path,
        started_at=time.time(),
        _started_perf=time.perf_counter(),
    )
    return _active


def annotate(**facts) -> None:
    """Merge facts into the active run (no-op when none is active).

    Later annotations of the same key overwrite earlier ones; dict values
    merge shallowly so layers can each contribute to e.g. ``bounds``.
    """
    run = _active
    if run is None:
        return
    for key, value in facts.items():
        existing = run.facts.get(key)
        if isinstance(existing, dict) and isinstance(value, Mapping):
            existing.update(value)
        else:
            run.facts[key] = value


def record_event(name: str, /, **fields) -> None:
    """Append one structured event to the active run (bounded, no-op
    when no run is active). ``name`` is positional-only so fields may
    use any key, including ``name``."""
    run = _active
    if run is None:
        return
    if len(run.events) >= MAX_EVENTS:
        run.events_dropped += 1
        return
    run.events.append({"event": str(name), **fields})


def _derive_metrics(
    snapshot: MetricsSnapshot | None, facts: Mapping
) -> dict:
    """The record's metrics block from telemetry counters and facts.

    Facts override snapshot-derived values (the Smokescreen facade knows
    its exact ledger total; counters are the fallback for drivers that
    run without one).
    """
    counters = dict(snapshot.counters) if snapshot is not None else {}
    hits = counters.get("cache.hit", 0.0)
    misses = counters.get("cache.miss", 0.0)
    consulted = hits + misses
    invocations = facts.get("model_invocations")
    if invocations is None:
        invocations = counters.get("profiler.frames_invoked")
    return {
        "model_invocations": (
            int(invocations) if invocations is not None else None
        ),
        "cache_hits": int(hits),
        "cache_misses": int(misses),
        "cache_hit_ratio": (
            round(hits / consulted, 6) if consulted > 0 else None
        ),
        "trials_priced": int(counters.get("profiler.trials_priced", 0)),
        "executor_fallbacks": int(counters.get("executor.fallback", 0)),
        "fleet_cameras_lost": int(counters.get("fleet.cameras_lost", 0)),
    }


def finish_run(
    status: str = "ok",
    exit_code: int = 0,
    snapshot: MetricsSnapshot | None = None,
) -> dict | None:
    """Finalize the active run, append its record, and clear the handle.

    Args:
        status: ``"ok"`` or ``"error"``.
        exit_code: The process exit code being returned.
        snapshot: The run's telemetry snapshot, if one was collected;
            supplies the metrics block and the counter digest.

    Returns:
        The record appended (also when ``path`` was None and nothing was
        persisted), or None when no run was active.
    """
    global _active
    run = _active
    if run is None:
        return None
    _active = None
    facts = dict(run.facts)
    record = {
        "schema": SCHEMA_VERSION,
        "run_id": run.run_id,
        "ts": round(run.started_at, 3),
        "command": run.command,
        "config": run.config,
        "fingerprint": config_fingerprint(run.config),
        "status": str(status),
        "exit_code": int(exit_code),
        "wall_seconds": round(time.perf_counter() - run._started_perf, 6),
        "metrics": _derive_metrics(snapshot, facts),
        "bounds": facts.pop("bounds", None),
        "dataset": facts.pop("dataset", None),
        "detector": facts.pop("detector", None),
        "facts": facts,
        "events": run.events,
        "events_dropped": run.events_dropped,
        "counters": (
            dict(sorted(snapshot.counters.items()))
            if snapshot is not None
            else {}
        ),
    }
    facts.pop("model_invocations", None)
    if run.path is not None:
        append_record(run.path, record)
    return record


def append_record(path: str | Path, record: Mapping) -> None:
    """Atomically append one record line to a ledger file.

    One ``O_APPEND`` write of the whole line: concurrent appenders
    interleave complete lines, never fragments.

    Args:
        path: Ledger file (created, with parents, if missing).
        record: JSON-compatible record.
    """
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True, default=str) + "\n"
    fd = os.open(
        destination, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
    )
    try:
        os.write(fd, line.encode("utf-8"))
    finally:
        os.close(fd)


def read_runs(path: str | Path) -> list[dict]:
    """All readable records of a ledger, oldest first.

    Lines that fail to parse or carry an unknown schema version are
    skipped (forward compatibility), not fatal.

    Args:
        path: Ledger file.

    Returns:
        Parsed records.

    Raises:
        ConfigurationError: The ledger file does not exist.
    """
    ledger = Path(path)
    if not ledger.exists():
        raise ConfigurationError(f"run ledger not found: {ledger}")
    records = []
    with open(ledger, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict):
                continue
            if record.get("schema") != SCHEMA_VERSION:
                continue
            records.append(record)
    return records


def latest_run(
    path: str | Path,
    command: str | None = None,
    run_id: str | None = None,
) -> dict:
    """The newest matching record of a ledger.

    Args:
        path: Ledger file.
        command: Optional subcommand filter.
        run_id: Optional id (or unique id prefix) filter.

    Returns:
        The newest record satisfying every given filter.

    Raises:
        ConfigurationError: No record matches.
    """
    records = read_runs(path)
    if command is not None:
        records = [r for r in records if r.get("command") == command]
    if run_id is not None:
        records = [
            r for r in records
            if str(r.get("run_id", "")).startswith(run_id)
        ]
    if not records:
        filters = []
        if command is not None:
            filters.append(f"command={command!r}")
        if run_id is not None:
            filters.append(f"run_id~{run_id!r}")
        suffix = f" matching {', '.join(filters)}" if filters else ""
        raise ConfigurationError(f"no ledger runs{suffix} in {path}")
    return records[-1]
