"""Distributed trace-context propagation and the in-memory trace ring.

The serving daemon, executor and stream layers each collect telemetry,
but a request that enters ``POST /estimate``, gets coalesced by the
MicroBatcher and is priced inside a pool worker crosses three telemetry
islands. This module stitches them together:

- :class:`TraceContext` — an immutable (trace id, span id, parent span
  id, tenant) tuple minted per serve request (honouring an inbound
  ``X-Repro-Trace-Id`` header) and propagated through a
  :mod:`contextvars` variable, so nested :func:`span` calls on one
  asyncio task or thread chain parent→child automatically. Crossing an
  executor boundary (``run_in_executor`` does *not* copy contextvars)
  is explicit: pass the context and re-enter it with :func:`use` or
  :func:`run_with`.
- Trace-tagged telemetry spans — :func:`span` opens a regular
  :func:`repro.system.telemetry.span` carrying ``trace_id`` /
  ``span_id`` / ``parent_span_id`` / ``tenant`` attributes, so exported
  snapshots (Chrome trace, ledger digests) show the trace identity, and
  worker snapshots folded back by the executor stitch into one
  cross-process trace via :func:`ingest_snapshot_spans`.
- :class:`TraceRing` — a bounded, always-on ring of completed span
  events (independent of telemetry enablement) backing the ``/traces``
  daemon endpoints, the ``repro trace`` CLI and the crash flight
  recorder (:func:`dump_flight_record`).

Tracing never touches the estimation kernels: contexts are minted and
spans opened only in orchestration paths (HTTP handler, batcher,
dispatch, stream windows), so profile series stay bit-identical and the
telemetry-off overhead budget is untouched.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import re
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.system import telemetry
from repro.system.observe import ledger as run_ledger

__all__ = [
    "TraceContext",
    "SpanEvent",
    "TraceRing",
    "chrome_payload",
    "current_context",
    "dump_flight_record",
    "ingest_snapshot_spans",
    "mint",
    "new_span_id",
    "new_trace_id",
    "ring",
    "run_with",
    "span",
    "use",
]

#: Inbound trace ids must look like hex-ish tokens; anything else is
#: replaced with a freshly minted id (never trust wire input verbatim).
TRACE_ID_PATTERN = re.compile(r"^[0-9a-fA-F-]{1,64}$")

#: Ring capacity: enough for several hundred requests' spans without
#: unbounded growth in a long-lived daemon.
RING_CAPACITY = 2048

#: Attribute keys that carry trace identity on telemetry spans.
_IDENTITY_KEYS = frozenset(
    {"trace_id", "span_id", "parent_span_id", "tenant"}
)


def new_trace_id() -> str:
    """A fresh 16-hex-character trace identifier."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    """A fresh 16-hex-character span identifier."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """One position in a distributed trace.

    Attributes:
        trace_id: Identifier shared by every span of the request.
        span_id: Identifier of the current span.
        parent_span_id: The enclosing span's id, if any.
        tenant: The requesting tenant, if known.
    """

    trace_id: str
    span_id: str
    parent_span_id: str | None = None
    tenant: str | None = None

    def child(self) -> "TraceContext":
        """A child context: same trace, fresh span id, this span as parent."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=new_span_id(),
            parent_span_id=self.span_id,
            tenant=self.tenant,
        )

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "tenant": self.tenant,
        }


def mint(
    tenant: str | None = None, trace_id: str | None = None
) -> TraceContext:
    """A root context for a new request.

    Args:
        tenant: Requesting tenant, if known.
        trace_id: Inbound trace id (e.g. from an ``X-Repro-Trace-Id``
            header). Accepted when it matches :data:`TRACE_ID_PATTERN`;
            anything malformed is discarded and a fresh id minted, so a
            hostile header cannot inject arbitrary bytes into exports.

    Returns:
        A context with no parent span.
    """
    accepted: str | None = None
    if trace_id is not None:
        candidate = str(trace_id).strip()
        if candidate and TRACE_ID_PATTERN.match(candidate):
            accepted = candidate.lower()
    return TraceContext(
        trace_id=accepted if accepted is not None else new_trace_id(),
        span_id=new_span_id(),
        tenant=tenant,
    )


_current: contextvars.ContextVar[TraceContext | None] = (
    contextvars.ContextVar("repro_trace_context", default=None)
)


def current_context() -> TraceContext | None:
    """The trace context active on this task/thread, if any."""
    return _current.get()


@contextlib.contextmanager
def use(ctx: TraceContext | None):
    """Make ``ctx`` the current context for the block (None is a no-op).

    The explicit re-entry point for boundaries that drop contextvars
    (thread pools, process pools): capture :func:`current_context` on
    the submitting side, pass it across, and ``with use(ctx):`` on the
    executing side.
    """
    if ctx is None:
        yield None
        return
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)


def run_with(ctx: TraceContext | None, fn, /, *args, **kwargs):
    """Call ``fn(*args, **kwargs)`` with ``ctx`` as the current context.

    A picklable-friendly closure target for ``run_in_executor``.
    """
    with use(ctx):
        return fn(*args, **kwargs)


@dataclass(frozen=True)
class SpanEvent:
    """One completed span as recorded in the trace ring.

    ``start`` is absolute wall-clock time (the per-process
    ``perf_counter`` epoch plus the monotonic start), so events from
    different processes on one machine sit on a shared timeline.
    """

    trace_id: str
    span_id: str
    parent_span_id: str | None
    name: str
    tenant: str | None
    start: float
    duration: float
    pid: int
    attributes: tuple[tuple[str, object], ...] = ()

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "name": self.name,
            "tenant": self.tenant,
            "start_ts": round(self.start, 6),
            "duration_s": round(self.duration, 9),
            "pid": self.pid,
            "attributes": {key: value for key, value in self.attributes},
        }


class TraceRing:
    """A bounded, thread-safe ring of completed span events.

    Always on — recording a span event is a deque append under a lock,
    cheap enough to keep regardless of telemetry enablement, which is
    what makes the crash flight recorder trustworthy: it has data even
    when the operator never passed ``--telemetry``.
    """

    def __init__(self, capacity: int = RING_CAPACITY) -> None:
        self._events: deque[SpanEvent] = deque(maxlen=int(capacity))
        self._lock = threading.Lock()

    def record(self, event: SpanEvent) -> None:
        with self._lock:
            self._events.append(event)

    def events(self) -> list[SpanEvent]:
        """All retained events, oldest first."""
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def trace(self, trace_id: str) -> list[SpanEvent]:
        """Every retained event of one trace (id or unique prefix)."""
        events = self.events()
        exact = [e for e in events if e.trace_id == trace_id]
        if exact:
            return exact
        return [e for e in events if e.trace_id.startswith(trace_id)]

    def traces(self, limit: int = 20) -> list[dict]:
        """Per-trace summaries, most recent first.

        Each summary carries the trace id, span count, root span name
        (the span with no parent, else the earliest), tenants seen,
        wall-clock start and end-to-end duration.
        """
        grouped: dict[str, list[SpanEvent]] = {}
        for event in self.events():
            grouped.setdefault(event.trace_id, []).append(event)
        summaries = []
        for trace_id, events in grouped.items():
            roots = [e for e in events if e.parent_span_id is None]
            anchor = roots[0] if roots else min(events, key=lambda e: e.start)
            starts = [e.start for e in events if e.start > 0]
            ends = [
                e.start + e.duration for e in events if e.start > 0
            ]
            tenants = sorted({e.tenant for e in events if e.tenant})
            summaries.append(
                {
                    "trace_id": trace_id,
                    "spans": len(events),
                    "root": anchor.name,
                    "tenants": tenants,
                    "start_ts": round(min(starts), 6) if starts else None,
                    "duration_s": (
                        round(max(ends) - min(starts), 9) if starts else None
                    ),
                    "pids": sorted({e.pid for e in events if e.pid}),
                }
            )
        summaries.sort(key=lambda s: s["start_ts"] or 0.0, reverse=True)
        return summaries[: max(int(limit), 0)]


_RING = TraceRing()


def ring() -> TraceRing:
    """The process-wide trace ring."""
    return _RING


@contextlib.contextmanager
def span(name: str, **attributes):
    """A traced span: telemetry span + trace identity + ring event.

    Opens a :func:`repro.system.telemetry.span` tagged with the trace
    identity (so Chrome-trace exports and folded worker snapshots show
    it), makes a child context current for the block, and on exit
    records a :class:`SpanEvent` into the ring — the latter always, even
    with telemetry disabled.

    Yields:
        The block's :class:`TraceContext`.
    """
    parent = _current.get()
    ctx = parent.child() if parent is not None else mint()
    token = _current.set(ctx)
    identity: dict[str, object] = {
        "trace_id": ctx.trace_id,
        "span_id": ctx.span_id,
    }
    if ctx.parent_span_id is not None:
        identity["parent_span_id"] = ctx.parent_span_id
    if ctx.tenant is not None:
        identity["tenant"] = ctx.tenant
    start_perf = time.perf_counter()
    try:
        with telemetry.span(name, **identity, **attributes):
            yield ctx
    finally:
        duration = time.perf_counter() - start_perf
        _current.reset(token)
        _RING.record(
            SpanEvent(
                trace_id=ctx.trace_id,
                span_id=ctx.span_id,
                parent_span_id=ctx.parent_span_id,
                name=name,
                tenant=ctx.tenant,
                start=telemetry.perf_epoch() + start_perf,
                duration=duration,
                pid=os.getpid(),
                attributes=tuple(sorted(attributes.items(), key=lambda kv: kv[0])),
            )
        )


def ingest_snapshot_spans(
    snapshot: telemetry.MetricsSnapshot | None,
) -> int:
    """Ring every trace-tagged span of a (worker) snapshot.

    The executor calls this while folding worker outcomes, so spans
    recorded inside pool processes — which have their own ring that dies
    with the worker — land in the parent's ring and show up in
    ``/traces`` and ``repro trace``.

    Returns:
        The number of events ingested.
    """
    if snapshot is None:
        return 0
    ingested = 0
    for record in telemetry.iter_spans(snapshot):
        attrs = dict(record.attributes)
        trace_id = attrs.get("trace_id")
        if not trace_id:
            continue
        pid = attrs.get("pid")
        _RING.record(
            SpanEvent(
                trace_id=str(trace_id),
                span_id=str(attrs.get("span_id") or new_span_id()),
                parent_span_id=(
                    str(attrs["parent_span_id"])
                    if attrs.get("parent_span_id")
                    else None
                ),
                name=record.name,
                tenant=(
                    str(attrs["tenant"]) if attrs.get("tenant") else None
                ),
                start=record.start,
                duration=record.duration,
                pid=int(pid) if isinstance(pid, (int, float)) else 0,
                attributes=tuple(
                    (key, value)
                    for key, value in record.attributes
                    if key not in _IDENTITY_KEYS and key != "pid"
                ),
            )
        )
        ingested += 1
    return ingested


def chrome_payload(events: Iterable[Mapping | SpanEvent]) -> dict:
    """Span events as a Perfetto-loadable Chrome trace payload.

    Accepts :class:`SpanEvent` objects or their ``to_dict`` form (what
    the daemon's ``/traces/<id>`` endpoint returns), so ``repro trace
    export`` can convert a fetched trace client-side.
    """
    dicts = [
        event.to_dict() if isinstance(event, SpanEvent) else dict(event)
        for event in events
    ]
    starts = [
        float(d.get("start_ts", 0.0))
        for d in dicts
        if float(d.get("start_ts", 0.0)) > 0
    ]
    origin = min(starts) if starts else 0.0
    trace_events: list[dict] = []
    pids: set[int] = set()
    for d in dicts:
        pid = int(d.get("pid") or 0) or 1
        pids.add(pid)
        start = float(d.get("start_ts", 0.0))
        trace_events.append(
            {
                "name": str(d.get("name", "span")),
                "cat": str(d.get("name", "span")).split(".", 1)[0],
                "ph": "X",
                "ts": max(start - origin, 0.0) * 1e6,
                "dur": max(float(d.get("duration_s", 0.0)), 0.0) * 1e6,
                "pid": pid,
                "tid": 1,
                "args": {
                    "trace_id": d.get("trace_id"),
                    "span_id": d.get("span_id"),
                    "parent_span_id": d.get("parent_span_id"),
                    "tenant": d.get("tenant"),
                    **dict(d.get("attributes") or {}),
                },
            }
        )
    metadata = []
    for pid in sorted(pids):
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": f"repro pid {pid}"},
            }
        )
    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.system.observe.tracing",
            "note": "epoch-aligned span events from the live trace ring",
        },
    }


def dump_flight_record(
    reason: str, error: str | None = None, limit: int = 64
) -> dict:
    """Dump the last-N ring events to the run ledger (crash forensics).

    Called on unhandled daemon errors and SIGQUIT. Annotates the active
    run, records a ``flight.recorder`` event, and — when the active run
    persists to a ledger file — appends a standalone, schema-valid
    ``flight-recorder`` record immediately, so the evidence survives
    even if the process dies before ``finish_run``.

    Returns:
        The flight record (also when no run was active).
    """
    events = _RING.events()[-max(int(limit), 1):]
    record = {
        "reason": str(reason),
        "error": str(error) if error else None,
        "ts": round(time.time(), 3),
        "pid": os.getpid(),
        "spans": [event.to_dict() for event in events],
    }
    run_ledger.annotate(
        flight_record={
            "reason": record["reason"],
            "error": record["error"],
            "spans": len(events),
        }
    )
    run_ledger.record_event(
        "flight.recorder", reason=record["reason"], spans=len(events)
    )
    run = run_ledger.active_run()
    if run is not None and run.path is not None:
        run_ledger.append_record(
            run.path,
            {
                "schema": run_ledger.SCHEMA_VERSION,
                "run_id": run.run_id,
                "ts": record["ts"],
                "command": "flight-recorder",
                "config": {},
                "fingerprint": run_ledger.config_fingerprint({}),
                "status": "flight",
                "exit_code": 0,
                "wall_seconds": 0.0,
                "metrics": {},
                "bounds": None,
                "dataset": None,
                "detector": None,
                "facts": {"flight_record": record},
                "events": [],
                "events_dropped": 0,
                "counters": {},
            },
        )
    return record
