"""Live-feed replay: streaming profiles, drift detection, auto-repair.

The paper computes profiles offline over a fixed corpus; a deployment
ingests frames continuously, and the profiled bound silently loses
validity when stream quality drifts out of the profiled regime (the AQuA
failure mode). :func:`replay_stream` closes the loop end to end on
simulated video:

1. Replay a dataset as a timed feed in without-replacement random order
   (the sampling model the Hoeffding–Serfling bound assumes). Optionally,
   a scenario from the PR-6 zoo (:data:`SCENARIOS`) takes over at a
   chosen onset fraction — the feed starts in the profiled regime and
   drifts out of it mid-stream.
2. Run the feed window by window through a
   :class:`~repro.estimators.sentinel.BoundSentinel` armed with the
   profiling-time state (exact clean reference, a clean seeded query's
   bound as the profiled promise, and a correction-set estimate for
   Algorithm 3 repair) over a windowed / decayed / cumulative stream
   estimator from :mod:`repro.estimators.streaming`.
3. Emit per-window ledger events (``stream.window``) and aggregate
   ``facts.stream.*`` — windows, frames/sec, violations, repairs — so the
   run ledger's perf gate (``repro runs check --min-stream-fps``) covers
   steady-state throughput too.

Windowed estimators are the default: on an endless feed the cumulative
estimator dilutes any drift with the entire clean history (and exhausts
its universe), while a window forgets — drift dominates the answer within
one window length and the sentinel trips while the repair is still
relevant.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.estimators.base import Estimate
from repro.estimators.sentinel import BoundSentinel, SentinelVerdict
from repro.estimators.smokescreen import SmokescreenMeanEstimator
from repro.estimators.streaming import (
    DecayedMeanEstimator,
    StreamingMeanEstimator,
    WindowedMeanEstimator,
)
from repro.experiments.chaos_sweep import SCENARIOS
from repro.experiments.workloads import load_dataset, model_for
from repro.system import telemetry
from repro.system.observe import ledger as run_ledger
from repro.system.observe import tracing

ESTIMATOR_KINDS = ("windowed", "decayed", "cumulative")


@dataclass(frozen=True)
class StreamConfig:
    """One replay of a dataset as a live feed.

    Attributes:
        dataset: Workload corpus name (``ua-detrac`` / ``night-street``).
        frames: Corpus frame count (None = dataset default).
        scenario: Optional zoo scenario that takes over mid-feed.
        severity: Scenario severity (defaults to the spec's harshest).
        onset: Fraction of the feed after which the scenario is live.
        window: Sliding-window capacity (and per-check batch size).
        estimator: ``windowed`` | ``decayed`` | ``cumulative``.
        decay: Weight multiplier for the decayed estimator.
        delta: Per-read bound failure probability.
        min_count: Sentinel warm-up floor (frames before any check).
        patience: Consecutive breaches required to confirm a violation.
        fraction: Clean seeded-query fraction that prices the profiled
            bound joining the sentinel's allowance.
        fps: Target ingest rate; 0 replays as fast as possible.
        seed: Replay order / correction-set seed.
    """

    dataset: str = "ua-detrac"
    frames: int | None = 2000
    scenario: str | None = None
    severity: float | None = None
    onset: float = 0.5
    window: int = 480
    estimator: str = "windowed"
    decay: float = 0.999
    delta: float = 0.05
    min_count: int = 30
    patience: int = 2
    fraction: float = 0.5
    fps: float = 0.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.estimator not in ESTIMATOR_KINDS:
            raise ConfigurationError(
                f"estimator must be one of {ESTIMATOR_KINDS}, "
                f"got {self.estimator!r}"
            )
        if self.scenario is not None and self.scenario not in SCENARIOS:
            raise ConfigurationError(
                f"unknown scenario {self.scenario!r}; "
                f"valid: {tuple(SCENARIOS)}"
            )
        if not 0.0 <= self.onset < 1.0:
            raise ConfigurationError(
                f"onset must lie in [0, 1), got {self.onset}"
            )
        if self.window < 1:
            raise ConfigurationError(
                f"window must be positive, got {self.window}"
            )
        if not 0.0 < self.fraction <= 1.0:
            raise ConfigurationError(
                f"fraction must lie in (0, 1], got {self.fraction}"
            )
        if self.fps < 0.0:
            raise ConfigurationError(
                f"fps must be non-negative, got {self.fps}"
            )


@dataclass(frozen=True)
class WindowRecord:
    """One ingest window of the replay.

    Attributes:
        index: Window ordinal, 0-based.
        start: First feed position of the window (inclusive).
        end: Last feed position of the window (exclusive).
        value: Stream estimator's answer after the window.
        bound: Stream estimator's error bound after the window.
        drift: Sentinel drift at the window's check (None in warm-up).
        allowance: Sentinel allowance at the check (None in warm-up).
        breached: Whether the check's drift exceeded the allowance.
        tripped: Whether the sentinel had confirmed a violation by the
            end of this window.
    """

    index: int
    start: int
    end: int
    value: float
    bound: float
    drift: float | None
    allowance: float | None
    breached: bool
    tripped: bool


@dataclass(frozen=True)
class StreamReport:
    """The replay's outcome: per-window trace plus the verdict.

    Attributes:
        config: The replay configuration.
        frames: Frames ingested.
        onset_index: Feed position where the scenario took over
            (``frames`` when no scenario ran).
        windows: Per-window records, in ingest order.
        verdict: The sentinel's final summary (repair included).
        profiled_bound: The clean seeded query's promised bound.
        reference_value: The exact clean answer the drift is measured
            against.
        wall_seconds: Total replay wall time (pacing included).
        ingest_seconds: Time inside sentinel/estimator code only.
        frames_per_sec: Steady-state ingest throughput
            (``frames / ingest_seconds``).
    """

    config: StreamConfig
    frames: int
    onset_index: int
    windows: tuple[WindowRecord, ...] = field(repr=False)
    verdict: SentinelVerdict
    profiled_bound: float
    reference_value: float
    wall_seconds: float
    ingest_seconds: float
    frames_per_sec: float

    @property
    def violations(self) -> int:
        """Windows whose drift check breached the allowance."""
        return sum(1 for window in self.windows if window.breached)

    @property
    def repairs(self) -> int:
        """Algorithm 3 repairs issued (0 or 1)."""
        return 1 if self.verdict.repair is not None else 0

    def as_payload(self) -> dict:
        """A JSON-friendly summary for ledger facts and reports."""
        return {
            "dataset": self.config.dataset,
            "scenario": self.config.scenario,
            "severity": self.config.severity,
            "estimator": self.config.estimator,
            "window": self.config.window,
            "frames": self.frames,
            "onset_index": self.onset_index,
            "windows": len(self.windows),
            "violations": self.violations,
            "repairs": self.repairs,
            "tripped": self.verdict.tripped,
            "first_breach_count": self.verdict.first_breach_count,
            "profiled_bound": self.profiled_bound,
            "repaired_bound": (
                self.verdict.repair.error_bound
                if self.verdict.repair is not None else None
            ),
            "wall_seconds": self.wall_seconds,
            "ingest_seconds": self.ingest_seconds,
            "frames_per_sec": self.frames_per_sec,
        }

    def print(self, limit: int = 12) -> None:
        """Human-readable replay table on stdout."""
        config = self.config
        feed = config.dataset if config.scenario is None else (
            f"{config.dataset} + {config.scenario}"
            f"@{config.severity} from frame {self.onset_index}"
        )
        print(f"stream replay: {feed}")
        print(
            f"  estimator={config.estimator} window={config.window} "
            f"delta={config.delta} profiled_bound={self.profiled_bound:.4f}"
        )
        header = (
            f"  {'win':>3} {'frames':>11} {'value':>8} {'bound':>7} "
            f"{'drift':>7} {'allow':>7}  status"
        )
        print(header)
        elided = len(self.windows) > limit
        shown = self.windows if not elided else (
            self.windows[: limit - 1] + (self.windows[-1],)
        )
        for window in shown:
            if elided and window is self.windows[-1]:
                print(f"  ... {len(self.windows) - limit} windows elided ...")
            drift = "-" if window.drift is None else f"{window.drift:.3f}"
            allow = (
                "-" if window.allowance is None
                else f"{window.allowance:.3f}"
            )
            status = (
                "TRIPPED" if window.tripped
                else "breach" if window.breached else "ok"
            )
            print(
                f"  {window.index:>3} {window.start:>5}-{window.end:<5} "
                f"{window.value:>8.3f} {window.bound:>7.3f} "
                f"{drift:>7} {allow:>7}  {status}"
            )
        verdict = self.verdict
        repair = (
            f"repaired bound {verdict.repair.error_bound:.4f}"
            if verdict.repair is not None else "no repair"
        )
        print(
            f"  verdict: tripped={verdict.tripped} "
            f"breaches={verdict.breaches}/{verdict.checks} — {repair}"
        )
        print(
            f"  throughput: {self.frames} frames in "
            f"{self.ingest_seconds:.3f}s ingest "
            f"({self.frames_per_sec:,.0f} frames/sec; "
            f"wall {self.wall_seconds:.3f}s)"
        )


def _build_stream_estimator(config: StreamConfig, universe: int):
    if config.estimator == "windowed":
        window = min(config.window, universe)
        return WindowedMeanEstimator(universe, window, config.delta)
    if config.estimator == "decayed":
        return DecayedMeanEstimator(universe, config.decay, config.delta)
    return StreamingMeanEstimator(universe, config.delta)


def _build_feed(
    config: StreamConfig, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, int]:
    """The replayed value feed, the clean population, and the onset."""
    dataset = load_dataset(config.dataset, config.frames)
    model = model_for(config.dataset)
    clean = model.run(dataset).counts.astype(float)
    total = clean.size
    order = rng.permutation(total)
    feed = clean[order]
    if config.scenario is None:
        return feed, clean, total
    spec = SCENARIOS[config.scenario]
    severity = (
        config.severity if config.severity is not None
        else spec.severities[-1]
    )
    hostile = spec.build(severity).attach(model).run(dataset).counts
    hostile = hostile.astype(float)
    onset_index = int(round(config.onset * total))
    feed[onset_index:] = hostile[order[onset_index:]]
    return feed, clean, onset_index


def replay_stream(config: StreamConfig) -> StreamReport:
    """Replay the configured feed through sentinel + stream estimator.

    Args:
        config: The replay configuration.

    Returns:
        The per-window trace, final verdict, and throughput numbers.
    """
    rng = np.random.default_rng(config.seed)
    feed, clean, onset_index = _build_feed(config, rng)
    total = feed.size
    universe = total

    reference = Estimate(
        value=float(clean.mean()),
        error_bound=0.0,
        method="exact",
        n=total,
        universe_size=total,
    )
    correction_set = rng.choice(
        clean, size=min(400, total), replace=False
    )
    correction = SmokescreenMeanEstimator().estimate(
        correction_set, total, config.delta
    )
    profiled_sample = rng.choice(
        clean,
        size=max(2, int(round(config.fraction * total))),
        replace=False,
    )
    profiled_bound = float(
        SmokescreenMeanEstimator()
        .estimate(profiled_sample, total, config.delta)
        .error_bound
    )

    severity = None
    if config.scenario is not None:
        severity = (
            config.severity if config.severity is not None
            else SCENARIOS[config.scenario].severities[-1]
        )
        config = dataclasses.replace(config, severity=severity)

    stream = _build_stream_estimator(config, universe)
    sentinel = BoundSentinel(
        reference,
        profiled_bound,
        universe,
        delta=config.delta,
        min_count=config.min_count,
        patience=config.patience,
        correction=correction,
        label=f"{config.dataset}:{config.scenario or 'clean'}",
        stream=stream,
    )

    records: list[WindowRecord] = []
    wall_start = time.perf_counter()
    ingest_seconds = 0.0
    # One trace covers the whole replay; each window is a child span, so
    # the exported timeline shows the per-window cadence (and any pacing
    # sleep) on the same epoch-aligned axis as serve/executor spans.
    replay_ctx = tracing.mint()
    with tracing.use(replay_ctx), tracing.span(
        "stream.replay",
        dataset=config.dataset,
        scenario=config.scenario or "clean",
        window=config.window,
    ):
        for start in range(0, total, config.window):
            chunk = feed[start : start + config.window]
            with tracing.span(
                "stream.window", index=len(records), frames=int(chunk.size)
            ):
                tick = time.perf_counter()
                check = sentinel.extend(chunk)
                estimate = stream.estimate()
                ingest_seconds += time.perf_counter() - tick
                record = WindowRecord(
                    index=len(records),
                    start=start,
                    end=start + chunk.size,
                    value=float(estimate.value),
                    bound=float(estimate.error_bound),
                    drift=check.drift if check is not None else None,
                    allowance=(
                        check.allowance if check is not None else None
                    ),
                    breached=check.breached if check is not None else False,
                    tripped=sentinel.tripped,
                )
                records.append(record)
                telemetry.count("stream.windows")
                telemetry.count("stream.frames", chunk.size)
                run_ledger.record_event(
                    "stream.window",
                    window=record.index,
                    frames=int(chunk.size),
                    value=record.value,
                    bound=record.bound,
                    drift=record.drift,
                    allowance=record.allowance,
                    breached=record.breached,
                    tripped=record.tripped,
                )
                if config.fps > 0.0:
                    pace = chunk.size / config.fps
                    elapsed = time.perf_counter() - tick
                    if pace > elapsed:
                        time.sleep(pace - elapsed)
    wall_seconds = time.perf_counter() - wall_start

    report = StreamReport(
        config=config,
        frames=total,
        onset_index=onset_index,
        windows=tuple(records),
        verdict=sentinel.verdict(),
        profiled_bound=profiled_bound,
        reference_value=reference.value,
        wall_seconds=wall_seconds,
        ingest_seconds=ingest_seconds,
        frames_per_sec=(
            total / ingest_seconds if ingest_seconds > 0.0 else 0.0
        ),
    )
    run_ledger.annotate(stream=report.as_payload())
    run_ledger.annotate(stream={"trace_id": replay_ctx.trace_id})
    return report
